"""Cluster wiring: nodes, compute threads and the shared fabric.

A :class:`Node` models one machine of the paper's testbed; it always has
blade memory and an RNIC, so it can serve as a compute blade, a memory
blade, or both (Sherman's evaluation emulates each server as both).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.memory.blade import MemoryBlade
from repro.network.fabric import Fabric
from repro.rnic.config import RnicConfig
from repro.rnic.device import RnicDevice
from repro.sim import Simulator


class ComputeThread:
    """One worker thread pinned to a core of a compute blade.

    CPU time is serialized through a ``busy_until`` watermark: concurrent
    coroutines of the same thread interleave but never overlap their CPU
    sections, matching the paper's one-thread-many-coroutines model.
    """

    def __init__(self, node: "Node", thread_id: int):
        self.node = node
        self.thread_id = thread_id
        self.sim: Simulator = node.sim
        self.config: RnicConfig = node.config
        self.busy_until = 0.0
        #: QPs to each remote node, keyed by node_id (set up by an
        #: allocation policy or by SMART's thread-aware allocator)
        self.qps = {}

    def compute(self, ns: float) -> Generator:
        """Charge ``ns`` of serialized CPU time to this thread."""
        if ns < 0:
            raise ValueError("negative CPU time")
        start = max(self.sim.now, self.busy_until)
        end = start + ns
        self.busy_until = end
        delay = end - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)

    def mark_busy_until_now(self) -> None:
        """Record that the CPU was spinning until the current instant."""
        self.busy_until = max(self.busy_until, self.sim.now)

    def qp_for(self, node_id: int):
        qp = self.qps.get(node_id)
        if qp is None:
            raise KeyError(
                f"thread {self.thread_id} has no connection to node {node_id}; "
                "run a connection policy first"
            )
        return qp

    def __repr__(self) -> str:
        return f"ComputeThread(node={self.node.node_id}, id={self.thread_id})"


class Node:
    """One machine: blade memory + RNIC (+ any number of worker threads)."""

    def __init__(self, sim: Simulator, config: RnicConfig, fabric: Fabric, node_id: int):
        self.sim = sim
        self.config = config
        self.fabric = fabric
        self.node_id = node_id
        self.storage = MemoryBlade(node_id, config.blade_capacity_bytes)
        self.device = RnicDevice(
            sim, config, fabric, name=f"rnic{node_id}", storage=self.storage,
            node_id=node_id,
        )
        self.threads: List[ComputeThread] = []
        #: a draining blade accepts no *new* placements (shards, tables);
        #: existing data stays readable until migrated off
        self.draining = False
        #: set by :class:`repro.core.SmartContext` when this node is a
        #: compute blade — lets elasticity machinery add connections
        self.smart_context = None

    @property
    def online(self) -> bool:
        return self.device.online

    def crash(self, restart_after_ns: Optional[float] = None) -> None:
        """Power-fail this blade.

        The RNIC goes offline (in-flight and future one-sided ops to it
        complete with error at their requesters) and volatile memory
        regions lose their content; persistent (NVM) regions survive, so
        FORD-style undo logs remain recoverable.  With
        ``restart_after_ns`` the blade comes back automatically.
        """
        if not self.device.online:
            raise RuntimeError(f"node {self.node_id} is already down")
        self.device.fail()
        self.storage.power_fail()
        if restart_after_ns is not None:
            self.sim.call_after(restart_after_ns, self._restart_event, None)

    def _restart_event(self, _value) -> None:
        if not self.device.online:
            self.restart()

    def restart(self) -> None:
        """Bring a crashed blade back online (runs the device's restore
        hooks, e.g. recovery managers registered by a fault injector)."""
        if self.device.online:
            raise RuntimeError(f"node {self.node_id} is already online")
        self.device.restore()

    def add_threads(self, count: int) -> List[ComputeThread]:
        """Create ``count`` worker threads on this (compute) blade."""
        created = []
        for _ in range(count):
            thread = ComputeThread(self, len(self.threads))
            self.threads.append(thread)
            created.append(thread)
        return created

    def __repr__(self) -> str:
        return f"Node({self.node_id}, threads={len(self.threads)})"


class Cluster:
    """The whole testbed: a simulator, a fabric and a set of nodes."""

    def __init__(self, config: Optional[RnicConfig] = None):
        self.config = config or RnicConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.config.one_way_latency_ns)
        self.nodes: List[Node] = []
        #: optional :class:`repro.obs.tracing.TraceRecorder` (set by
        #: :meth:`repro.obs.Observability.attach_cluster`)
        self.recorder = None

    def add_node(self) -> Node:
        node = Node(self.sim, self.config, self.fabric, len(self.nodes))
        self.nodes.append(node)
        return node

    def add_nodes(self, count: int) -> List[Node]:
        return [self.add_node() for _ in range(count)]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def drain_node(self, node_id: int) -> Node:
        """Mark a blade as draining (no new placements).  The blade stays
        online serving reads/writes; the caller (usually an autoscaler +
        migrator) is responsible for moving its shards elsewhere before
        taking it out of service."""
        node = self.nodes[node_id]
        node.draining = True
        return node

    def undrain_node(self, node_id: int) -> Node:
        node = self.nodes[node_id]
        node.draining = False
        return node

    def active_nodes(self) -> List[Node]:
        """Online, non-draining nodes — valid targets for new placements."""
        return [n for n in self.nodes if n.online and not n.draining]
