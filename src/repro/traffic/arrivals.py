"""Open-loop arrival processes.

Every runner in ``repro.bench.runner`` is *closed-loop*: a client
coroutine issues its next operation only when the previous one has
completed, so the measured latency can never include the queueing delay
that builds up past saturation — the "coordinated omission" problem of
naive load generators.  The processes here generate *arrival times*
independent of service progress; the traffic engine queues each arrival
and measures arrival→issue (queueing) and arrival→completion (total)
latency separately.

Each process is a small frozen dataclass (picklable, so it can ride in a
:class:`repro.bench.parallel.PointSpec`) whose :meth:`gaps` method
returns an infinite iterator of inter-arrival gaps in nanoseconds.  All
randomness flows through a seeded ``random.Random`` via
:func:`repro.sim.rng.exponential_interval_ns`, so a fixed seed replays
the arrival sequence bit-identically.

Rates are in MOPS (million operations per second == operations per
simulated microsecond), matching the bench tables.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.sim.rng import exponential_interval_ns


class ArrivalProcess:
    """Base class: an infinite, seeded stream of inter-arrival gaps."""

    def gaps(self, seed: int) -> Iterator[float]:
        raise NotImplementedError

    @property
    def offered_mops(self) -> float:
        """Nominal long-run mean arrival rate (MOPS)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Constant-rate arrivals: one op every ``1/rate`` microseconds."""

    rate_mops: float

    def __post_init__(self):
        if self.rate_mops <= 0:
            raise ValueError(f"rate_mops must be positive, got {self.rate_mops}")

    @property
    def offered_mops(self) -> float:
        return self.rate_mops

    def gaps(self, seed: int) -> Iterator[float]:
        gap = 1e3 / self.rate_mops
        while True:
            yield gap


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate (exponential gaps)."""

    rate_mops: float

    def __post_init__(self):
        if self.rate_mops <= 0:
            raise ValueError(f"rate_mops must be positive, got {self.rate_mops}")

    @property
    def offered_mops(self) -> float:
        return self.rate_mops

    def gaps(self, seed: int) -> Iterator[float]:
        rng = random.Random(seed)
        mean = 1e3 / self.rate_mops
        while True:
            yield exponential_interval_ns(mean, rng)


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty two-state (MMPP-style) arrivals.

    The process alternates between an *on* state emitting Poisson
    arrivals at ``on_rate_mops`` and an *off* state at ``off_rate_mops``
    (0 silences it entirely); state holding times are exponential with
    means ``mean_on_ns`` / ``mean_off_ns``.  Because within-state gaps
    are exponential, the leftover gap at a state switch can be discarded
    without biasing the process (memorylessness).
    """

    on_rate_mops: float
    off_rate_mops: float = 0.0
    mean_on_ns: float = 100_000.0
    mean_off_ns: float = 100_000.0

    def __post_init__(self):
        if self.on_rate_mops <= 0:
            raise ValueError(f"on_rate_mops must be positive, got {self.on_rate_mops}")
        if self.off_rate_mops < 0:
            raise ValueError(f"off_rate_mops must be >= 0, got {self.off_rate_mops}")
        if self.mean_on_ns <= 0 or self.mean_off_ns <= 0:
            raise ValueError("state holding times must be positive")

    @property
    def offered_mops(self) -> float:
        weight = self.mean_on_ns + self.mean_off_ns
        return (self.on_rate_mops * self.mean_on_ns
                + self.off_rate_mops * self.mean_off_ns) / weight

    def gaps(self, seed: int) -> Iterator[float]:
        rng = random.Random(seed)
        on = True
        remaining = exponential_interval_ns(self.mean_on_ns, rng)
        pending = 0.0  # silent time carried into the next emitted gap
        while True:
            rate = self.on_rate_mops if on else self.off_rate_mops
            if rate <= 0:
                pending += remaining
                on = not on
                remaining = exponential_interval_ns(
                    self.mean_on_ns if on else self.mean_off_ns, rng
                )
                continue
            gap = exponential_interval_ns(1e3 / rate, rng)
            if gap <= remaining:
                remaining -= gap
                yield pending + gap
                pending = 0.0
            else:
                pending += remaining
                on = not on
                remaining = exponential_interval_ns(
                    self.mean_on_ns if on else self.mean_off_ns, rng
                )


@dataclass(frozen=True)
class RampArrivals(ArrivalProcess):
    """Time-varying Poisson arrivals: a linear ramp or a diurnal wave.

    ``shape="linear"`` ramps the rate from ``start_mops`` to ``end_mops``
    over ``period_ns`` and holds it there; ``shape="diurnal"`` swings
    sinusoidally between the two rates with period ``period_ns``,
    starting from the ``start_mops`` trough.  Arrivals are generated by
    Lewis-Shedler thinning against the peak rate, so the sequence is a
    deterministic function of the seed.
    """

    start_mops: float
    end_mops: float
    period_ns: float
    shape: str = "linear"

    def __post_init__(self):
        if min(self.start_mops, self.end_mops) <= 0:
            raise ValueError("rates must be positive")
        if self.period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {self.period_ns}")
        if self.shape not in ("linear", "diurnal"):
            raise ValueError(f"shape must be linear or diurnal, got {self.shape!r}")

    @property
    def offered_mops(self) -> float:
        return (self.start_mops + self.end_mops) / 2.0

    def rate_at(self, t_ns: float) -> float:
        """Instantaneous arrival rate at elapsed time ``t_ns``."""
        if self.shape == "linear":
            fraction = min(1.0, max(0.0, t_ns / self.period_ns))
            return self.start_mops + (self.end_mops - self.start_mops) * fraction
        mid = (self.start_mops + self.end_mops) / 2.0
        amplitude = (self.end_mops - self.start_mops) / 2.0
        return mid - amplitude * math.cos(2.0 * math.pi * t_ns / self.period_ns)

    def gaps(self, seed: int) -> Iterator[float]:
        rng = random.Random(seed)
        peak = max(self.start_mops, self.end_mops)
        mean = 1e3 / peak
        now = 0.0
        last = 0.0
        while True:
            now += exponential_interval_ns(mean, rng)
            # Thinning: keep a candidate with probability rate(t)/peak.
            if rng.random() * peak <= self.rate_at(now):
                yield now - last
                last = now
