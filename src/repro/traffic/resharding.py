"""Online shard migration under live open-loop traffic.

The experiment this module runs is the elasticity headline: a sharded
RACE table serves multi-tenant open-loop traffic while the fleet
changes shape underneath it —

* ``mode="add_blade"`` — a new memory blade joins mid-run; the
  consistent-hash ring steals shards onto it and the migrator moves
  them online (scale-out);
* ``mode="drain"`` — the last blade is drained; its shards move to the
  survivors (scale-in);
* ``mode="autoscale"`` — an :class:`repro.memory.elastic.Autoscaler`
  watches the admission controller's shed/defer deltas and triggers
  scale-out itself.

The run is cut into three equal measured phases — *before* (steady
state), *during* (migration in flight), *after* (new placement) — and
per-tenant queue-delay histograms are snapshotted at each boundary
(:meth:`LogHistogram.copy`/:meth:`~LogHistogram.delta`), so the SLO
impact of rebalancing is a first-class result rather than something
smeared into a run-wide percentile.

Registered with :mod:`repro.bench.parallel`; everything in the result
is plain data, and fixed seeds replay the whole dance — migration,
frees, reallocation — bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.sharded import (
    ShardMigrator,
    ShardedHashTableClient,
    ShardedHashTableService,
)
from repro.bench.runner import (
    SYSTEM_FEATURES,
    build_deployment,
    effective_warmup_ns,
)
from repro.memory.elastic import Autoscaler
from repro.obs.metrics import LogHistogram
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.engine import OpenLoopEngine
from repro.traffic.tenant import NO_SLO, Slo, TenantSpec
from repro.workloads.ycsb import INSERT, READ, UPDATE

PHASES = ("before", "during", "after")
MODES = ("add_blade", "drain", "autoscale")


@dataclass
class PhaseStats:
    """One tenant's outcome over one phase window."""

    tenant: str
    phase: str
    completed: int
    shed: int
    deferred: int
    queue_p50_ns: Optional[float]
    queue_p99_ns: Optional[float]
    queue_mean_ns: float


@dataclass
class ReshardingResult:
    """Everything a resharding run measured."""

    mode: str
    seed: int
    phase_ns: float
    #: actual during-window length (stretched until the migration ended)
    during_ns: float = 0.0
    phases: List[PhaseStats] = field(default_factory=list)
    #: ShardMove tuples as (shard, src, dst)
    moves: List[tuple] = field(default_factory=list)
    migration_start_ns: Optional[float] = None
    migration_end_ns: Optional[float] = None
    keys_copied: int = 0
    keys_skipped: int = 0
    mirror_writes: int = 0
    bytes_freed: int = 0
    blades_before: int = 0
    blades_after: int = 0
    #: modeled control-plane allocation latency percentiles
    alloc_p50_ns: Optional[float] = None
    alloc_p99_ns: Optional[float] = None
    alloc_count: int = 0
    #: blade id -> allocator stats snapshot at run end
    allocator_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: autoscaler decisions as (at_ns, action, blades_before, blades_after)
    scale_events: List[tuple] = field(default_factory=list)

    @property
    def migration_ns(self) -> Optional[float]:
        if self.migration_start_ns is None or self.migration_end_ns is None:
            return None
        return self.migration_end_ns - self.migration_start_ns

    def phase_table(self) -> Dict[str, List[PhaseStats]]:
        out: Dict[str, List[PhaseStats]] = {p: [] for p in PHASES}
        for row in self.phases:
            out[row.phase].append(row)
        return out

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "phase_ns": self.phase_ns,
            "during_ns": self.during_ns,
            "phases": [vars(p).copy() for p in self.phases],
            "moves": [list(m) for m in self.moves],
            "migration_start_ns": self.migration_start_ns,
            "migration_end_ns": self.migration_end_ns,
            "migration_ns": self.migration_ns,
            "keys_copied": self.keys_copied,
            "keys_skipped": self.keys_skipped,
            "mirror_writes": self.mirror_writes,
            "bytes_freed": self.bytes_freed,
            "blades_before": self.blades_before,
            "blades_after": self.blades_after,
            "alloc_p50_ns": self.alloc_p50_ns,
            "alloc_p99_ns": self.alloc_p99_ns,
            "alloc_count": self.alloc_count,
            "allocator_stats": {
                str(k): v for k, v in sorted(self.allocator_stats.items())
            },
            "scale_events": [list(e) for e in self.scale_events],
        }


class _Snapshot:
    """Per-tenant counters + histogram copy at a phase boundary."""

    def __init__(self, state):
        self.ops = state.stats.ops
        self.shed = state.stats.shed
        self.deferred = state.stats.deferred
        self.queue_hist = state.stats.queue_delay_hist.copy()


def _phase_rows(phase: str, states, snapshots) -> List[PhaseStats]:
    rows = []
    for state, snap in zip(states, snapshots):
        window = state.stats.queue_delay_hist.delta(snap.queue_hist)
        rows.append(PhaseStats(
            tenant=state.spec.name,
            phase=phase,
            completed=state.stats.ops - snap.ops,
            shed=state.stats.shed - snap.shed,
            deferred=state.stats.deferred - snap.deferred,
            queue_p50_ns=window.percentile(0.50),
            queue_p99_ns=window.percentile(0.99),
            queue_mean_ns=window.mean,
        ))
    return rows


def run_resharding(
    tenants: Optional[List[TenantSpec]] = None,
    rate_mops: float = 0.4,
    slo: Optional[Slo] = None,
    workers: int = 4,
    threads: int = 4,
    compute_blades: int = 1,
    memory_blades: int = 2,
    num_shards: int = 8,
    segments_per_shard: int = 16,
    buckets_per_segment: int = 64,
    heap_bytes_per_shard: int = 1 << 20,
    item_count: int = 2_000,
    mode: str = "add_blade",
    system: str = "smart-ht",
    features=None,
    config=None,
    warmup_ns: float = 0.5e6,
    phase_ns: float = 1.0e6,
    grace_ns: float = 50_000.0,
    seed: int = 0,
    obs=None,
) -> ReshardingResult:
    """One resharding experiment point (see module docstring)."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    cluster = deployment.cluster
    sim = cluster.sim

    service = ShardedHashTableService(
        deployment.memory_nodes,
        num_shards=num_shards,
        segments_per_shard=segments_per_shard,
        buckets_per_segment=buckets_per_segment,
        heap_bytes_per_shard=heap_bytes_per_shard,
    )
    rng = random.Random(seed)
    service.bulk_load((k, rng.getrandbits(32)) for k in range(item_count))

    if obs is not None:
        obs.attach_deployment(deployment)

    # -- tenants -----------------------------------------------------------
    if tenants is None:
        tenants = [TenantSpec(
            "t0", PoissonArrivals(rate_mops), slo=slo or NO_SLO, workers=workers,
        )]
    from repro.workloads.ycsb import WRITE_HEAVY

    engine = OpenLoopEngine(sim, seed=seed)
    seeder = random.Random(seed)
    worker_index = 0
    for spec in tenants:
        workload = spec.workload or WRITE_HEAVY
        stream = workload.stream(item_count, seeder.getrandbits(31))
        executors = []
        for _ in range(spec.workers):
            smart = deployment.smart_threads[
                worker_index % len(deployment.smart_threads)
            ]
            executors.append(_executor_factory(service, smart))
            worker_index += 1
        engine.add_tenant(spec, stream, executors, seeder.getrandbits(31))

    # -- migration machinery -----------------------------------------------
    alloc_hist = LogHistogram()
    migrator = ShardMigrator(
        service, deployment.smart_threads[0].handle(), sim,
        grace_ns=grace_ns, alloc_latency_hist=alloc_hist,
    )
    result = ReshardingResult(mode=mode, seed=seed, phase_ns=phase_ns)
    result.blades_before = len(service.shard_map.ring.members)

    def grow_fleet():
        """Add a blade, wire every compute thread to it, rebalance."""
        node = cluster.add_node()
        for compute in deployment.compute_nodes:
            compute.smart_context.connect_node(node)
        moves = service.add_blade(node)
        result.moves.extend((m.shard, m.src, m.dst) for m in moves)
        moved = yield from migrator.migrate_all(moves)
        return moved

    def drain_last():
        """Drain the highest-numbered blade and empty it online."""
        node = deployment.memory_nodes[-1]
        cluster.drain_node(node.node_id)
        moves = service.drain_blade(node)
        result.moves.extend((m.shard, m.src, m.dst) for m in moves)
        moved = yield from migrator.migrate_all(moves)
        return moved

    def tracked(action):
        result.migration_start_ns = sim.now
        yield from action()
        result.migration_end_ns = sim.now

    autoscaler = None
    if mode == "autoscale":
        autoscaler = Autoscaler(
            sim,
            engine.tenants,
            blade_count_fn=lambda: len(service.shard_map.ring.members),
            scale_out_fn=lambda: tracked(grow_fleet),
            period_ns=phase_ns / 8,
            shed_threshold=1,
            defer_threshold=8,
            max_blades=memory_blades + 1,
        )

    # -- timeline ----------------------------------------------------------
    warm = effective_warmup_ns(deployment.features, warmup_ns)
    sim.run(until=warm)
    for smart in deployment.smart_threads:
        smart.stats.reset()
    engine.reset_window()

    states = engine.tenants
    boundaries = [warm + i * phase_ns for i in range(1, 4)]

    sim.run(until=boundaries[0])
    snaps = [_Snapshot(s) for s in states]
    result.phases.extend(_phase_rows_from_zero(states))

    if mode == "autoscale":
        migrator_process = sim.spawn(autoscaler.run(), name="autoscaler")
    else:
        migrator_process = sim.spawn(
            tracked(grow_fleet if mode == "add_blade" else drain_last),
            name="migrator",
        )
    # The during window lasts at least phase_ns and stretches (in
    # half-phase slices, capped at 8 extra phases) until the migration
    # has completed, so "after" genuinely measures the post-rebalance
    # steady state rather than the migration's tail.
    deadline = boundaries[1]
    cap = boundaries[1] + 8 * phase_ns
    while True:
        sim.run(until=deadline)
        if result.migration_end_ns is not None or deadline >= cap:
            break
        deadline += phase_ns / 2
    result.during_ns = deadline - boundaries[0]
    during = _phase_rows("during", states, snaps)
    snaps = [_Snapshot(s) for s in states]
    result.phases.extend(during)

    sim.run(until=deadline + phase_ns)
    result.phases.extend(_phase_rows("after", states, snaps))
    if autoscaler is not None:
        autoscaler.stop()
        result.scale_events = [
            (e.at_ns, e.action, e.blades_before, e.blades_after)
            for e in autoscaler.events
        ]

    # -- results -----------------------------------------------------------
    result.keys_copied = migrator.keys_copied
    result.keys_skipped = migrator.keys_skipped
    result.mirror_writes = service.mirror_writes
    result.bytes_freed = service.bytes_freed
    result.blades_after = len(service.shard_map.ring.members)
    result.alloc_count = alloc_hist.count
    result.alloc_p50_ns = alloc_hist.percentile(0.50)
    result.alloc_p99_ns = alloc_hist.percentile(0.99)
    for node in cluster.nodes:
        if node in deployment.compute_nodes:
            continue
        result.allocator_stats[node.node_id] = node.storage.allocator.stats()

    if obs is not None:
        obs.phase("warmup", 0, warm)
        during_end = boundaries[0] + result.during_ns
        obs.phase("before", warm, boundaries[0])
        obs.phase("during", boundaries[0], during_end)
        obs.phase("after", during_end, during_end + phase_ns)
        obs.collect_cluster(cluster, window_ns=2 * phase_ns + result.during_ns)
        obs.collect_memory(cluster)
        if alloc_hist.count:
            obs.registry.adopt_histogram("memory.alloc_latency_ns", alloc_hist)
        for state in states:
            obs.collect_stats(state.stats, prefix=f"tenant.{state.spec.name}")
    return result


def _phase_rows_from_zero(states) -> List[PhaseStats]:
    """Rows for the first phase (baseline is the window reset)."""
    rows = []
    for state in states:
        hist = state.stats.queue_delay_hist
        rows.append(PhaseStats(
            tenant=state.spec.name,
            phase="before",
            completed=state.stats.ops,
            shed=state.stats.shed,
            deferred=state.stats.deferred,
            queue_p50_ns=hist.percentile(0.50),
            queue_p99_ns=hist.percentile(0.99),
            queue_mean_ns=hist.mean,
        ))
    return rows


def _executor_factory(service: ShardedHashTableService, smart):
    def factory():
        client = ShardedHashTableClient(service, smart.handle())

        def execute(item):
            op, key, value = item
            if op == READ:
                yield from client.search(key)
            elif op == UPDATE:
                yield from client.update(key, value)
            elif op == INSERT:
                yield from client.insert(key, value)

        return execute

    return factory
