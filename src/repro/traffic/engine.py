"""The open-loop traffic engine: arrivals → admission → queue → workers.

For each tenant the engine spawns one *arrival* process (walking the
tenant's seeded arrival-gap stream and offering one workload op per
arrival) and ``spec.workers`` *worker* processes (each with its own app
client/handle) draining the tenant's FIFO queue.  The hand-off rides a
:class:`repro.sim.TokenBucket` — one token per queued op — so dispatch
order is deterministic and workers park without polling.

The engine measures what closed-loop runners cannot: the arrival→issue
*queueing delay* of every admitted op (fed to a mergeable
:class:`LogHistogram` on the tenant's stats) and the arrival→completion
*total latency* (the tenant's ``OperationStats`` reservoir, so p50/p99
come out of the standard percentile path).  Per-tenant shed/deferred
counters come from the admission controller's decisions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Tuple

from repro.core.stats import OperationStats
from repro.sim import Simulator, TokenBucket
from repro.traffic.admission import ADMIT, DEFER, AdmissionController
from repro.traffic.tenant import TenantSpec

#: a zero-arg factory returning a one-op executor generator function
ExecutorFactory = Callable[[], Callable]


class TenantState:
    """Runtime state of one tenant inside the engine."""

    __slots__ = (
        "spec", "stream", "queue", "tokens", "stats", "admission",
        "max_queue_depth",
    )

    def __init__(
        self,
        sim: Simulator,
        spec: TenantSpec,
        stream: Iterator,
        workers: int,
        seed: int,
    ):
        self.spec = spec
        self.stream = stream
        #: FIFO of (arrival_time_ns, op) admitted but not yet issued
        self.queue: Deque[Tuple[int, object]] = deque()
        self.tokens = TokenBucket(sim, 0, name=f"{spec.name}.queue")
        self.stats = OperationStats()
        self.admission = AdmissionController(spec.slo, workers, seed=seed)
        #: deepest the queue got since the last window reset
        self.max_queue_depth = 0

    @property
    def backlog(self) -> int:
        """Ops admitted but not yet issued to a worker."""
        return len(self.queue)


class OpenLoopEngine:
    """Multi-tenant open-loop load generation over one simulator."""

    def __init__(self, sim: Simulator, seed: int = 0):
        self.sim = sim
        self.seed = seed
        self.tenants: List[TenantState] = []
        #: arrival/worker Process handles, so failures stay inspectable
        self.processes: List = []

    # -- wiring ------------------------------------------------------------

    def add_tenant(
        self,
        spec: TenantSpec,
        stream: Iterator,
        executors: List[ExecutorFactory],
        arrival_seed: int,
    ) -> TenantState:
        """Register a tenant and spawn its arrival + worker processes.

        ``stream`` yields one op per arrival; ``executors`` provides one
        factory per worker, each returning an ``execute(op)`` generator
        function bound to a fresh app client.
        """
        state = TenantState(
            self.sim, spec, stream, len(executors),
            seed=(self.seed << 8) ^ arrival_seed,
        )
        self.tenants.append(state)
        self.processes.append(
            self.sim.spawn(
                self._arrival_loop(state, arrival_seed), name=f"{spec.name}.arrivals"
            )
        )
        for index, factory in enumerate(executors):
            self.processes.append(
                self.sim.spawn(
                    self._worker_loop(state, factory), name=f"{spec.name}.w{index}"
                )
            )
        return state

    # -- measurement window ------------------------------------------------

    def reset_window(self) -> None:
        """Zero per-tenant stats at the warmup/measure boundary.

        The queue itself is *not* cleared — backlog built during warmup
        is real offered load — but depth tracking restarts from the
        current backlog.
        """
        for state in self.tenants:
            state.stats.reset()
            state.max_queue_depth = len(state.queue)

    # -- processes ---------------------------------------------------------

    def _arrival_loop(self, state: TenantState, arrival_seed: int):
        sim = self.sim
        stats = state.stats
        # One recycled Delay per tenant: arrival gaps vary, but the
        # kernel reads the gap at yield time, so re-arming a single
        # instance avoids a per-arrival allocation on the open-loop
        # fast path (past-knee sweeps offer millions of arrivals).
        nap = sim.delay(0)
        for gap in state.spec.arrivals.gaps(arrival_seed):
            yield nap.retime(gap)
            op = next(state.stream)
            stats.record_offer()
            self._offer(state, op, 0)

    def _offer(self, state: TenantState, op, attempt: int) -> None:
        decision = state.admission.decide(len(state.queue), attempt)
        if decision is ADMIT:
            state.queue.append((self.sim.now, op))
            state.max_queue_depth = max(state.max_queue_depth, len(state.queue))
            state.tokens.put(1)
        elif decision is DEFER:
            state.stats.record_deferred()
            delay = state.admission.defer_delay_ns(attempt)
            self.sim.call_after(delay, self._reoffer, (state, op, attempt + 1))
        else:
            state.stats.record_shed()

    def _reoffer(self, pending: Tuple[TenantState, object, int]) -> None:
        state, op, attempt = pending
        self._offer(state, op, attempt)

    def _worker_loop(self, state: TenantState, factory: ExecutorFactory):
        execute = factory()
        sim = self.sim
        stats = state.stats
        admission = state.admission
        while True:
            yield state.tokens.take(1)
            arrived_at, op = state.queue.popleft()
            queue_delay = sim.now - arrived_at
            stats.record_queue_delay(queue_delay)
            issued_at = sim.now
            yield from execute(op)
            admission.observe_service(sim.now - issued_at)
            stats.record_op(sim.now - arrived_at)
