"""Tenants: an arrival process + workload mix + SLO, bound to workers.

A :class:`TenantSpec` is the unit of multi-tenancy in the traffic
engine: each tenant gets its own arrival process, its own operation
queue and admission controller, and a dedicated set of worker coroutines
(spread over the deployment's :class:`repro.core.SmartThread`\\ s, so
tenants still contend for the same RNICs and fabric).  Per-tenant
statistics ride in a standard :class:`repro.core.OperationStats`
extended with queueing-delay and shed/deferred accounting, so they merge
and export through the existing observability paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.traffic.arrivals import ArrivalProcess

#: admission policies (see repro.traffic.admission)
ADMIT_NONE = "none"
ADMIT_SHED = "shed"
ADMIT_DEFER = "defer"
POLICIES = (ADMIT_NONE, ADMIT_SHED, ADMIT_DEFER)


@dataclass(frozen=True)
class Slo:
    """A tenant's service-level objective.

    ``target_p99_ns`` bounds total (arrival→completion) latency; the
    admission controller converts it into a queue-depth budget from the
    observed service time.  ``max_queue_depth`` is an explicit hard cap
    (both may be set; the tighter one wins).  ``policy`` picks what
    happens to an arrival over budget: ``"shed"`` drops it, ``"defer"``
    re-offers it after a jittered backoff up to ``defer_limit`` times
    before shedding, ``"none"`` disables admission control entirely.
    """

    target_p99_ns: Optional[float] = None
    max_queue_depth: Optional[int] = None
    policy: str = ADMIT_SHED
    defer_limit: int = 4

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.target_p99_ns is not None and self.target_p99_ns <= 0:
            raise ValueError(f"target_p99_ns must be positive, got {self.target_p99_ns}")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.defer_limit < 0:
            raise ValueError(f"defer_limit must be >= 0, got {self.defer_limit}")

    @property
    def unlimited(self) -> bool:
        """True when no budget can ever bind (admission is a no-op)."""
        return (self.policy == ADMIT_NONE
                or (self.target_p99_ns is None and self.max_queue_depth is None))


#: the SLO that admits everything (knee-finder sweeps use it to expose
#: unbounded queueing growth past saturation)
NO_SLO = Slo(policy=ADMIT_NONE)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of an open-loop run.

    ``workload`` is a :class:`repro.workloads.ycsb.YcsbWorkload` for the
    hash-table/B+Tree apps or a benchmark name (``"smallbank"`` /
    ``"tatp"``) for DTX; ``None`` picks the runner's default.
    ``workers`` is the number of dedicated worker coroutines serving
    this tenant's queue.
    """

    name: str
    arrivals: ArrivalProcess
    workload: object = None
    slo: Slo = field(default_factory=lambda: NO_SLO)
    workers: int = 4

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
