"""SLO-driven admission control for open-loop tenants.

Past the latency-throughput knee an open-loop queue grows without bound;
the only way to keep a tenant inside its SLO is to stop admitting work
it can no longer serve in time.  The controller here converts the
tenant's p99 target into a queue-depth budget using the observed mean
service time (an EWMA fed by the engine's workers):

    queueing budget ≈ target_p99 − service
    depth budget    ≈ workers × (target_p99 / service − 1)

— i.e. with ``d`` ops queued ahead of an arrival and ``w`` workers
draining them, the arrival waits about ``d × service / w``, so admitting
only while ``d`` is under the budget caps total latency near the target.
An explicit ``max_queue_depth`` (when set) is an additional hard cap.

Arrivals over budget are *shed* (dropped, counted) or *deferred*:
re-offered after a jittered truncated-exponential backoff — the same
primitive the §4.3 conflict avoider uses — up to ``defer_limit`` times,
then shed.  All randomness comes from a seeded ``random.Random`` so
admission decisions replay bit-identically.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.rng import truncated_exponential_backoff_ns
from repro.traffic.tenant import ADMIT_DEFER, ADMIT_NONE, ADMIT_SHED, Slo

#: decision constants returned by :meth:`AdmissionController.decide`
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"

#: EWMA smoothing factor for the observed service time
_SERVICE_ALPHA = 0.1


class AdmissionController:
    """Per-tenant queue-depth budgeting against an :class:`Slo`."""

    def __init__(
        self,
        slo: Slo,
        workers: int,
        seed: int = 0,
        defer_unit_ns: float = 2_000.0,
    ):
        self.slo = slo
        self.workers = max(1, workers)
        self.rng = random.Random(seed)
        self.defer_unit_ns = defer_unit_ns
        #: EWMA of per-op service time (total minus queueing), ns
        self.service_ewma_ns: Optional[float] = None

    def observe_service(self, service_ns: float) -> None:
        """Feed one completed op's service time into the EWMA."""
        if self.service_ewma_ns is None:
            self.service_ewma_ns = service_ns
        else:
            self.service_ewma_ns += _SERVICE_ALPHA * (
                service_ns - self.service_ewma_ns
            )

    def budget_depth(self) -> Optional[int]:
        """Max queue depth the SLO allows right now (None = unlimited).

        Before the first completion there is no service estimate, so the
        p99 budget cannot bind yet; an explicit ``max_queue_depth`` still
        does.
        """
        slo = self.slo
        if slo.unlimited:
            return None
        depth = slo.max_queue_depth
        if slo.target_p99_ns is not None and self.service_ewma_ns:
            slo_depth = int(
                self.workers
                * max(slo.target_p99_ns / self.service_ewma_ns - 1.0, 0.0)
            )
            depth = slo_depth if depth is None else min(depth, slo_depth)
        return depth

    def decide(self, queue_depth: int, attempt: int = 0) -> str:
        """ADMIT, DEFER or SHED an arrival seeing ``queue_depth`` waiters."""
        slo = self.slo
        if slo.policy == ADMIT_NONE:
            return ADMIT
        budget = self.budget_depth()
        if budget is None or queue_depth < budget:
            return ADMIT
        if slo.policy == ADMIT_DEFER and attempt < slo.defer_limit:
            return DEFER
        assert slo.policy in (ADMIT_SHED, ADMIT_DEFER)
        return SHED

    def defer_delay_ns(self, attempt: int) -> float:
        """Jittered backoff before re-offering a deferred arrival."""
        return truncated_exponential_backoff_ns(
            attempt, self.defer_unit_ns, self.defer_unit_ns * 64, self.rng
        )
