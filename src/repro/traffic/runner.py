"""Open-loop experiment runner for the three SMART applications.

Mirrors :mod:`repro.bench.runner` — same deployments, same app servers
and clients, same warmup/measure discipline — but drives the clients
from an :class:`OpenLoopEngine` instead of closed client loops, so
offered load is independent of service progress and queueing delay is
measured rather than omitted.

``run_open_loop`` is registered with :mod:`repro.bench.parallel`, so
every argument (including :class:`TenantSpec` and its arrival process /
SLO members) must stay picklable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.bench.runner import (
    SYSTEM_FEATURES,
    Deployment,
    build_deployment,
    effective_warmup_ns,
    load_hashtable_server,
)
from repro.core import OperationStats
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.engine import OpenLoopEngine
from repro.traffic.tenant import NO_SLO, Slo, TenantSpec
from repro.workloads.ycsb import INSERT, READ, UPDATE

#: default system per app (mirrors the closed-loop runners)
DEFAULT_SYSTEMS = {"hashtable": "smart-ht", "dtx": "smart-dtx", "btree": "smart-bt"}


@dataclass
class TenantResult:
    """Measured-window outcome for one tenant."""

    tenant: str
    workers: int
    #: long-run mean of the arrival process (what the sweep asked for)
    nominal_mops: float
    #: arrivals actually generated in the window
    offered_mops: float
    #: ops completed in the window
    achieved_mops: float
    offered: int
    completed: int
    shed: int
    deferred: int
    #: ops still queued (admitted, not yet issued) at window end —
    #: grows without bound past the knee when admission is off
    backlog: int
    max_queue_depth: int
    #: arrival→completion latency (includes queueing delay)
    p50_latency_ns: Optional[float]
    p99_latency_ns: Optional[float]
    #: arrival→issue queueing delay
    queue_p50_ns: Optional[float]
    queue_p99_ns: Optional[float]
    queue_mean_ns: float
    avg_retries: float


@dataclass
class OpenLoopResult:
    """Aggregated outcome of one open-loop experiment point."""

    app: str
    system: str
    threads: int
    measure_ns: float
    tenants: List[TenantResult] = field(default_factory=list)

    @property
    def offered_mops(self) -> float:
        return sum(t.offered_mops for t in self.tenants)

    @property
    def achieved_mops(self) -> float:
        return sum(t.achieved_mops for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def deferred(self) -> int:
        return sum(t.deferred for t in self.tenants)

    @property
    def backlog(self) -> int:
        return sum(t.backlog for t in self.tenants)

    @property
    def worst_p99_latency_ns(self) -> Optional[float]:
        values = [t.p99_latency_ns for t in self.tenants
                  if t.p99_latency_ns is not None]
        return max(values) if values else None


def _tenant_result(state, measure_ns: float) -> TenantResult:
    stats: OperationStats = state.stats
    queue_hist = stats.queue_delay_hist
    return TenantResult(
        tenant=state.spec.name,
        workers=state.spec.workers,
        nominal_mops=state.spec.arrivals.offered_mops,
        offered_mops=stats.offered / measure_ns * 1e3,
        achieved_mops=stats.ops / measure_ns * 1e3,
        offered=stats.offered,
        completed=stats.ops,
        shed=stats.shed,
        deferred=stats.deferred,
        backlog=state.backlog,
        max_queue_depth=state.max_queue_depth,
        p50_latency_ns=stats.latency_percentile_ns(0.50),
        p99_latency_ns=stats.latency_percentile_ns(0.99),
        queue_p50_ns=queue_hist.percentile(0.50),
        queue_p99_ns=queue_hist.percentile(0.99),
        queue_mean_ns=queue_hist.mean,
        avg_retries=stats.avg_retries,
    )


# -- per-app wiring ------------------------------------------------------------


def _setup_hashtable(system, threads, compute_blades, memory_blades, servers,
                     item_count, features, config, seed, client_cpu_ns):
    from repro.apps.race.client import HashTableClient
    from repro.workloads.ycsb import WRITE_HEAVY

    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    deployment, server = load_hashtable_server(
        deployment, item_count, seed,
        rebuild=lambda: build_deployment(
            features, threads, compute_blades, memory_blades, config, seed
        ),
    )
    meta = server.meta()

    def stream_for(spec: TenantSpec, stream_seed: int):
        workload = spec.workload or WRITE_HEAVY
        return workload.stream(item_count, stream_seed)

    def executor_for(spec: TenantSpec, smart):
        def factory():
            client = HashTableClient(smart.handle(), meta)

            def execute(item):
                op, key, value = item
                if op == READ:
                    yield from client.search(key)
                elif op == UPDATE:
                    yield from client.update(key, value)
                elif op == INSERT:
                    yield from client.insert(key, value)

            return execute

        return factory

    return deployment, stream_for, executor_for


def _setup_dtx(system, threads, compute_blades, memory_blades, servers,
               item_count, features, config, seed, client_cpu_ns,
               benchmark="smallbank"):
    from repro.apps.ford.server import DtxServer
    from repro.apps.ford.txn import TxnClient
    from repro.workloads import smallbank as sb
    from repro.workloads import tatp as tp

    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    server = DtxServer(deployment.memory_nodes, replicas=min(2, memory_blades))
    tables = {}
    benchmarks = {spec_bench for spec_bench in ("smallbank", "tatp")}

    def bench_of(spec: TenantSpec) -> str:
        bench = spec.workload or benchmark
        if bench not in benchmarks:
            raise ValueError(f"DTX workload must be smallbank or tatp, got {bench!r}")
        return bench

    def tables_of(bench: str):
        # Lazy so a run only populates the benchmarks its tenants use.
        if bench not in tables:
            setup = sb.setup if bench == "smallbank" else tp.setup
            kwargs = ({"accounts": item_count} if bench == "smallbank"
                      else {"subscribers": item_count})
            tables[bench] = setup(server, **kwargs)
        return tables[bench]

    def stream_for(spec: TenantSpec, stream_seed: int):
        bench = bench_of(spec)
        tables_of(bench)
        module = sb if bench == "smallbank" else tp
        return module.transaction_stream(item_count, stream_seed)

    def executor_for(spec: TenantSpec, smart):
        bench = bench_of(spec)

        def factory():
            client = TxnClient(smart.handle(), server.alloc_log_ring())
            bench_tables = tables_of(bench)
            if bench == "smallbank":
                def execute(item):
                    profile, accounts, amount = item
                    yield from client.run(
                        lambda txn, p=profile, a=accounts, m=amount:
                        sb.run_profile(txn, bench_tables, p, a, m)
                    )
            else:
                def execute(item):
                    profile, sub, aux = item
                    yield from client.run(
                        lambda txn, p=profile, s=sub, x=aux:
                        tp.run_profile(txn, bench_tables, p, s, x)
                    )
            return execute

        return factory

    return deployment, stream_for, executor_for


def _setup_btree(system, threads, compute_blades, memory_blades, servers,
                 item_count, features, config, seed, client_cpu_ns):
    from repro.apps.sherman.client import (
        BTreeClient, LocalLockTable, SpeculativeCache,
    )
    from repro.apps.sherman.server import BTreeServer
    from repro.cluster import Cluster
    from repro.core import SmartContext, SmartThread
    from repro.workloads.ycsb import WRITE_HEAVY

    if features is None:
        base = {"sherman": "sherman", "sherman-sl": "sherman", "smart-bt": "smart-bt"}
        features = SYSTEM_FEATURES[base[system]]()
    speculative = system in ("sherman-sl", "smart-bt")
    from repro.bench.runner import bench_features

    features = bench_features(features)
    cluster = Cluster(config)
    nodes = cluster.add_nodes(servers)
    server = BTreeServer(nodes, heap_bytes_per_blade=max(16 << 20, item_count * 64))
    rng = random.Random(seed)
    server.bulk_load([(k, rng.getrandbits(32)) for k in range(item_count)])
    meta = server.meta()

    smart_threads: List = []
    contexts: List = []  # (index_cache, locks, spec_cache) per smart thread
    for blade_index, node in enumerate(nodes):
        node.add_threads(threads)
        SmartContext(node, nodes, features)
        index_cache = {}
        locks = LocalLockTable(cluster.sim)
        spec_cache = SpeculativeCache() if speculative else None
        for thread in node.threads:
            smart_threads.append(
                SmartThread(thread, features, seed=seed + blade_index * 1000)
            )
            contexts.append((index_cache, locks, spec_cache))
    deployment = Deployment(cluster, nodes, nodes, smart_threads, features)

    def stream_for(spec: TenantSpec, stream_seed: int):
        workload = spec.workload or WRITE_HEAVY
        return workload.stream(item_count, stream_seed)

    def executor_for(spec: TenantSpec, smart):
        index_cache, locks, spec_cache = contexts[smart_threads.index(smart)]

        def factory():
            client = BTreeClient(
                smart.handle(), meta, index_cache, locks, spec_cache=spec_cache,
                client_cpu_ns=client_cpu_ns,
            )

            def execute(item):
                op, key, value = item
                if op == READ:
                    yield from client.lookup(key)
                elif op == UPDATE:
                    yield from client.update(key, value)
                elif op == INSERT:
                    yield from client.insert(key, value)

            return execute

        return factory

    return deployment, stream_for, executor_for


_SETUPS: dict = {
    "hashtable": _setup_hashtable,
    "dtx": _setup_dtx,
    "btree": _setup_btree,
}


# -- the runner ----------------------------------------------------------------


def run_open_loop(
    app: str = "hashtable",
    system: Optional[str] = None,
    tenants: Optional[List[TenantSpec]] = None,
    rate_mops: float = 1.0,
    arrivals=None,
    slo: Optional[Slo] = None,
    workers: int = 8,
    threads: int = 8,
    compute_blades: int = 1,
    memory_blades: int = 2,
    servers: int = 1,
    item_count: int = 50_000,
    benchmark: str = "smallbank",
    features=None,
    config=None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    client_cpu_ns: float = 2000.0,
    obs=None,
) -> OpenLoopResult:
    """One open-loop experiment point.

    With ``tenants=None`` a single default tenant is built from
    ``rate_mops`` / ``arrivals`` / ``slo`` / ``workers`` (Poisson
    arrivals unless an explicit process is given).  Each tenant's
    workers are spread round-robin over the deployment's SMART threads,
    so tenants contend for the same RNICs and fabric while keeping
    private queues, stats and admission state.
    """
    if app not in _SETUPS:
        raise ValueError(f"app must be one of {sorted(_SETUPS)}, got {app!r}")
    system = system or DEFAULT_SYSTEMS[app]
    if tenants is None:
        tenants = [TenantSpec(
            "t0",
            arrivals or PoissonArrivals(rate_mops),
            slo=slo or NO_SLO,
            workers=workers,
        )]

    kwargs = {"benchmark": benchmark} if app == "dtx" else {}
    deployment, stream_for, executor_for = _SETUPS[app](
        system, threads, compute_blades, memory_blades, servers,
        item_count, features, config, seed, client_cpu_ns, **kwargs
    )

    if obs is not None:
        obs.attach_deployment(deployment)

    sim = deployment.cluster.sim
    engine = OpenLoopEngine(sim, seed=seed)
    seeder = random.Random(seed)
    worker_index = 0
    for spec in tenants:
        stream = stream_for(spec, seeder.getrandbits(31))
        executors = []
        for _ in range(spec.workers):
            smart = deployment.smart_threads[
                worker_index % len(deployment.smart_threads)
            ]
            executors.append(executor_for(spec, smart))
            worker_index += 1
        engine.add_tenant(spec, stream, executors, seeder.getrandbits(31))

    warm = effective_warmup_ns(deployment.features, warmup_ns)
    sim.run(until=warm)
    for smart in deployment.smart_threads:
        smart.stats.reset()
    engine.reset_window()
    sim.run(until=warm + measure_ns)

    result = OpenLoopResult(
        app=app, system=system, threads=threads, measure_ns=measure_ns,
        tenants=[_tenant_result(state, measure_ns) for state in engine.tenants],
    )

    if obs is not None:
        obs.phase("warmup", 0, warm)
        obs.phase("measure", warm, warm + measure_ns)
        obs.collect_cluster(deployment.cluster, window_ns=measure_ns)
        obs.collect_stats(
            OperationStats.merge([s.stats for s in deployment.smart_threads])
        )
        for state in engine.tenants:
            obs.collect_stats(state.stats, prefix=f"tenant.{state.spec.name}")
    return result
