"""Open-loop, multi-tenant traffic generation over the simulator.

The closed-loop runners in :mod:`repro.bench.runner` issue each op only
after the previous one completes, which under-reports latency past
saturation (coordinated omission).  This package generates arrivals
independently of service progress:

* :mod:`repro.traffic.arrivals` — seeded deterministic / Poisson /
  bursty on-off / ramp-diurnal arrival processes;
* :mod:`repro.traffic.tenant` — :class:`TenantSpec` binding an arrival
  process, a workload mix and an :class:`Slo` to dedicated workers;
* :mod:`repro.traffic.admission` — SLO-driven shedding/deferral;
* :mod:`repro.traffic.engine` — the arrival→admission→queue→worker
  machinery on one simulator;
* :mod:`repro.traffic.runner` — ``run_open_loop`` for the hash-table,
  DTX and B+Tree apps.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    OnOffArrivals,
    PoissonArrivals,
    RampArrivals,
)
from repro.traffic.engine import OpenLoopEngine, TenantState
from repro.traffic.resharding import PhaseStats, ReshardingResult, run_resharding
from repro.traffic.runner import OpenLoopResult, TenantResult, run_open_loop
from repro.traffic.tenant import (
    ADMIT_DEFER,
    ADMIT_NONE,
    ADMIT_SHED,
    NO_SLO,
    Slo,
    TenantSpec,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "RampArrivals",
    "TenantSpec",
    "Slo",
    "NO_SLO",
    "ADMIT_NONE",
    "ADMIT_SHED",
    "ADMIT_DEFER",
    "OpenLoopEngine",
    "TenantState",
    "OpenLoopResult",
    "TenantResult",
    "run_open_loop",
    "PhaseStats",
    "ReshardingResult",
    "run_resharding",
]
