"""Memory-blade substrate: byte-addressable remote memory.

A memory blade owns a flat byte space carved into regions (DRAM or NVM).
One-sided operations (READ/WRITE/CAS/FAA) execute atomically at a single
simulated instant, which is exactly the atomicity an RNIC provides for
8-byte atomics and cacheline-sized accesses.
"""

from repro.memory.address import (
    BLADE_SHIFT,
    NULL_ADDR,
    blade_of,
    make_addr,
    offset_of,
)
from repro.memory.blade import MemoryBlade, Region

__all__ = [
    "BLADE_SHIFT",
    "MemoryBlade",
    "NULL_ADDR",
    "Region",
    "blade_of",
    "make_addr",
    "offset_of",
]
