"""Memory-blade substrate: byte-addressable remote memory.

A memory blade owns a flat byte space carved into regions (DRAM or NVM).
One-sided operations (READ/WRITE/CAS/FAA) execute atomically at a single
simulated instant, which is exactly the atomicity an RNIC provides for
8-byte atomics and cacheline-sized accesses.

On top of the flat byte space sit the pieces that make the layer
*elastic*: slab/arena allocation with free/reuse (:mod:`.allocator`),
lease-based client ownership (:mod:`.lease`), and consistent-hash
sharding with rebalance plans (:mod:`.shard`).
"""

from repro.memory.address import (
    BLADE_SHIFT,
    MAX_BLADE_ID,
    NULL_ADDR,
    OFFSET_MASK,
    blade_of,
    make_addr,
    offset_of,
)
from repro.memory.allocator import ArenaAllocator, BladeAllocator, SlabAllocator
from repro.memory.blade import MemoryBlade, Region
from repro.memory.elastic import Autoscaler, ScaleEvent
from repro.memory.lease import Lease, LeaseError, LeaseManager
from repro.memory.shard import HashRing, ShardMap, ShardMove, shard_of

__all__ = [
    "ArenaAllocator",
    "Autoscaler",
    "BLADE_SHIFT",
    "BladeAllocator",
    "ScaleEvent",
    "HashRing",
    "Lease",
    "LeaseError",
    "LeaseManager",
    "MAX_BLADE_ID",
    "MemoryBlade",
    "NULL_ADDR",
    "OFFSET_MASK",
    "Region",
    "ShardMap",
    "ShardMove",
    "SlabAllocator",
    "blade_of",
    "make_addr",
    "offset_of",
    "shard_of",
]
