"""Slab/arena allocation for blade memory.

Replaces the original bump-pointer arena ("regions are never freed") with
a layered allocator that supports free/reuse, the prerequisite for shard
migration and blade draining:

* :class:`ArenaAllocator` — an address-ordered first-fit free list with
  split-on-alloc and coalesce-on-free.  First-fit over an address-ordered
  list is deterministic and, while nothing has been freed, produces the
  *exact same* placement as the old bump pointer — which keeps every
  bulk-loaded table layout (and therefore every simulated number)
  bit-identical to the pre-allocator code.
* :class:`SlabAllocator` — power-of-two size classes carved out of the
  arena in fixed chunks, with LIFO per-class free lists.  Small-object
  alloc/free (KV blocks, lease extents) cycles through slabs without
  touching the arena, and an entirely-free chunk is returned to it.
* :class:`BladeAllocator` — the facade a :class:`MemoryBlade` owns:
  routes requests by size, tracks fragmentation/occupancy statistics and
  publishes them into a :mod:`repro.obs` registry on demand.

Everything here is plain bookkeeping over integers: no simulator events,
no RNG, no wall clock — identical call sequences produce identical
placements, which is what lets fixed-seed cluster runs (including shard
migrations that free and re-allocate whole regions) replay bit-identically.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Tuple

#: chunk size slabs carve from the arena
SLAB_CHUNK_BYTES = 64 << 10
#: largest request served from a slab class; bigger goes to the arena
SLAB_MAX_BYTES = 4096
#: smallest slab class (one cacheline)
SLAB_MIN_BYTES = 64


def _size_class(size: int) -> int:
    """Smallest power-of-two slab class that fits ``size``."""
    cls = SLAB_MIN_BYTES
    while cls < size:
        cls <<= 1
    return cls


class ArenaAllocator:
    """Address-ordered first-fit free-list allocator over ``[base, end)``."""

    def __init__(self, base: int, end: int):
        if not 0 <= base < end:
            raise ValueError(f"bad arena bounds [{base}, {end})")
        self.base = base
        self.end = end
        #: sorted, non-adjacent, non-overlapping (base, size) free extents
        self._free: List[Tuple[int, int]] = [(base, end - base)]

    # -- queries -----------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def fragmentation(self) -> float:
        """1 − largest_free/free: 0 when all free space is one extent."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    # -- allocation --------------------------------------------------------

    def alloc(self, size: int, align: int = 8) -> int:
        """First extent (lowest address) that fits ``size`` at ``align``."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if align <= 0 or align & (align - 1):
            raise ValueError(f"alignment must be a positive power of two, got {align}")
        for index, (block_base, block_size) in enumerate(self._free):
            aligned = (block_base + align - 1) & ~(align - 1)
            head_gap = aligned - block_base
            if head_gap + size > block_size:
                continue
            tail_base = aligned + size
            tail_size = block_base + block_size - tail_base
            replacement = []
            if head_gap:
                replacement.append((block_base, head_gap))
            if tail_size:
                replacement.append((tail_base, tail_size))
            self._free[index : index + 1] = replacement
            return aligned
        raise MemoryError(
            f"arena exhausted: {size} bytes requested, "
            f"{self.free_bytes} free (largest block {self.largest_free_block})"
        )

    def free(self, base: int, size: int) -> None:
        """Return ``[base, base+size)``, coalescing with both neighbours."""
        if size <= 0:
            raise ValueError(f"free size must be positive, got {size}")
        if base < self.base or base + size > self.end:
            raise ValueError(
                f"free [{base}, {base + size}) outside arena "
                f"[{self.base}, {self.end})"
            )
        index = bisect_right(self._free, (base, size))
        if index > 0:
            prev_base, prev_size = self._free[index - 1]
            if prev_base + prev_size > base:
                raise ValueError(f"double free overlapping [{prev_base}, +{prev_size})")
        if index < len(self._free) and base + size > self._free[index][0]:
            nxt = self._free[index]
            raise ValueError(f"double free overlapping [{nxt[0]}, +{nxt[1]})")
        # Coalesce with predecessor and/or successor.
        if index > 0 and self._free[index - 1][0] + self._free[index - 1][1] == base:
            prev_base, prev_size = self._free[index - 1]
            base, size = prev_base, prev_size + size
            index -= 1
            del self._free[index]
        if index < len(self._free) and base + size == self._free[index][0]:
            size += self._free[index][1]
            del self._free[index]
        insort(self._free, (base, size))


class SlabAllocator:
    """Power-of-two size classes over chunks leased from an arena."""

    def __init__(self, arena: ArenaAllocator, chunk_bytes: int = SLAB_CHUNK_BYTES):
        self.arena = arena
        self.chunk_bytes = chunk_bytes
        #: class -> LIFO of free object offsets
        self._free: Dict[int, List[int]] = {}
        #: class -> set mirror of the free list (O(1) double-free check)
        self._free_set: Dict[int, set] = {}
        #: class -> list of chunk base offsets (for accounting/teardown)
        self._chunks: Dict[int, List[int]] = {}
        #: class -> per-chunk count of objects currently allocated
        self._live: Dict[int, Dict[int, int]] = {}

    def _chunk_of(self, cls: int, offset: int) -> int:
        for chunk in self._chunks[cls]:
            if chunk <= offset < chunk + self.chunk_bytes:
                return chunk
        raise ValueError(f"offset {offset} not in any size-{cls} slab chunk")

    def alloc(self, size: int) -> Tuple[int, int]:
        """Allocate; returns ``(offset, size_class)``."""
        cls = _size_class(size)
        stack = self._free.setdefault(cls, [])
        members = self._free_set.setdefault(cls, set())
        if not stack:
            chunk = self.arena.alloc(self.chunk_bytes, align=SLAB_MIN_BYTES)
            self._chunks.setdefault(cls, []).append(chunk)
            self._live.setdefault(cls, {})[chunk] = 0
            # Push in reverse so objects pop in ascending address order.
            for off in range(chunk + self.chunk_bytes - cls, chunk - 1, -cls):
                stack.append(off)
                members.add(off)
        offset = stack.pop()
        members.discard(offset)
        self._live[cls][self._chunk_of(cls, offset)] += 1
        return offset, cls

    def free(self, offset: int, size: int) -> None:
        """Free an object; a fully-free chunk is returned to the arena."""
        cls = _size_class(size)
        chunk = self._chunk_of(cls, offset)
        if offset in self._free_set.get(cls, ()):
            raise ValueError(f"double free of slab object at {offset}")
        live = self._live[cls]
        live[chunk] -= 1
        self._free[cls].append(offset)
        self._free_set[cls].add(offset)
        if live[chunk] == 0:
            keep = [
                off for off in self._free[cls]
                if not chunk <= off < chunk + self.chunk_bytes
            ]
            self._free[cls] = keep
            self._free_set[cls] = set(keep)
            self._chunks[cls].remove(chunk)
            del live[chunk]
            self.arena.free(chunk, self.chunk_bytes)

    @property
    def cached_bytes(self) -> int:
        """Bytes held in per-class free lists (reserved, reusable)."""
        return sum(cls * len(stack) for cls, stack in self._free.items())

    @property
    def chunk_count(self) -> int:
        return sum(len(chunks) for chunks in self._chunks.values())


class BladeAllocator:
    """Per-blade allocation facade: slab classes over a shared arena.

    Small requests (≤ :data:`SLAB_MAX_BYTES`, default 8-byte alignment)
    ride the slab layer; large or specially-aligned requests go straight
    to the arena.  Statistics cover both layers, and
    :meth:`publish_metrics` snapshots them into a
    :class:`repro.obs.MetricsRegistry` — pull-based, so metric collection
    never perturbs simulated behaviour.
    """

    def __init__(self, base: int, end: int):
        self.arena = ArenaAllocator(base, end)
        self.slabs = SlabAllocator(self.arena)
        self.capacity = end - base
        # Statistics
        self.allocs = 0
        self.frees = 0
        self.failed_allocs = 0
        self.bytes_in_use = 0
        #: (offset -> (rounded size, is_slab)) of every live allocation
        self._live: Dict[int, Tuple[int, bool]] = {}
        #: histogram feed of requested sizes (attached lazily by obs)
        self.size_hist = None

    # -- allocation --------------------------------------------------------

    def alloc(self, size: int, align: int = 8, prefer_slab: bool = True) -> int:
        """Allocate ``size`` bytes; returns the offset.

        ``prefer_slab=False`` forces the arena even for small requests —
        region allocation uses it so placement stays first-fit sequential
        (bit-identical to the historical bump pointer while nothing has
        been freed) instead of landing inside a 64 KiB slab chunk.

        Raises :class:`MemoryError` with the true free-space picture when
        neither layer can satisfy the request.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        try:
            if prefer_slab and size <= SLAB_MAX_BYTES and align <= SLAB_MIN_BYTES:
                offset, cls = self.slabs.alloc(max(size, align))
                rounded, is_slab = cls, True
            else:
                offset = self.arena.alloc(size, align)
                rounded, is_slab = size, False
        except MemoryError:
            self.failed_allocs += 1
            raise
        self.allocs += 1
        self.bytes_in_use += rounded
        self._live[offset] = (rounded, is_slab)
        if self.size_hist is not None:
            self.size_hist.record(size)
        return offset

    def free(self, offset: int) -> None:
        """Free a live allocation by its offset."""
        entry = self._live.pop(offset, None)
        if entry is None:
            raise ValueError(f"free of unknown offset {offset}")
        rounded, is_slab = entry
        if is_slab:
            self.slabs.free(offset, rounded)
        else:
            self.arena.free(offset, rounded)
        self.frees += 1
        self.bytes_in_use -= rounded

    def size_of(self, offset: int) -> int:
        """Rounded size of a live allocation."""
        return self._live[offset][0]

    # -- statistics --------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def free_bytes(self) -> int:
        """Arena free bytes plus reusable slab cache bytes."""
        return self.arena.free_bytes + self.slabs.cached_bytes

    @property
    def largest_free_block(self) -> int:
        return self.arena.largest_free_block

    @property
    def fragmentation(self) -> float:
        """1 − largest_free_block/free_bytes across both layers."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def stats(self) -> Dict[str, float]:
        return {
            "capacity": float(self.capacity),
            "bytes_in_use": float(self.bytes_in_use),
            "free_bytes": float(self.free_bytes),
            "largest_free_block": float(self.largest_free_block),
            "fragmentation": self.fragmentation,
            "free_blocks": float(self.arena.free_blocks),
            "slab_cached_bytes": float(self.slabs.cached_bytes),
            "slab_chunks": float(self.slabs.chunk_count),
            "live_allocations": float(self.live_allocations),
            "allocs": float(self.allocs),
            "frees": float(self.frees),
            "failed_allocs": float(self.failed_allocs),
        }

    def publish_metrics(self, registry, prefix: str) -> None:
        """Snapshot the current statistics into a metrics registry."""
        stats = self.stats()
        for name in ("allocs", "frees", "failed_allocs"):
            registry.counter(f"{prefix}.{name}").value = stats.pop(name)
        for name, value in stats.items():
            unit = "" if name in ("fragmentation", "free_blocks", "slab_chunks",
                                  "live_allocations") else "B"
            registry.gauge(f"{prefix}.{name}", unit).set(value)
