"""The memory blade: a big byte array plus region bookkeeping.

Memory blades in the paper have "near-zero compute" (1-2 weak cores): they
never post RDMA requests, so their RNIC only runs the responder pipeline.
The blade therefore exposes only *data* operations here; the timing of
remote access lives in :mod:`repro.rnic.engine`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.address import make_addr
from repro.memory.allocator import BladeAllocator

_U64 = struct.Struct("<Q")
U64_MAX = (1 << 64) - 1


@dataclass
class Region:
    """A named range of blade memory."""

    name: str
    base: int
    size: int
    persistent: bool = False
    #: registered for one-sided remote access (an MR in the blade's MPT);
    #: only checked when the RNIC enforces protection
    remote_access: bool = True
    #: MR pinning: ``True`` pins every page; ``False`` registers the
    #: region on-demand-paged (ODP — every page can fault at the
    #: responder); ``None`` defers to ``RnicConfig.pinned_ratio``
    pinned: Optional[bool] = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, offset: int, size: int = 1) -> bool:
        # size >= 1 keeps zero-byte "accesses" at offset == end from
        # passing protection (a region never contains its one-past-end).
        return size >= 1 and self.base <= offset and offset + size <= self.end


class MemoryBlade:
    """Byte-addressable memory of one blade.

    All accessors take *offsets* local to this blade; global addresses are
    translated by callers via :mod:`repro.memory.address`.
    """

    def __init__(self, blade_id: int, capacity: int = 64 << 20):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.blade_id = blade_id
        self.capacity = capacity
        self._memory = bytearray(capacity)
        self._regions: Dict[str, Region] = {}
        # Offset 0 is reserved so no object lives at NULL; regions are
        # carved from a first-fit arena that places them exactly like the
        # historical bump pointer until something is freed.
        self.allocator = BladeAllocator(8, capacity)
        #: live regions registered with an explicit ``pinned=False`` —
        #: the responder's cheap "could anything here fault?" gate
        self.unpinned_regions = 0
        # Statistics
        self.reads = 0
        self.writes = 0
        self.atomics = 0
        self.failed_cas = 0
        self.power_failures = 0

    # -- region management --------------------------------------------------

    def alloc_region(self, name: str, size: int, persistent: bool = False,
                     remote_access: bool = True,
                     pinned: Optional[bool] = None) -> Region:
        """Carve a fresh region (cacheline-aligned, freeable via free_region).

        ``pinned=False`` registers the region on-demand-paged (ODP): its
        pages can take a responder-side fault on first touch or after an
        invalidation.  ``None`` (the default) follows the device's
        ``pinned_ratio`` knob; ``True`` pins unconditionally.
        """
        if name in self._regions:
            raise ValueError(f"region {name!r} already exists")
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        try:
            base = self.allocator.alloc(size, align=64, prefer_slab=False)
        except MemoryError:
            raise MemoryError(
                f"blade {self.blade_id}: out of memory allocating {name!r} "
                f"({size} bytes requested, {self.allocator.free_bytes} free, "
                f"largest block {self.allocator.largest_free_block})"
            ) from None
        region = Region(name, base, size, persistent, remote_access, pinned)
        self._regions[name] = region
        if pinned is False:
            self.unpinned_regions += 1
        return region

    def register_region(self, name: str, size: int, persistent: bool = False,
                        remote_access: bool = True,
                        pinned: Optional[bool] = None) -> Region:
        """MR-registration view of :meth:`alloc_region` (same semantics);
        the name apps use when the interesting property is the MR
        bookkeeping — in particular ``pinned=False`` for ODP MRs."""
        return self.alloc_region(name, size, persistent=persistent,
                                 remote_access=remote_access, pinned=pinned)

    def free_region(self, name: str) -> None:
        """Release a region's space for reuse and scrub its content.

        Freed bytes are zeroed so a later allocation can never observe a
        previous tenant's data — and so replay stays deterministic even if
        a straggler READ races the free (it sees zeroes, not stale state).
        """
        region = self._regions.pop(name, None)
        if region is None:
            raise KeyError(f"no region named {name!r}")
        self.allocator.free(region.base)
        self._memory[region.base : region.end] = bytes(region.size)
        if region.pinned is False:
            self.unpinned_regions -= 1

    def find_region(self, offset: int, size: int = 1) -> Optional[Region]:
        """The region fully containing [offset, offset+size), if any."""
        for region in self._regions.values():
            if region.contains(offset, size):
                return region
        return None

    def region(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> List[Region]:
        return list(self._regions.values())

    def is_persistent(self, offset: int, size: int = 1) -> bool:
        """True when [offset, offset+size) *overlaps* any persistent
        region — a write only partially landing in NVM still pays the
        media penalty for the NVM part (overlap, not containment)."""
        end = offset + size
        return any(
            r.persistent and r.base < end and offset < r.end
            for r in self._regions.values()
        )

    def global_addr(self, offset: int) -> int:
        return make_addr(self.blade_id, offset)

    def power_fail(self) -> None:
        """Model a blade crash: DRAM content is lost, NVM survives.

        Every byte outside a ``persistent`` region is zeroed; persistent
        regions (FORD's undo-log rings, durable data) keep their content,
        which is what makes crash recovery possible at all.  Region
        bookkeeping (the blade-side allocator state) is kept — it stands
        in for the durable metadata a real blade would re-derive.
        """
        self.power_failures += 1
        survivors = sorted(
            (r for r in self._regions.values() if r.persistent),
            key=lambda r: r.base,
        )
        cursor = 0
        for region in survivors:
            if cursor < region.base:
                self._memory[cursor : region.base] = bytes(region.base - cursor)
            cursor = max(cursor, region.end)
        if cursor < self.capacity:
            self._memory[cursor :] = bytes(self.capacity - cursor)

    # -- data operations -----------------------------------------------------

    def _check(self, offset: int, size: int) -> None:
        if size <= 0:
            raise IndexError(
                f"blade {self.blade_id}: access size must be positive, got {size}"
            )
        if offset < 0 or offset + size > self.capacity:
            raise IndexError(
                f"blade {self.blade_id}: access [{offset}, {offset + size}) "
                f"outside capacity {self.capacity}"
            )

    def read(self, offset: int, size: int) -> bytes:
        self._check(offset, size)
        self.reads += 1
        return bytes(self._memory[offset : offset + size])

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.writes += 1
        self._memory[offset : offset + len(data)] = data

    def read_u64(self, offset: int) -> int:
        self._check(offset, 8)
        return _U64.unpack_from(self._memory, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        self._check(offset, 8)
        _U64.pack_into(self._memory, offset, value & U64_MAX)

    def compare_and_swap(self, offset: int, expected: int, desired: int) -> int:
        """Atomic 8-byte CAS; returns the *old* value (RDMA semantics)."""
        self._check(offset, 8)
        self.atomics += 1
        old = _U64.unpack_from(self._memory, offset)[0]
        if old == expected:
            _U64.pack_into(self._memory, offset, desired & U64_MAX)
        else:
            self.failed_cas += 1
        return old

    def fetch_and_add(self, offset: int, delta: int) -> int:
        """Atomic 8-byte FAA; returns the *old* value."""
        self._check(offset, 8)
        self.atomics += 1
        old = _U64.unpack_from(self._memory, offset)[0]
        _U64.pack_into(self._memory, offset, (old + delta) & U64_MAX)
        return old

    # -- bulk loading ---------------------------------------------------------

    def bulk_write(self, offset: int, data: bytes) -> None:
        """Setup-phase write that bypasses statistics (dataset loading)."""
        self._check(offset, len(data))
        self._memory[offset : offset + len(data)] = data
