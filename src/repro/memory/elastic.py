"""Autoscaling policy: grow or drain the blade fleet from SLO pressure.

The PR-5 admission controller already computes the honest overload
signal — operations it had to SHED or DEFER to protect each tenant's
p99.  The autoscaler consumes exactly that: it samples the cumulative
shed/defer counters each period, and

* **scales out** when the per-period delta crosses a threshold (the
  fleet is too small for the offered load), or
* **scales in** after enough consecutive quiet periods (the fleet is
  over-provisioned).

The mechanism (adding a blade, rewiring QPs, migrating shards) is
injected as generator callbacks, so this module stays free of app- and
traffic-layer imports; the policy itself is a plain seeded-state
coroutine and replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


@dataclass
class ScaleEvent:
    """One autoscaler decision, for reports and assertions."""

    at_ns: float
    action: str  # "scale_out" | "scale_in"
    shed_delta: int
    defer_delta: int
    blades_before: int
    blades_after: int


class Autoscaler:
    """Periodic scaling loop over admission-control pressure signals.

    Parameters
    ----------
    sim : the simulator whose clock paces sampling.
    tenant_states : objects exposing ``.stats.shed`` / ``.stats.deferred``
        cumulative counters (:class:`repro.traffic.engine.TenantState`).
    blade_count_fn : current number of active blades.
    scale_out_fn : generator; adds one blade and rebalances onto it.
    scale_in_fn : optional generator; drains one blade.  ``None``
        disables scale-in.
    """

    def __init__(
        self,
        sim,
        tenant_states: Sequence,
        blade_count_fn: Callable[[], int],
        scale_out_fn: Callable[[], object],
        scale_in_fn: Optional[Callable[[], object]] = None,
        period_ns: float = 200_000.0,
        shed_threshold: int = 1,
        defer_threshold: int = 64,
        quiet_periods: int = 4,
        min_blades: int = 1,
        max_blades: int = 16,
        cooldown_periods: int = 2,
    ):
        if period_ns <= 0:
            raise ValueError("period_ns must be positive")
        if min_blades < 1 or max_blades < min_blades:
            raise ValueError("need 1 <= min_blades <= max_blades")
        self.sim = sim
        self.tenant_states = list(tenant_states)
        self.blade_count_fn = blade_count_fn
        self.scale_out_fn = scale_out_fn
        self.scale_in_fn = scale_in_fn
        self.period_ns = period_ns
        self.shed_threshold = shed_threshold
        self.defer_threshold = defer_threshold
        self.quiet_periods = quiet_periods
        self.min_blades = min_blades
        self.max_blades = max_blades
        self.cooldown_periods = cooldown_periods
        self.events: List[ScaleEvent] = []
        self._stopped = False

    def stop(self) -> None:
        self._stopped = True

    def _pressure(self):
        shed = sum(s.stats.shed for s in self.tenant_states)
        deferred = sum(s.stats.deferred for s in self.tenant_states)
        return shed, deferred

    def run(self):
        """The scaling loop — spawn with ``sim.spawn(autoscaler.run())``."""
        last_shed, last_deferred = self._pressure()
        quiet = 0
        cooldown = 0
        while not self._stopped:
            yield self.sim.timeout(self.period_ns)
            if self._stopped:
                return
            shed, deferred = self._pressure()
            shed_delta = shed - last_shed
            defer_delta = deferred - last_deferred
            last_shed, last_deferred = shed, deferred
            if cooldown > 0:
                cooldown -= 1
                continue
            overloaded = (
                shed_delta >= self.shed_threshold
                or defer_delta >= self.defer_threshold
            )
            blades = self.blade_count_fn()
            if overloaded and blades < self.max_blades:
                quiet = 0
                cooldown = self.cooldown_periods
                yield from self.scale_out_fn()
                self.events.append(ScaleEvent(
                    self.sim.now, "scale_out", shed_delta, defer_delta,
                    blades, self.blade_count_fn(),
                ))
                # Reset the baseline: migration itself sheds/defers.
                last_shed, last_deferred = self._pressure()
            elif not overloaded:
                quiet += 1
                if (
                    self.scale_in_fn is not None
                    and quiet >= self.quiet_periods
                    and blades > self.min_blades
                ):
                    quiet = 0
                    cooldown = self.cooldown_periods
                    yield from self.scale_in_fn()
                    self.events.append(ScaleEvent(
                        self.sim.now, "scale_in", shed_delta, defer_delta,
                        blades, self.blade_count_fn(),
                    ))
                    last_shed, last_deferred = self._pressure()
            else:
                quiet = 0
