"""Consistent-hash sharding of application key spaces across blades.

Two layers:

* :class:`HashRing` — a classic consistent-hash ring with virtual nodes.
  Each blade contributes ``vnodes`` points; a key (or shard id) maps to
  the first ring point clockwise from its hash.  Adding or removing a
  blade only remaps the arcs adjacent to that blade's points — the
  property that makes elastic scale-out cheap.
* :class:`ShardMap` — a level of indirection the apps actually use: the
  key space is pre-partitioned into a fixed number of *shards*, each
  shard placed on a blade by the ring.  Migration moves whole shards, so
  the unit of rebalance is bounded and enumerable; :meth:`rebalance`
  diffs the current placement against the ring and returns the exact
  :class:`ShardMove` list (deterministic order).

Pure integer arithmetic (splitmix64 finalizer, same family as the RACE
layout hashes) — no RNG, no simulator state — so placement and move
plans replay bit-identically under fixed seeds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1

#: default virtual nodes per blade; 64 keeps placement spread within a
#: few percent of even for small fleets while keeping the ring tiny
DEFAULT_VNODES = 64
#: default shard count — a power of two well above any fleet size we run
DEFAULT_SHARDS = 64


def mix64(value: int) -> int:
    """splitmix64 finalizer (independent of the app-level hashes)."""
    value = (value + _GOLDEN_GAMMA) & _MASK_64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return value ^ (value >> 31)


def shard_of(key: int, num_shards: int) -> int:
    """Shard id of a key — an *independent* hash from the ring's, so a
    shard's keys do not cluster on the ring."""
    return mix64(key ^ 0x3C6EF372FE94F82A) % num_shards


class HashRing:
    """Consistent-hash ring over blade ids with virtual nodes."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []          # sorted ring positions
        self._owner: Dict[int, int] = {}      # position -> blade_id
        self._members: List[int] = []         # blade ids, insertion order

    def _positions(self, blade_id: int):
        for replica in range(self.vnodes):
            yield mix64(((blade_id + 1) << 20) | replica)

    def add_node(self, blade_id: int) -> None:
        if blade_id in self._members:
            raise ValueError(f"blade {blade_id} already on the ring")
        for pos in self._positions(blade_id):
            # Ties are astronomically unlikely but must still be
            # deterministic: lowest blade id keeps the point.
            if pos in self._owner:
                if self._owner[pos] < blade_id:
                    continue
            else:
                self._points.insert(bisect_right(self._points, pos), pos)
            self._owner[pos] = blade_id
        self._members.append(blade_id)

    def remove_node(self, blade_id: int) -> None:
        if blade_id not in self._members:
            raise ValueError(f"blade {blade_id} not on the ring")
        self._members.remove(blade_id)
        for pos in self._positions(blade_id):
            if self._owner.get(pos) != blade_id:
                continue
            # A tied point falls back to the smallest surviving claimant.
            claimants = [
                b for b in self._members
                if any(p == pos for p in self._positions(b))
            ]
            if claimants:
                self._owner[pos] = min(claimants)
            else:
                del self._owner[pos]
                self._points.remove(pos)

    @property
    def members(self) -> List[int]:
        return list(self._members)

    def lookup(self, hashed: int) -> int:
        """Blade owning ``hashed`` — first ring point clockwise."""
        if not self._points:
            raise ValueError("hash ring is empty")
        index = bisect_right(self._points, hashed)
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]

    def lookup_key(self, key: int) -> int:
        return self.lookup(mix64(key))


@dataclass(frozen=True)
class ShardMove:
    """One step of a rebalance plan: move ``shard`` from ``src`` to ``dst``."""

    shard: int
    src: int
    dst: int


class ShardMap:
    """Fixed shard space placed on blades by a consistent-hash ring."""

    def __init__(self, blade_ids: Sequence[int], num_shards: int = DEFAULT_SHARDS,
                 vnodes: int = DEFAULT_VNODES):
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        self.ring = HashRing(vnodes)
        for blade_id in blade_ids:
            self.ring.add_node(blade_id)
        #: shard -> blade currently *serving* it (moves only at flip time)
        self.placement: Dict[int, int] = {
            shard: self.ring.lookup(mix64(shard)) for shard in range(num_shards)
        }

    # -- key routing -------------------------------------------------------

    def shard_of(self, key: int) -> int:
        return shard_of(key, self.num_shards)

    def blade_for_shard(self, shard: int) -> int:
        return self.placement[shard]

    def blade_for_key(self, key: int) -> int:
        return self.placement[self.shard_of(key)]

    def shards_on(self, blade_id: int) -> List[int]:
        return [s for s in range(self.num_shards) if self.placement[s] == blade_id]

    def load(self) -> Dict[int, int]:
        """blade -> shard count, for balance assertions and autoscaling."""
        counts: Dict[int, int] = {b: 0 for b in self.ring.members}
        for blade in self.placement.values():
            counts[blade] = counts.get(blade, 0) + 1
        return counts

    # -- elasticity --------------------------------------------------------

    def plan_add(self, blade_id: int) -> List[ShardMove]:
        """Add a blade to the ring; the plan moves only stolen shards."""
        self.ring.add_node(blade_id)
        return self._diff()

    def plan_remove(self, blade_id: int) -> List[ShardMove]:
        """Remove a blade from the ring; the plan drains its shards."""
        self.ring.remove_node(blade_id)
        return self._diff()

    def _diff(self) -> List[ShardMove]:
        moves = []
        for shard in range(self.num_shards):
            target = self.ring.lookup(mix64(shard))
            current = self.placement[shard]
            if target != current:
                moves.append(ShardMove(shard, current, target))
        return moves

    def commit(self, move: ShardMove) -> None:
        """Flip a shard's serving blade (called once its copy is done)."""
        if self.placement[move.shard] != move.src:
            raise ValueError(
                f"shard {move.shard} is on blade {self.placement[move.shard]}, "
                f"not {move.src}"
            )
        self.placement[move.shard] = move.dst
