"""Global 64-bit addresses: ``blade_id`` in the top 16 bits, offset below.

Applications store these addresses inside 8-byte slots (RACE bucket slots,
B+Tree child pointers), so the encoding must round-trip through the byte
representation used by the simulated memory.
"""

from __future__ import annotations

BLADE_SHIFT = 48
OFFSET_MASK = (1 << BLADE_SHIFT) - 1
NULL_ADDR = 0


def make_addr(blade_id: int, offset: int) -> int:
    """Pack a (blade, offset) pair into one 64-bit global address."""
    if not 0 <= blade_id < (1 << 15):
        raise ValueError(f"blade_id out of range: {blade_id}")
    if not 0 <= offset <= OFFSET_MASK:
        raise ValueError(f"offset out of range: {offset}")
    # +1 so that a valid address is never 0 (0 is the null pointer).
    return ((blade_id + 1) << BLADE_SHIFT) | offset


def blade_of(addr: int) -> int:
    """Blade id of a packed address."""
    if addr == NULL_ADDR:
        raise ValueError("null address")
    return (addr >> BLADE_SHIFT) - 1


def offset_of(addr: int) -> int:
    """Offset-within-blade of a packed address."""
    if addr == NULL_ADDR:
        raise ValueError("null address")
    return addr & OFFSET_MASK
