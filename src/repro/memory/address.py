"""Global 64-bit addresses: ``blade_id`` in the top 16 bits, offset below.

Applications store these addresses inside 8-byte slots (RACE bucket slots,
B+Tree child pointers), so the encoding must round-trip through the byte
representation used by the simulated memory.

The top 16 bits hold ``blade_id + 1`` (the bias keeps every valid address
non-zero so 0 can serve as the null pointer), which is why the largest
encodable blade id is ``2**16 - 2``, not ``2**16 - 1``.
"""

from __future__ import annotations

BLADE_SHIFT = 48
OFFSET_MASK = (1 << BLADE_SHIFT) - 1
#: largest blade id the 16-bit field can carry once the +1 bias is applied
MAX_BLADE_ID = (1 << 16) - 2
NULL_ADDR = 0


def make_addr(blade_id: int, offset: int) -> int:
    """Pack a (blade, offset) pair into one 64-bit global address."""
    if not 0 <= blade_id <= MAX_BLADE_ID:
        raise ValueError(f"blade_id out of range: {blade_id}")
    if not 0 <= offset <= OFFSET_MASK:
        raise ValueError(f"offset out of range: {offset}")
    # +1 so that a valid address is never 0 (0 is the null pointer).
    return ((blade_id + 1) << BLADE_SHIFT) | offset


def blade_of(addr: int) -> int:
    """Blade id of a packed address."""
    if addr == NULL_ADDR:
        raise ValueError("null address")
    return (addr >> BLADE_SHIFT) - 1


def offset_of(addr: int) -> int:
    """Offset-within-blade of a packed address."""
    if addr == NULL_ADDR:
        raise ValueError("null address")
    return addr & OFFSET_MASK
