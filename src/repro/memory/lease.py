"""Lease-based client ownership of remote-memory allocations.

Disaggregated allocators cannot rely on client liveness: a compute node
that crashes (or is shed by admission control) must not leak blade memory
forever.  Ownership is therefore a *lease* — a (client, resource) claim
with an expiry in simulated time.  Clients renew while alive; anything
past expiry is reclaimable by the control plane.

The manager is passive bookkeeping like the rest of :mod:`repro.memory`:
it never touches the event loop or RNG, callers pass in ``now`` (usually
``sim.now``), so identical call sequences replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: default lease term — long relative to op latency, short vs. a run
DEFAULT_TERM_NS = 50_000_000  # 50 ms


@dataclass
class Lease:
    """One client's claim on one named resource."""

    resource: str
    client: str
    granted_ns: int
    expires_ns: int
    renewals: int = 0

    def live(self, now: int) -> bool:
        return now < self.expires_ns


class LeaseError(Exception):
    """Raised on conflicting grants or operations on missing leases."""


class LeaseManager:
    """Grant/renew/release leases; expose expired ones for reclaim."""

    def __init__(self, term_ns: int = DEFAULT_TERM_NS):
        if term_ns <= 0:
            raise ValueError(f"lease term must be positive, got {term_ns}")
        self.term_ns = term_ns
        self._leases: Dict[str, Lease] = {}
        # Statistics
        self.grants = 0
        self.renewals = 0
        self.releases = 0
        self.reclaims = 0
        self.conflicts = 0

    def grant(self, resource: str, client: str, now: int,
              term_ns: Optional[int] = None) -> Lease:
        """Grant ``resource`` to ``client``; a live lease by another
        client conflicts, an expired one is implicitly reclaimed."""
        existing = self._leases.get(resource)
        if existing is not None:
            if existing.live(now) and existing.client != client:
                self.conflicts += 1
                raise LeaseError(
                    f"{resource!r} leased to {existing.client!r} "
                    f"until t={existing.expires_ns}"
                )
            if not existing.live(now):
                self.reclaims += 1
        term = self.term_ns if term_ns is None else term_ns
        lease = Lease(resource, client, now, now + term)
        self._leases[resource] = lease
        self.grants += 1
        return lease

    def renew(self, resource: str, client: str, now: int) -> Lease:
        lease = self._leases.get(resource)
        if lease is None or lease.client != client:
            raise LeaseError(f"{client!r} holds no lease on {resource!r}")
        if not lease.live(now):
            raise LeaseError(f"lease on {resource!r} expired at t={lease.expires_ns}")
        lease.expires_ns = now + self.term_ns
        lease.renewals += 1
        self.renewals += 1
        return lease

    def release(self, resource: str, client: str) -> None:
        lease = self._leases.get(resource)
        if lease is None or lease.client != client:
            raise LeaseError(f"{client!r} holds no lease on {resource!r}")
        del self._leases[resource]
        self.releases += 1

    def holder(self, resource: str, now: int) -> Optional[str]:
        lease = self._leases.get(resource)
        if lease is None or not lease.live(now):
            return None
        return lease.client

    def expired(self, now: int) -> List[Lease]:
        """Leases past expiry, in grant order — the reclaim worklist."""
        return [l for l in self._leases.values() if not l.live(now)]

    def reclaim_expired(self, now: int) -> List[Lease]:
        """Drop every expired lease and return them (deterministic order)."""
        dead = self.expired(now)
        for lease in dead:
            del self._leases[lease.resource]
            self.reclaims += 1
        return dead

    def live_count(self, now: int) -> int:
        return sum(1 for l in self._leases.values() if l.live(now))

    def stats(self) -> Dict[str, int]:
        return {
            "grants": self.grants,
            "renewals": self.renewals,
            "releases": self.releases,
            "reclaims": self.reclaims,
            "conflicts": self.conflicts,
            "outstanding": len(self._leases),
        }
