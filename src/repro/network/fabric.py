"""Latency/bandwidth model of the switched fabric.

The paper's testbed is a single 200 Gbps InfiniBand switch with sub-600 ns
port-to-port latency; end-to-end RTT for small one-sided verbs is ~2 us.
Per-link serialization is accounted for inside the RNIC processing engines
(they know payload sizes); the fabric only contributes propagation delay.

Fault injection (:mod:`repro.faults`) extends the perfect fabric with
:class:`LinkFault` windows — per-link packet loss, duplication and delay
spikes.  All randomness comes from one injector-owned RNG, so a fixed
seed replays a faulty run bit-identically; with no fault windows
installed the RNG is never consulted and the fabric behaves exactly like
the original perfect model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class LinkFault:
    """A window of degraded delivery on the fabric.

    ``node_id`` restricts the fault to links touching one blade (either
    endpoint); ``None`` degrades every link.  Probabilities are evaluated
    per message with the injector's seeded RNG.
    """

    start_ns: float
    duration_ns: float
    loss: float = 0.0
    duplicate: float = 0.0
    extra_delay_ns: float = 0.0
    node_id: Optional[int] = None

    def __post_init__(self):
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be >= 0")
        for p in (self.loss, self.duplicate):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    def active(self, now: float, src: Optional[int], dst: Optional[int]) -> bool:
        if not self.start_ns <= now < self.end_ns:
            return False
        return self.node_id is None or self.node_id == src or self.node_id == dst


class Fabric:
    """Propagation-delay model between any two blades."""

    def __init__(self, one_way_latency_ns: float = 1000.0):
        if one_way_latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.one_way_latency_ns = one_way_latency_ns
        self.messages = 0
        self.bytes_carried = 0
        #: active/scheduled :class:`LinkFault` windows (empty = perfect fabric)
        self.faults: List[LinkFault] = []
        #: seeded RNG owned by the fault injector; only consulted while a
        #: fault window is active, so fault-free runs never draw from it
        self.fault_rng: Optional[random.Random] = None
        #: optional :class:`repro.obs.tracing.TraceRecorder` for fault instants
        self.recorder = None
        # Fault statistics
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0

    def add_fault(self, fault: LinkFault) -> None:
        self.faults.append(fault)

    def clear_expired_faults(self, now: float) -> None:
        self.faults = [f for f in self.faults if f.end_ns > now]

    def record(self, payload_bytes: int) -> float:
        """Account one message and return its propagation delay."""
        self.messages += 1
        self.bytes_carried += payload_bytes
        return self.one_way_latency_ns

    def transit(
        self,
        payload_bytes: int,
        now: float,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> Tuple[float, bool, bool]:
        """Account one message; returns ``(delay_ns, dropped, duplicated)``.

        The fast path (no installed faults) is exactly :meth:`record`.
        """
        self.messages += 1
        self.bytes_carried += payload_bytes
        delay = self.one_way_latency_ns
        if not self.faults:
            return delay, False, False
        dropped = duplicated = False
        for fault in self.faults:
            if not fault.active(now, src, dst):
                continue
            rng = self.fault_rng
            if rng is None:
                raise RuntimeError(
                    "link faults installed without an RNG; attach a FaultInjector"
                )
            if fault.extra_delay_ns:
                delay += fault.extra_delay_ns
                self.messages_delayed += 1
            if fault.loss and rng.random() < fault.loss:
                dropped = True
            if fault.duplicate and rng.random() < fault.duplicate:
                duplicated = True
        if dropped:
            self.messages_dropped += 1
        if duplicated:
            self.messages_duplicated += 1
        if self.recorder is not None and (dropped or duplicated):
            name = "message_dropped" if dropped else "message_duplicated"
            self.recorder.instant(
                "fabric", "links", name, now,
                {"src": src, "dst": dst, "bytes": payload_bytes},
            )
        return delay, dropped, duplicated
