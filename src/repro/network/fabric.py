"""Latency/bandwidth model of the switched fabric.

The paper's testbed is a single 200 Gbps InfiniBand switch with sub-600 ns
port-to-port latency; end-to-end RTT for small one-sided verbs is ~2 us.
Per-link serialization is accounted for inside the RNIC processing engines
(they know payload sizes); the fabric only contributes propagation delay.
"""

from __future__ import annotations


class Fabric:
    """Propagation-delay model between any two blades."""

    def __init__(self, one_way_latency_ns: float = 1000.0):
        if one_way_latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.one_way_latency_ns = one_way_latency_ns
        self.messages = 0
        self.bytes_carried = 0

    def record(self, payload_bytes: int) -> float:
        """Account one message and return its propagation delay."""
        self.messages += 1
        self.bytes_carried += payload_bytes
        return self.one_way_latency_ns
