"""Network fabric model (the InfiniBand switch in the paper's testbed)."""

from repro.network.fabric import Fabric

__all__ = ["Fabric"]
