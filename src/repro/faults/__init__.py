"""Deterministic fault injection for the simulated cluster.

Three layers (built bottom-up elsewhere, orchestrated here):

* fault *sources* — :class:`repro.network.fabric.LinkFault` windows
  (loss / duplication / delay spikes) and blade crash/restart
  (:meth:`repro.cluster.Node.crash`);
* *recovery* — QP reconnect (:meth:`repro.core.api.SmartHandle.reconnect`),
  typed error completions, FORD log-ring rollback at blade restart;
* the *chaos harness* — :class:`FaultSchedule` (scripted or seeded) and
  :class:`FaultInjector`, which installs a schedule on a cluster.

Determinism: all randomness flows from one seeded RNG that is only
consulted while a fault window is active, so (a) the same seed replays a
faulty run bit-identically and (b) with no faults installed the
simulation is byte-for-byte the pre-fault-injection model.
"""

from repro.faults.schedule import (
    BladeCrash,
    FaultSchedule,
    OdpInvalidate,
    parse_duration_ns,
)
from repro.faults.injector import FaultInjector
from repro.network.fabric import LinkFault

__all__ = [
    "BladeCrash",
    "FaultInjector",
    "FaultSchedule",
    "LinkFault",
    "OdpInvalidate",
    "parse_duration_ns",
]
