"""Fault schedules: what breaks, when, for how long.

A :class:`FaultSchedule` is an immutable plan of :class:`LinkFault`
windows and :class:`BladeCrash` events.  Three ways to build one:

* directly from the dataclasses (tests);
* :meth:`FaultSchedule.parse` — a compact spec string for the CLI::

      loss=0.02@1.2ms+1ms          20% of a packet-loss window
      dup=0.01@0+2ms:1             duplication on node 1's links
      delay=500ns@1ms+1ms          a latency spike
      crash=2@1.3ms+0.5ms          node 2 down for 0.5 ms
      invalidate=1@1ms+0.5ms       ODP invalidation storm on node 1

  clauses are comma-separated: ``kind=value@start+duration[:node]``
  (for ``crash`` and ``invalidate`` the value *is* the node id — or
  ``all`` for ``invalidate`` — and for ``crash`` the duration is the
  downtime; an ``invalidate`` storm shoots down the target device's
  resident ODP translations at the window start, and the duration marks
  the disruption window in the trace);
* :meth:`FaultSchedule.seeded` — a randomized plan drawn from one seed,
  for chaos sweeps.

The schedule itself is built eagerly with plain :mod:`random` — only the
*per-message* draws during simulation go through the injector RNG, and
both derive from the same user-visible seed.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.network.fabric import LinkFault

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

_DURATION_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*(ns|us|ms|s)?\s*$")


def parse_duration_ns(text: str) -> float:
    """``"500us"`` -> 500000.0; a bare number is nanoseconds."""
    match = _DURATION_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse duration {text!r} (expected e.g. 500us)")
    value, unit = match.groups()
    return float(value) * _UNIT_NS[unit or "ns"]


@dataclass(frozen=True)
class BladeCrash:
    """One whole-blade power failure: down at ``start_ns`` for
    ``downtime_ns``, then restarted (volatile memory lost, NVM kept)."""

    node_id: int
    start_ns: float
    downtime_ns: float

    def __post_init__(self):
        if self.start_ns < 0 or self.downtime_ns <= 0:
            raise ValueError("crash needs start_ns >= 0 and downtime_ns > 0")

    @property
    def restart_ns(self) -> float:
        return self.start_ns + self.downtime_ns


@dataclass(frozen=True)
class OdpInvalidate:
    """One ODP invalidation storm: the target device's resident
    translations are shot down at ``start_ns`` (MMU-notifier burst:
    reclaim, registration churn, link reset).  ``node_id=None`` targets
    every device; ``duration_ns`` marks the disruption window for the
    trace — the storm itself is a point event."""

    start_ns: float
    duration_ns: float = 0.0
    node_id: Optional[int] = None

    def __post_init__(self):
        if self.start_ns < 0 or self.duration_ns < 0:
            raise ValueError("invalidate needs start_ns >= 0, duration >= 0")

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable fault plan plus the seed that parameterizes replay."""

    link_faults: Tuple[LinkFault, ...] = ()
    crashes: Tuple[BladeCrash, ...] = ()
    seed: int = 0
    #: the spec string this schedule was parsed from, if any (kept so a
    #: schedule can be shipped across process boundaries as a string)
    spec: Optional[str] = None
    invalidations: Tuple[OdpInvalidate, ...] = ()

    def __post_init__(self):
        # Accept lists for convenience; store tuples (hashable/frozen).
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "invalidations", tuple(self.invalidations))

    @property
    def empty(self) -> bool:
        return (not self.link_faults and not self.crashes
                and not self.invalidations)

    @property
    def horizon_ns(self) -> float:
        """When the last scheduled fault is over."""
        ends = [f.end_ns for f in self.link_faults]
        ends += [c.restart_ns for c in self.crashes]
        ends += [inv.end_ns for inv in self.invalidations]
        return max(ends, default=0.0)

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultSchedule":
        """Build a schedule from the compact clause syntax (see module
        docstring)."""
        link_faults: List[LinkFault] = []
        crashes: List[BladeCrash] = []
        invalidations: List[OdpInvalidate] = []
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            try:
                head, timing = clause.split("@", 1)
                kind, value = head.split("=", 1)
            except ValueError:
                raise ValueError(
                    f"bad fault clause {clause!r}: expected kind=value@start+duration"
                )
            node: Optional[int] = None
            if ":" in timing:
                timing, node_text = timing.rsplit(":", 1)
                node = int(node_text)
            try:
                start_text, duration_text = timing.split("+", 1)
            except ValueError:
                raise ValueError(
                    f"bad fault timing in {clause!r}: expected start+duration"
                )
            start = parse_duration_ns(start_text)
            duration = parse_duration_ns(duration_text)
            kind = kind.strip().lower()
            if kind == "crash":
                if node is not None:
                    raise ValueError(
                        f"{clause!r}: crash names its node as the value, not a suffix"
                    )
                crashes.append(BladeCrash(int(value), start, duration))
            elif kind == "invalidate":
                if node is not None:
                    raise ValueError(
                        f"{clause!r}: invalidate names its node as the "
                        f"value (or 'all'), not a suffix"
                    )
                target = None if value.strip().lower() == "all" else int(value)
                invalidations.append(OdpInvalidate(start, duration, target))
            elif kind == "loss":
                link_faults.append(LinkFault(start, duration, loss=float(value),
                                             node_id=node))
            elif kind == "dup":
                link_faults.append(LinkFault(start, duration,
                                             duplicate=float(value), node_id=node))
            elif kind == "delay":
                link_faults.append(LinkFault(start, duration,
                                             extra_delay_ns=parse_duration_ns(value),
                                             node_id=node))
            else:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(loss, dup, delay, crash, invalidate)"
                )
        return cls(tuple(link_faults), tuple(crashes), seed=seed, spec=spec,
                   invalidations=tuple(invalidations))

    @classmethod
    def seeded(
        cls,
        seed: int,
        window_start_ns: float,
        window_ns: float,
        crash_nodes: Sequence[int] = (),
        loss_windows: int = 2,
        loss: float = 0.02,
        crashes: int = 1,
        downtime_frac: float = 0.15,
    ) -> "FaultSchedule":
        """A randomized plan inside ``[window_start, window_start+window)``.

        Draws loss windows and blade crashes from ``random.Random(seed)``
        — the same seed always yields the same plan.  Crashes start in
        the first 60% of the window so the restart (and the recovery it
        triggers) lands inside the observed run.
        """
        rng = random.Random(seed)
        link_faults = []
        for _ in range(loss_windows):
            start = window_start_ns + rng.uniform(0.0, 0.5) * window_ns
            duration = rng.uniform(0.15, 0.35) * window_ns
            link_faults.append(LinkFault(start, duration, loss=loss))
        crash_list = []
        if crash_nodes:
            downtime = downtime_frac * window_ns
            for _ in range(crashes):
                node = crash_nodes[rng.randrange(len(crash_nodes))]
                start = window_start_ns + rng.uniform(0.1, 0.6) * window_ns
                crash_list.append(BladeCrash(node, start, downtime))
        return cls(tuple(link_faults), tuple(crash_list), seed=seed)

    @classmethod
    def from_spec(
        cls,
        spec,
        seed: int = 0,
        window_start_ns: float = 0.0,
        window_ns: float = 2.0e6,
        crash_nodes: Sequence[int] = (),
    ) -> "FaultSchedule":
        """Coerce whatever the bench/CLI hands us into a schedule.

        Accepts an existing :class:`FaultSchedule`, the literal
        ``"seeded"`` (randomized plan inside the measurement window) or a
        :meth:`parse` clause string.
        """
        if isinstance(spec, FaultSchedule):
            return spec
        if spec == "seeded":
            return cls.seeded(seed, window_start_ns, window_ns,
                              crash_nodes=crash_nodes)
        return cls.parse(spec, seed=seed)
