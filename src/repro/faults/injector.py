"""The fault injector: installs a :class:`FaultSchedule` on a cluster.

One injector owns all the chaos randomness of a run (a single
``random.Random(seed)``), schedules every fault event on the simulator
clock, and exposes restart hooks so applications can wire their crash
recovery (e.g. FORD's log-ring rollback) to blade restarts::

    injector = FaultInjector(cluster, schedule).install()
    injector.on_restart(lambda node: recovery.recover_all(log_rings))
    sim.run(...)
    print(injector.stats())

Determinism contract: the injector's RNG is consulted only by active
:class:`LinkFault` windows (per message) — never on the fault-free fast
path — so a run without faults is bit-identical to one where the faults
module does not exist, and a faulty run replays exactly under its seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.faults.schedule import BladeCrash, FaultSchedule, OdpInvalidate
from repro.rnic.qp import QueuePair


class FaultInjector:
    """Applies one schedule to one cluster, tracks what actually fired."""

    def __init__(self, cluster, schedule: FaultSchedule,
                 auto_reset_qps: bool = True):
        self.cluster = cluster
        self.schedule = schedule
        #: reset ERROR QPs targeting a blade when that blade restarts
        #: (transport-level auto-reconnect; apps with their own reconnect
        #: loop, like FORD's clients, are unaffected — reset is idempotent)
        self.auto_reset_qps = auto_reset_qps
        self.rng = random.Random(schedule.seed)
        self.installed = False
        self.crashes_fired = 0
        self.restarts_fired = 0
        self.invalidations_fired = 0
        self._restart_hooks: List[Callable] = []

    # -- wiring ------------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Arm the schedule: link-fault windows onto the fabric, crash and
        restart events onto the simulator clock."""
        if self.installed:
            raise RuntimeError("injector already installed")
        self.installed = True
        sim = self.cluster.sim
        fabric = self.cluster.fabric
        if self.schedule.link_faults:
            fabric.fault_rng = self.rng
            for fault in self.schedule.link_faults:
                fabric.add_fault(fault)
                # Drop the window from the fabric's scan list the moment
                # it expires, so post-fault traffic pays no overhead.
                sim.call_at(fault.end_ns, self._expire_link_faults, None)
                # A link reset is an MMU-notifier trigger on ODP devices:
                # the NIC/driver resync at the start of a loss window
                # shoots down cached translations.  No-op on devices
                # without ODP state (fully pinned runs are unaffected).
                if fault.loss > 0.0:
                    sim.call_at(fault.start_ns, self._invalidate_odp,
                                fault.node_id)
        for crash in self.schedule.crashes:
            sim.call_at(crash.start_ns, self._crash, crash)
        for inv in self.schedule.invalidations:
            sim.call_at(inv.start_ns, self._invalidate, inv)
        return self

    def on_restart(self, hook: Callable) -> None:
        """Run ``hook(node)`` every time a crashed blade comes back (the
        place to wire FORD's recovery manager)."""
        self._restart_hooks.append(hook)

    def wire_ford_recovery(self, recovery_manager, log_rings) -> None:
        """Convenience: roll back in-doubt records from every client's
        NVM log ring whenever a blade restarts."""
        self.on_restart(lambda _node: recovery_manager.recover_all(log_rings))

    # -- event handlers ----------------------------------------------------

    def _expire_link_faults(self, _value) -> None:
        self.cluster.fabric.clear_expired_faults(self.cluster.sim.now)

    def _invalidate(self, inv: OdpInvalidate) -> None:
        fired = self._invalidate_odp(inv.node_id)
        recorder = getattr(self.cluster, "recorder", None)
        if recorder is not None and fired:
            recorder.instant(
                "faults", "blades", "odp_invalidate_window",
                self.cluster.sim.now,
                {"node": inv.node_id, "duration_ns": inv.duration_ns},
            )

    def _invalidate_odp(self, node_id) -> int:
        """Shoot down ODP translations on ``node_id`` (None = all nodes).
        Pages invalidated in total is returned; devices without ODP state
        (fully pinned runs) are untouched."""
        if node_id is None:
            nodes = self.cluster.nodes
        else:
            nodes = [self.cluster.node(node_id)]
        pages = 0
        for node in nodes:
            odp = node.device.odp
            if odp is not None:
                pages += odp.invalidate_all(self.cluster.sim.now)
        if pages:
            self.invalidations_fired += 1
        return pages

    def _crash(self, crash: BladeCrash) -> None:
        node = self.cluster.node(crash.node_id)
        if not node.online:
            return  # overlapping schedules: already down
        self.crashes_fired += 1
        node.crash()
        recorder = getattr(self.cluster, "recorder", None)
        if recorder is not None:
            recorder.instant(
                "faults", "blades", "blade_crash", self.cluster.sim.now,
                {"node": crash.node_id, "downtime_ns": crash.downtime_ns},
            )
        self.cluster.sim.call_after(crash.downtime_ns, self._restart, crash.node_id)

    def _restart(self, node_id: int) -> None:
        node = self.cluster.node(node_id)
        if node.online:
            return
        node.restart()
        self.restarts_fired += 1
        recorder = getattr(self.cluster, "recorder", None)
        if recorder is not None:
            recorder.instant(
                "faults", "blades", "blade_restart", self.cluster.sim.now,
                {"node": node_id},
            )
        if self.auto_reset_qps:
            for peer in self.cluster.nodes:
                for context in peer.device.contexts:
                    for qp in context.qps:
                        if (qp.remote_node.node_id == node_id
                                and qp.state == QueuePair.STATE_ERROR):
                            qp.reset()
        for hook in self._restart_hooks:
            hook(node)

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Fault/recovery accounting across the fabric and every RNIC."""
        fabric = self.cluster.fabric
        totals = dict(
            crashes=self.crashes_fired,
            restarts=self.restarts_fired,
            odp_invalidation_storms=self.invalidations_fired,
            odp_faults=0,
            odp_invalidations=0,
            messages_dropped=fabric.messages_dropped,
            messages_duplicated=fabric.messages_duplicated,
            messages_delayed=fabric.messages_delayed,
            retransmissions=0,
            error_completions=0,
            flushed_wrs=0,
            wasted_wrs=0,
            wasted_wire_bytes=0.0,
            qp_errors=0,
        )
        for node in self.cluster.nodes:
            counters = node.device.counters
            totals["retransmissions"] += counters.retransmissions
            totals["error_completions"] += counters.error_completions
            totals["flushed_wrs"] += counters.flushed_wrs
            totals["wasted_wrs"] += counters.wasted_wrs
            totals["wasted_wire_bytes"] += counters.wasted_wire_bytes
            totals["qp_errors"] += counters.qp_errors
            totals["odp_faults"] += counters.odp_faults
            totals["odp_invalidations"] += counters.odp_invalidations
        return totals
