"""Unified observability: metrics registry + timeline tracing + export.

One :class:`Observability` object owns a :class:`MetricsRegistry` and a
:class:`TraceRecorder` for a run.  Attach it to a cluster (and its
SMART threads) *before* the simulation starts; afterwards collect
metrics and write the artifacts::

    obs = Observability()
    result = run_microbench(..., obs=obs)
    obs.write(trace_path="trace.json", metrics_path="metrics.json")

Attachment is strictly passive — it installs per-device
:class:`SpanTracer` objects and recorder references that instrumented
code paths check with a single ``is not None`` test.  No recorder ever
schedules simulator events or consumes randomness, so an instrumented
run produces *bit-identical* simulated results, and an un-instrumented
run is byte-identical to a build without this package (the same
determinism bar as the fault-free fast path).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.tracing import (
    SEGMENT_LANES,
    SEGMENTS,
    SpanTracer,
    TraceEvent,
    TraceRecorder,
    merge_summaries,
)

__all__ = [
    "Observability",
    "MetricsRegistry",
    "LogHistogram",
    "Counter",
    "Gauge",
    "TraceRecorder",
    "TraceEvent",
    "SpanTracer",
    "SEGMENTS",
    "SEGMENT_LANES",
    "chrome_trace",
    "write_chrome_trace",
    "merge_summaries",
]

#: counter fields copied verbatim from each device's PerfCounters
_DEVICE_COUNTERS = (
    "wqe_processed", "doorbell_rings", "dram_bytes", "wqe_cache_miss_wrs",
    "mtt_lookups", "mtt_miss_wrs", "responder_ops", "cqe_delivered",
    "requester_busy_ns", "responder_busy_ns", "protection_faults",
    "retransmissions", "wasted_wire_bytes", "error_completions",
    "flushed_wrs", "qp_errors",
    "odp_faults", "odp_invalidations", "merged_wrs",
    "am_handled", "am_rejected", "am_aborted", "handler_busy_ns",
    "am_queue_peak",
)


class Observability:
    """Metrics + tracing for one simulated run."""

    def __init__(self, trace_capacity: int = 200_000,
                 batch_capacity: int = 50_000):
        self.registry = MetricsRegistry()
        self.recorder = TraceRecorder(trace_capacity)
        self.batch_capacity = batch_capacity
        self._clusters = []

    # -- wiring ------------------------------------------------------------

    def attach_cluster(self, cluster) -> "Observability":
        """Instrument every device, the fabric and the fault layer.

        Call after the cluster's nodes exist and before the simulation
        runs.  Devices that already carry a tracer keep it (only the
        recorder reference is added).
        """
        cluster.recorder = self.recorder
        cluster.fabric.recorder = self.recorder
        for node in cluster.nodes:
            device = node.device
            device.recorder = self.recorder
            if device.tracer is None:
                device.tracer = SpanTracer(
                    self.recorder, device.name, capacity=self.batch_capacity
                )
        if cluster not in self._clusters:
            self._clusters.append(cluster)
        return self

    def attach_smart_threads(self, smart_threads) -> "Observability":
        """Emit application-level op spans from these threads' handles."""
        for smart in smart_threads:
            smart.recorder = self.recorder
        return self

    def attach_deployment(self, deployment) -> "Observability":
        """Convenience for :class:`repro.bench.runner.Deployment`."""
        self.attach_cluster(deployment.cluster)
        self.attach_smart_threads(deployment.smart_threads)
        return self

    # -- run annotations ---------------------------------------------------

    def phase(self, name: str, start_ns: float, end_ns: float,
              args: Optional[Dict] = None) -> None:
        """Mark a run phase (warmup/measure) on the sim-wide track."""
        self.recorder.span("sim", "phases", name, start_ns, end_ns, args)

    # -- collection --------------------------------------------------------

    def collect_cluster(self, cluster, window_ns: Optional[float] = None) -> None:
        """Snapshot device/fabric/sim counters into the registry."""
        registry = self.registry
        for node in cluster.nodes:
            device = node.device
            prefix = device.name
            counters = device.counters
            for field in _DEVICE_COUNTERS:
                metric = registry.counter(f"{prefix}.{field}")
                metric.value = float(getattr(counters, field))
            registry.gauge(f"{prefix}.outstanding_wrs").set(device.outstanding)
            registry.gauge(f"{prefix}.contexts").set(len(device.contexts))
            registry.gauge(f"{prefix}.dram_bytes_per_wr", "B").set(
                counters.dram_bytes_per_wr
            )
            if window_ns:
                registry.gauge(f"{prefix}.requester_utilization").set(
                    counters.requester_utilization(window_ns)
                )
            tracer = device.tracer
            if tracer is not None:
                registry.counter(f"{prefix}.trace_batches_dropped").value = float(
                    tracer.dropped
                )
        fabric = cluster.fabric
        registry.counter("fabric.messages").value = float(fabric.messages)
        registry.counter("fabric.bytes_carried", "B").value = float(fabric.bytes_carried)
        registry.counter("fabric.messages_dropped").value = float(fabric.messages_dropped)
        registry.counter("fabric.messages_duplicated").value = float(
            fabric.messages_duplicated
        )
        registry.counter("fabric.messages_delayed").value = float(fabric.messages_delayed)
        registry.counter("sim.events_executed").value = float(
            cluster.sim.events_executed
        )
        registry.gauge("sim.now_ns", "ns").set(cluster.sim.now)
        registry.counter("trace.events_dropped").value = float(self.recorder.dropped)

    def collect_stats(self, stats, prefix: str = "ops") -> None:
        """Fold an :class:`OperationStats` into the registry."""
        registry = self.registry
        registry.counter(f"{prefix}.completed").value = float(stats.ops)
        registry.counter(f"{prefix}.retries").value = float(stats.retries)
        registry.counter(f"{prefix}.failed").value = float(stats.failed_ops)
        registry.counter(f"{prefix}.fault_aborts").value = float(stats.fault_aborts)
        registry.counter(f"{prefix}.recoveries").value = float(stats.recoveries)
        hist = getattr(stats, "latency_hist", None)
        if hist is not None and hist.count:
            registry.adopt_histogram(f"{prefix}.latency_ns", hist)
        # Open-loop traffic accounting (repro.traffic).  All zero for
        # closed-loop runs, so their metrics JSON stays byte-identical.
        if getattr(stats, "offered", 0):
            registry.counter(f"{prefix}.offered").value = float(stats.offered)
            registry.counter(f"{prefix}.shed").value = float(stats.shed)
            registry.counter(f"{prefix}.deferred").value = float(stats.deferred)
        queue_hist = getattr(stats, "queue_delay_hist", None)
        if queue_hist is not None and queue_hist.count:
            registry.adopt_histogram(f"{prefix}.queue_delay_ns", queue_hist)

    def collect_memory(self, cluster) -> None:
        """Snapshot every blade allocator's occupancy/fragmentation
        statistics (pull-based — never perturbs simulated behaviour)."""
        for node in cluster.nodes:
            node.storage.allocator.publish_metrics(
                self.registry, f"memory.blade{node.node_id}"
            )

    def phase_breakdown(self, cluster=None) -> Optional[Dict[str, float]]:
        """Batch-weighted per-segment means across the attached devices."""
        clusters = [cluster] if cluster is not None else self._clusters
        summaries = []
        for member in clusters:
            for node in member.nodes:
                tracer = node.device.tracer
                if tracer is not None:
                    summaries.append(tracer.summary())
        return merge_summaries(summaries)

    # -- output ------------------------------------------------------------

    def write(self, trace_path=None, metrics_path=None,
              metadata: Optional[Dict] = None) -> None:
        """Write the Perfetto trace and/or the metrics JSON."""
        if trace_path is not None:
            write_chrome_trace(self.recorder, trace_path, metadata)
        if metrics_path is not None:
            self.registry.write_json(metrics_path)
