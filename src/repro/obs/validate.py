"""Validate an emitted trace file against the Chrome trace-event shape.

Used by CI to guarantee every ``--trace`` artifact actually loads in
Perfetto / ``chrome://tracing``::

    python -m repro.obs.validate trace.json \
        --expect-spans post_to_issue,issue_to_remote \
        --expect-instants retransmit

Exit status 0 means the file is a structurally valid trace containing
every expected span/instant name; 1 lists what failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

_PHASES = {"X", "i", "I", "M", "C", "B", "E"}
_REQUIRED_KEYS = ("ph", "name", "pid", "tid")


def validate_chrome_trace(trace: Dict,
                          expect_spans: Optional[List[str]] = None,
                          expect_instants: Optional[List[str]] = None) -> List[str]:
    """Structural checks; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top level must be an object with a 'traceEvents' array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    span_names = set()
    instant_names = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in _REQUIRED_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        phase = event["ph"]
        if phase not in _PHASES:
            problems.append(f"event {i}: unknown phase {phase!r}")
            continue
        if phase != "M" and "ts" not in event:
            problems.append(f"event {i}: non-metadata event without 'ts'")
            continue
        if phase == "X":
            if "dur" not in event:
                problems.append(f"event {i}: complete event without 'dur'")
            elif event["dur"] < 0:
                problems.append(f"event {i}: negative duration")
            span_names.add(event["name"])
        elif phase in ("i", "I"):
            instant_names.add(event["name"])
    for name in expect_spans or []:
        if name not in span_names:
            problems.append(f"expected span {name!r} not present "
                            f"(have: {sorted(span_names)})")
    for name in expect_instants or []:
        if name not in instant_names:
            problems.append(f"expected instant {name!r} not present "
                            f"(have: {sorted(instant_names)})")
    return problems


def _split(raw: Optional[str]) -> List[str]:
    return [part for part in (raw or "").split(",") if part]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs-validate",
        description="check a --trace artifact against the Chrome trace-event shape",
    )
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument("--expect-spans", default="", metavar="NAMES",
                        help="comma-separated span names that must appear")
    parser.add_argument("--expect-instants", default="", metavar="NAMES",
                        help="comma-separated instant names that must appear")
    args = parser.parse_args(argv)
    try:
        with open(args.path) as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"{args.path}: not loadable as JSON: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(
        trace, _split(args.expect_spans), _split(args.expect_instants)
    )
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        return 1
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    instants = sum(1 for e in events if e.get("ph") in ("i", "I"))
    tracks = len({e.get("pid") for e in events})
    print(f"{args.path}: ok — {len(events)} events "
          f"({spans} spans, {instants} instants) on {tracks} tracks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
