"""Chrome trace-event / Perfetto export of a recorded timeline.

Writes the JSON object format of the Trace Event spec (the shape both
``chrome://tracing`` and https://ui.perfetto.dev load directly):
``{"traceEvents": [...]}`` with complete events (``ph="X"``) for spans,
instant events (``ph="i"``) for faults/retransmissions/cache misses,
and metadata events (``ph="M"``) naming one process per recorder track
and one thread per lane.

Timestamps: the simulator runs in nanoseconds, the trace format in
microseconds — ``ts``/``dur`` are divided by 1e3 on export (fractional
microseconds are allowed by the spec and preserved by Perfetto).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.obs.tracing import TraceEvent, TraceRecorder

_NS_PER_US = 1e3


def chrome_trace(recorder: TraceRecorder, metadata: Dict = None) -> Dict:
    """The recorder's timeline as a Trace-Event-format JSON object."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    events: List[Dict] = []

    def pid_of(track: str) -> int:
        pid = pids.get(track)
        if pid is None:
            pid = pids[track] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": track},
            })
        return pid

    def tid_of(track: str, lane: str) -> int:
        tid = tids.get((track, lane))
        if tid is None:
            tid = tids[(track, lane)] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid_of(track),
                "tid": tid, "args": {"name": lane},
            })
        return tid

    for event in recorder.events():
        rendered = {
            "ph": event.phase,
            "name": event.name,
            "pid": pid_of(event.track),
            "tid": tid_of(event.track, event.lane),
            "ts": event.ts / _NS_PER_US,
            "cat": "sim",
        }
        if event.phase == TraceEvent.SPAN:
            rendered["dur"] = event.dur / _NS_PER_US
        elif event.phase == TraceEvent.INSTANT:
            rendered["s"] = "t"  # thread-scoped instant
        if event.args:
            rendered["args"] = dict(event.args)
        events.append(rendered)

    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs (simulated SMART RNIC timeline)",
            "events_recorded": len(recorder),
            "events_dropped": recorder.dropped,
        },
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def write_chrome_trace(recorder: TraceRecorder, path, metadata: Dict = None) -> Path:
    """Write the recorder's timeline to ``path`` (Perfetto-loadable JSON)."""
    path = Path(path)
    if str(path.parent) not in (".", ""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder, metadata), indent=1) + "\n")
    return path
