"""Structured span/event tracing over the simulated timeline.

:class:`TraceRecorder` is a bounded ring buffer of *spans* (an interval
on a named track) and *instants* (a point event).  Tracks are
``(process, lane)`` pairs — one process per device/engine/client group,
one lane per pipeline inside it — which the Chrome-trace exporter
(:mod:`repro.obs.export`) turns into Perfetto tracks.

:class:`SpanTracer` generalizes :class:`repro.rnic.trace.Tracer`: it
keeps the exact stage-timestamp API (so ``summary()`` and every existing
caller still work) and additionally emits one span per pipeline segment
— posted→issued→remote_start→executed→completed — onto the recorder the
moment a batch completes.

Recording never schedules simulator events and never draws randomness:
attaching a recorder cannot change a single simulated number, and with
no recorder attached the instrumented code paths reduce to one
``is not None`` check (the fault-free fast-path rule).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.rnic.trace import STAGES, Tracer

#: (segment name, start stage, end stage) — the batch lifecycle pipeline.
SEGMENTS: Tuple[Tuple[str, str, str], ...] = (
    ("post_to_issue", "posted", "issued"),
    ("issue_to_remote", "issued", "remote_start"),
    ("remote_queue_and_exec", "remote_start", "executed"),
    ("return_flight", "executed", "completed"),
)

#: lane names, one per lifecycle segment, grouped under the device track
SEGMENT_LANES: Dict[str, str] = {
    "post_to_issue": "requester",
    "issue_to_remote": "wire-out",
    "remote_queue_and_exec": "responder",
    "return_flight": "wire-back",
}


class TraceEvent:
    """One recorded span or instant."""

    __slots__ = ("phase", "track", "lane", "name", "ts", "dur", "args")

    SPAN = "X"
    INSTANT = "i"

    def __init__(self, phase: str, track: str, lane: str, name: str,
                 ts: float, dur: float = 0.0, args: Optional[Dict] = None):
        self.phase = phase
        self.track = track
        self.lane = lane
        self.name = name
        self.ts = ts
        self.dur = dur
        self.args = args

    def __repr__(self) -> str:
        return (f"TraceEvent({self.phase}, {self.track}/{self.lane}, "
                f"{self.name!r}, ts={self.ts}, dur={self.dur})")


class TraceRecorder:
    """Bounded ring buffer of trace events (oldest evicted first)."""

    def __init__(self, capacity: int = 200_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: events evicted because the ring was full
        self.dropped = 0

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(self, track: str, lane: str, name: str, start_ns: float,
             end_ns: float, args: Optional[Dict] = None) -> None:
        """Record an interval [start_ns, end_ns] on ``track/lane``."""
        if end_ns < start_ns:
            raise ValueError(f"span ends before it starts: {start_ns}..{end_ns}")
        self._append(TraceEvent(TraceEvent.SPAN, track, lane, name,
                                start_ns, end_ns - start_ns, args))

    def instant(self, track: str, lane: str, name: str, ts_ns: float,
                args: Optional[Dict] = None) -> None:
        """Record a point event at ``ts_ns`` on ``track/lane``."""
        self._append(TraceEvent(TraceEvent.INSTANT, track, lane, name,
                                ts_ns, 0.0, args))

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def spans(self, name: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self._events
                if e.phase == TraceEvent.SPAN and (name is None or e.name == name)]

    def instants(self, name: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self._events
                if e.phase == TraceEvent.INSTANT and (name is None or e.name == name)]

    def tracks(self) -> List[Tuple[str, str]]:
        """Distinct (track, lane) pairs in recording order."""
        seen = {}
        for event in self._events:
            seen.setdefault((event.track, event.lane), None)
        return list(seen)


class SpanTracer(Tracer):
    """A :class:`repro.rnic.trace.Tracer` that also emits timeline spans.

    Drop-in for ``device.tracer``: stage recording, ``summary()`` and the
    eviction/dropped accounting behave exactly like the base class.  When
    the ``completed`` stage of a batch lands, the four lifecycle segments
    are emitted as spans grouped under ``track`` (one lane per pipeline
    stage), with all five raw stage timestamps attached as span args.
    """

    def __init__(self, recorder: TraceRecorder, track: str,
                 capacity: int = 10_000):
        super().__init__(capacity)
        self.recorder = recorder
        self.track = track

    def record(self, batch_id: int, stage: str, now) -> None:
        super().record(batch_id, stage, now)
        if stage != "completed":
            return
        timestamps = self._batches.get(batch_id)
        if timestamps is None or len(timestamps) != len(STAGES):
            return
        recorder = self.recorder
        for name, start, end in SEGMENTS:
            recorder.span(self.track, SEGMENT_LANES[name], name,
                          timestamps[start], timestamps[end],
                          {"batch": batch_id})
        # The whole-lifecycle span carries every raw stage timestamp.
        recorder.span(self.track, "batches", "batch",
                      timestamps["posted"], timestamps["completed"],
                      dict(timestamps, batch=batch_id))


def merge_summaries(summaries) -> Optional[Dict[str, float]]:
    """Batch-weighted mean of several ``Tracer.summary()`` dicts."""
    summaries = [s for s in summaries if s]
    if not summaries:
        return None
    total_batches = sum(s["batches"] for s in summaries)
    merged = {"batches": total_batches}
    for name, _, _ in SEGMENTS:
        merged[name] = sum(s[name] * s["batches"] for s in summaries) / total_batches
    merged["total"] = sum(s["total"] * s["batches"] for s in summaries) / total_batches
    return merged
