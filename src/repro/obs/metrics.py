"""Named metrics: counters, gauges and log-bucketed latency histograms.

The registry is the fixed-memory replacement for ad-hoc sample lists:
a :class:`LogHistogram` keeps HDR-style logarithmic buckets (bounded
relative error, ~2% at the default resolution) in O(log(max value))
memory regardless of how many values are recorded, and two histograms
merge exactly by adding bucket counts — the property thread-local stats
aggregation needs and plain percentile-sample lists lack.

Everything here is simulation-passive: recording a metric never touches
the event loop or any RNG, so instrumented runs produce bit-identical
simulated results.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, Optional


class LogHistogram:
    """Log-bucketed histogram with fixed memory and exact merging.

    Values (nanoseconds, but any non-negative quantity works) map to
    bucket ``round(log2(value) * sub_buckets)``; the representative value
    of a bucket is the inverse ``2 ** (index / sub_buckets)``, so any
    reported percentile is within a factor ``2 ** (1 / (2*sub_buckets))``
    (~2.2% at the default 16) of the true sample.  ``count``/``sum``/
    ``min``/``max`` are tracked exactly.
    """

    __slots__ = ("sub_buckets", "buckets", "count", "total", "min", "max")

    def __init__(self, sub_buckets: int = 16):
        if sub_buckets <= 0:
            raise ValueError("sub_buckets must be positive")
        self.sub_buckets = sub_buckets
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _index(self, value: float) -> int:
        if value <= 1.0:
            return 0
        return int(round(math.log2(value) * self.sub_buckets))

    def bucket_value(self, index: int) -> float:
        """Representative (geometric center) value of a bucket."""
        return 2.0 ** (index / self.sub_buckets)

    def record(self, value: float, weight: int = 1) -> None:
        if value < 0:
            raise ValueError(f"negative value: {value}")
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + weight
        self.count += weight
        self.total += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (exact; returns self)."""
        if other.sub_buckets != self.sub_buckets:
            raise ValueError(
                f"cannot merge histograms with different resolutions "
                f"({self.sub_buckets} vs {other.sub_buckets})"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    def copy(self) -> "LogHistogram":
        """An independent snapshot (exact — same buckets and extrema)."""
        snap = LogHistogram(self.sub_buckets)
        snap.buckets = dict(self.buckets)
        snap.count = self.count
        snap.total = self.total
        snap.min = self.min
        snap.max = self.max
        return snap

    def delta(self, baseline: "LogHistogram") -> "LogHistogram":
        """The histogram of values recorded *since* ``baseline`` (an
        earlier :meth:`copy` of this histogram).

        Bucket counts and count/sum subtract exactly.  True min/max of
        the window are unrecoverable from snapshots, so the delta uses
        its own bucket extrema as bounds — within bucket resolution of
        the truth, and enough for :meth:`percentile`'s clamping.
        """
        if baseline.sub_buckets != self.sub_buckets:
            raise ValueError("baseline has a different resolution")
        out = LogHistogram(self.sub_buckets)
        for index, n in self.buckets.items():
            remain = n - baseline.buckets.get(index, 0)
            if remain < 0:
                raise ValueError("baseline is not a prefix of this histogram")
            if remain:
                out.buckets[index] = remain
        out.count = self.count - baseline.count
        out.total = self.total - baseline.total
        if out.buckets:
            out.min = out.bucket_value(min(out.buckets))
            out.max = out.bucket_value(max(out.buckets))
        return out

    @staticmethod
    def merged(parts: Iterable["LogHistogram"]) -> "LogHistogram":
        parts = list(parts)
        total = LogHistogram(parts[0].sub_buckets if parts else 16)
        for part in parts:
            total.merge(part)
        return total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile (bucket-representative value)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.count == 0:
            return None
        target = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                # Clamp to the exact extrema so p0/p100 are not distorted
                # by bucket quantization.
                value = self.bucket_value(index)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def to_dict(self) -> Dict:
        return {
            "sub_buckets": self.sub_buckets,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @staticmethod
    def from_dict(data: Dict) -> "LogHistogram":
        hist = LogHistogram(data["sub_buckets"])
        hist.buckets = {int(k): v for k, v in data["buckets"].items()}
        hist.count = data["count"]
        hist.total = data["sum"]
        hist.min = data["min"]
        hist.max = data["max"]
        return hist

    def __repr__(self) -> str:
        return f"LogHistogram(count={self.count}, mean={self.mean:.1f})"


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    """Name-indexed counters, gauges and histograms for one run.

    Names are dotted paths (``rnic0.wqe_processed``,
    ``ops.latency_ns``); asking for an existing name returns the same
    instrument, asking with a conflicting kind raises.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    def _check_free(self, name: str, kind: Dict) -> None:
        for owner, instruments in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if instruments is not kind and name in instruments:
                raise ValueError(f"{name!r} is already registered as a {owner}")

    def counter(self, name: str, unit: str = "") -> Counter:
        existing = self._counters.get(name)
        if existing is None:
            self._check_free(name, self._counters)
            existing = self._counters[name] = Counter(name, unit)
        return existing

    def gauge(self, name: str, unit: str = "") -> Gauge:
        existing = self._gauges.get(name)
        if existing is None:
            self._check_free(name, self._gauges)
            existing = self._gauges[name] = Gauge(name, unit)
        return existing

    def histogram(self, name: str, sub_buckets: int = 16) -> LogHistogram:
        existing = self._histograms.get(name)
        if existing is None:
            self._check_free(name, self._histograms)
            existing = self._histograms[name] = LogHistogram(sub_buckets)
        return existing

    def adopt_histogram(self, name: str, hist: LogHistogram) -> LogHistogram:
        """Register an externally built histogram (merged if one exists)."""
        existing = self._histograms.get(name)
        if existing is None:
            self._check_free(name, self._histograms)
            self._histograms[name] = hist
            return hist
        return existing.merge(hist)

    def names(self) -> Dict[str, str]:
        kinds = {}
        kinds.update({n: "counter" for n in self._counters})
        kinds.update({n: "gauge" for n in self._gauges})
        kinds.update({n: "histogram" for n in self._histograms})
        return kinds

    def to_dict(self) -> Dict:
        return {
            "counters": {
                name: {"value": c.value, "unit": c.unit}
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "unit": g.unit}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }

    def write_json(self, path) -> Path:
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
