"""Command-line bench tool, mirroring the artifact's ``test_rdma``.

The paper's appendix (A.4.1) runs::

    LD_PRELOAD=libmlx5.so ./test/test_rdma 96 8

and prints::

    rdma-read: #threads=96, #depth=8, #block_size=8, BW=848.217 MB/s,
    IOPS=111.177 M/s, conn establish time=1245.924 ms

This module provides the simulated equivalent::

    python -m repro.bench.cli 96 8 --policy smart
    python -m repro.bench.cli --help

and can append a CSV line to a dump file, exactly like the artifact.

Figure grids run through the same tool: ``--figure fig7`` regenerates a
paper figure, and ``--jobs N`` (or ``REPRO_JOBS=N``) fans its
independent simulation points out over a process pool.

``traffic`` is a subcommand driving the open-loop multi-tenant engine::

    python -m repro.bench.cli traffic --app hashtable --rate 2.0
    python -m repro.bench.cli traffic --sweep 0.5,1,2,4 --json knee.json

A single run prints one row per tenant; ``--sweep`` runs the
``latency_throughput`` knee-finder experiment over the given offered
rates instead.

``resharding`` migrates shards of a live table between blades online,
under the same open-loop traffic, and prints per-tenant queue delay
for the before/during/after phases::

    python -m repro.bench.cli resharding --mode add_blade
    python -m repro.bench.cli resharding --mode drain --json out.json

``odp`` sweeps the on-demand-paging pinned ratio against the
outstanding-WR count, with and without doorbell request merging::

    python -m repro.bench.cli odp --ratios 1.0,0.5 --depths 4,32
    python -m repro.bench.cli odp --json odp.json

``offload`` sweeps the near-memory graph workload (BFS / PageRank)
across R-MAT skew, AM fan-out and the three execution modes::

    python -m repro.bench.cli offload --skews 0.0,0.6 --chunks 8,32
    python -m repro.bench.cli offload --algo pagerank --sanitize --json out.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, List, Optional

from repro.bench.microbench import POLICIES, run_microbench
from repro.bench.parallel import default_jobs


def profile_path_for(args) -> str:
    """Where ``--profile`` writes its pstats dump: next to the result
    JSON (or CSV dump file) when one is requested, else the cwd."""
    for attr in ("json", "dump_file_path"):
        target = getattr(args, attr, None)
        if target:
            return os.path.splitext(target)[0] + ".pstats"
    return "repro-bench.pstats"


def run_profiled(path: str, fn: Callable[[], int]) -> int:
    """Run ``fn`` under cProfile; dump pstats to ``path`` and print the
    top of the cumulative-time table so the hotspots are visible without
    opening the dump.

    Only the parent process is profiled — with ``--jobs`` > 1 the
    simulation work happens in pool workers, so profile kernel-level
    questions with ``--jobs 1``.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        table = io.StringIO()
        stats = pstats.Stats(profiler, stream=table)
        stats.strip_dirs().sort_stats("cumulative").print_stats(10)
        print(table.getvalue().rstrip())
        print(f"profile: wrote {path} "
              f"(inspect with: python -m pstats {path})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="simulated equivalent of SMART's test_rdma micro-benchmark",
    )
    parser.add_argument("threads", type=int, nargs="?", default=96,
                        help="worker thread count (default: 96)")
    parser.add_argument("depth", type=int, nargs="?", default=8,
                        help="outstanding work requests per thread (default: 8)")
    parser.add_argument("--policy", choices=POLICIES, default="smart",
                        help="QP allocation policy (default: smart)")
    parser.add_argument("--op", choices=("read", "write"), default="read")
    parser.add_argument("--block-size", type=int, default=8,
                        help="payload bytes per work request (default: 8)")
    parser.add_argument("--memory-nodes", type=int, default=1)
    parser.add_argument("--measure-us", type=float, default=1500.0,
                        help="measured window, simulated microseconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--access", choices=("random", "seq"), default="random",
                        help="remote address pattern per batch; 'seq' makes "
                             "WRs contiguous (mergeable)")
    parser.add_argument("--pinned-ratio", type=float, default=None,
                        metavar="R",
                        help="fraction of pages with pinned translations; "
                             "the rest fault on demand (default: 1.0)")
    parser.add_argument("--merge-wrs", action="store_true",
                        help="fuse address-contiguous WRs into one wire "
                             "message (RDMAbox-style request merging)")
    parser.add_argument("--adaptive-poll", action="store_true",
                        help="spin-then-yield CQ polling with amortized "
                             "batch drain")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault schedule: 'seeded' or clause list, e.g. "
                             "'loss=0.02@0.5ms+1ms,crash=1@0.8ms+0.4ms' "
                             "(kind=value@start+duration[:node])")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault schedule / per-message draws "
                             "(same seed replays a faulty run bit-identically)")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach RDMASan (remote-memory race sanitizer); "
                             "exits 1 when any finding is reported")
    parser.add_argument("--dump-file-path", default=None,
                        help="append a CSV result line to this file")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Perfetto/chrome://tracing timeline "
                             "(JSON) of the run to PATH")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics registry (counters, gauges, "
                             "latency histograms) as JSON to PATH")
    parser.add_argument("--figure", default=None, metavar="NAME",
                        help="regenerate a paper figure/table grid instead of "
                             "a single point (fig3..fig14, table1; 'all' runs "
                             "the whole suite)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool workers for --figure grids "
                             "(default: $REPRO_JOBS or 1 = serial; "
                             "0 = all cores)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="with --figure: also write the result rows as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats dump next "
                             "to the result JSON/CSV (kernel PRs start from "
                             "data; profiles the parent process — use "
                             "--jobs 1 to capture simulation work)")
    return parser


def build_traffic_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench traffic",
        description="open-loop multi-tenant traffic engine "
                    "(arrivals independent of completions)",
    )
    parser.add_argument("--app", choices=("hashtable", "dtx", "btree"),
                        default="hashtable")
    parser.add_argument("--system", default=None,
                        help="system under test (default: the SMART variant "
                             "for --app; e.g. race, smart-ht, ford, sherman)")
    parser.add_argument("--workload",
                        choices=("write-heavy", "read-heavy", "read-only",
                                 "update-only"),
                        default=None,
                        help="YCSB mix for hashtable/btree (default: write-heavy)")
    parser.add_argument("--theta", type=float, default=None,
                        help="override the workload's Zipfian skew")
    parser.add_argument("--benchmark", choices=("smallbank", "tatp"),
                        default="smallbank", help="DTX benchmark")
    parser.add_argument("--arrivals",
                        choices=("deterministic", "poisson", "onoff", "ramp",
                                 "diurnal"),
                        default="poisson")
    parser.add_argument("--rate", type=float, default=1.0,
                        help="offered load in MOPS, split across tenants "
                             "(base/trough rate for onoff/ramp/diurnal)")
    parser.add_argument("--peak", type=float, default=None,
                        help="peak rate in MOPS for onoff/ramp/diurnal "
                             "(default: 2x --rate)")
    parser.add_argument("--period-us", type=float, default=200.0,
                        help="on+off cycle / ramp / diurnal period, "
                             "simulated microseconds")
    parser.add_argument("--tenants", type=int, default=1,
                        help="tenant count; each gets rate/N and workers/N")
    parser.add_argument("--workers", type=int, default=16,
                        help="total worker coroutines across tenants")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--servers", type=int, default=1,
                        help="btree only: combined compute+memory blades")
    parser.add_argument("--item-count", type=int, default=30_000)
    parser.add_argument("--warmup-us", type=float, default=1000.0)
    parser.add_argument("--measure-us", type=float, default=1500.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slo-p99-us", type=float, default=None,
                        help="per-tenant p99 target; enables admission control")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="per-tenant hard queue-depth cap")
    parser.add_argument("--admission", choices=("none", "shed", "defer"),
                        default=None,
                        help="over-budget policy (default: shed when an SLO "
                             "is set, else none)")
    parser.add_argument("--sweep", default=None, metavar="RATES",
                        help="comma-separated offered rates (MOPS): run the "
                             "latency_throughput knee sweep instead of one point")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool workers for --sweep "
                             "(0 = all cores)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write results as JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats dump next "
                             "to the result JSON")
    return parser


def build_resharding_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench resharding",
        description="online shard migration under live open-loop traffic "
                    "(sharded hash table; blade join / drain / autoscale)",
    )
    parser.add_argument("--mode", choices=("add_blade", "drain", "autoscale"),
                        default="add_blade")
    parser.add_argument("--rate", type=float, default=0.4,
                        help="offered load in MOPS, split across tenants")
    parser.add_argument("--tenants", type=int, default=1,
                        help="tenant count; each gets rate/N and workers/N")
    parser.add_argument("--workers", type=int, default=4,
                        help="total worker coroutines across tenants")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--memory-blades", type=int, default=2)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--item-count", type=int, default=2_000)
    parser.add_argument("--warmup-us", type=float, default=500.0)
    parser.add_argument("--phase-us", type=float, default=1000.0,
                        help="length of each measured phase "
                             "(before / during / after), simulated us")
    parser.add_argument("--slo-p99-us", type=float, default=None,
                        help="per-tenant p99 target; enables admission control")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the result as JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats dump next "
                             "to the result JSON")
    return parser


def run_resharding_cmd(argv: List[str]) -> int:
    args = build_resharding_parser().parse_args(argv)
    if args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2
    if args.profile:
        return run_profiled(profile_path_for(args),
                            lambda: _run_resharding(args))
    return _run_resharding(args)


def _run_resharding(args) -> int:
    import json

    from repro.bench.report import format_table
    from repro.traffic import (
        NO_SLO, PoissonArrivals, Slo, TenantSpec, run_resharding,
    )

    slo = (NO_SLO if args.slo_p99_us is None
           else Slo(target_p99_ns=args.slo_p99_us * 1e3, policy="shed"))
    workers_each = max(1, args.workers // args.tenants)
    tenants = [
        TenantSpec(f"t{i}", PoissonArrivals(args.rate / args.tenants),
                   slo=slo, workers=workers_each)
        for i in range(args.tenants)
    ]

    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = run_resharding(
        tenants=tenants, mode=args.mode, threads=args.threads,
        memory_blades=args.memory_blades, num_shards=args.shards,
        item_count=args.item_count, warmup_ns=args.warmup_us * 1e3,
        phase_ns=args.phase_us * 1e3, seed=args.seed,
    )
    wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)

    headers = ["phase", "tenant", "completed", "shed", "deferred",
               "queue_p50_us", "queue_p99_us"]
    rows = [
        [p.phase, p.tenant, p.completed, p.shed, p.deferred,
         (p.queue_p50_ns or 0) / 1e3, (p.queue_p99_ns or 0) / 1e3]
        for p in result.phases
    ]
    print(format_table(
        headers, rows,
        title=f"resharding ({result.mode}): queue delay around the rebalance",
    ))
    migration = result.migration_ns
    print(f"moves={len(result.moves)}, keys_copied={result.keys_copied}, "
          f"keys_skipped={result.keys_skipped}, "
          f"mirror_writes={result.mirror_writes}, "
          f"bytes_freed={result.bytes_freed}, "
          f"blades {result.blades_before}->{result.blades_after}")
    if migration is not None:
        print(f"migration took {migration / 1e3:.1f} us "
              f"(alloc p50={result.alloc_p50_ns or 0:.0f} ns over "
              f"{result.alloc_count} region allocs)")
    else:
        print("no migration was triggered")
    print(f"wall time={wall_s:.1f} s")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def build_odp_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench odp",
        description="ODP pinned-ratio sweep x outstanding-WR count, with "
                    "and without RDMAbox-style doorbell request merging",
    )
    parser.add_argument("--ratios", default=None, metavar="R1,R2,...",
                        help="pinned ratios to sweep (default: quick grid "
                             "1.0,0.75,0.5; REPRO_FULL=1 widens it)")
    parser.add_argument("--depths", default=None, metavar="D1,D2,...",
                        help="outstanding-WR depths to sweep "
                             "(default: quick grid 4,32)")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--block-size", type=int, default=64, metavar="BYTES")
    parser.add_argument("--measure-us", type=float, default=1000.0,
                        help="measurement window per point, simulated us")
    parser.add_argument("--jobs", type=int, default=None,
                        help="process-pool workers (0 = all cores)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the result as JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats dump next "
                             "to the result JSON")
    return parser


def run_odp_cmd(argv: List[str]) -> int:
    args = build_odp_parser().parse_args(argv)
    if args.profile:
        return run_profiled(profile_path_for(args), lambda: _run_odp(args))
    return _run_odp(args)


def _run_odp(args) -> int:
    from repro.bench.experiments import odp_sweep
    from repro.bench.report import write_experiment_json

    ratios = None
    if args.ratios:
        ratios = tuple(float(r) for r in args.ratios.split(",") if r.strip())
        if any(not 0.0 <= r <= 1.0 for r in ratios):
            print("--ratios values must be in [0, 1]", file=sys.stderr)
            return 2
    depths = None
    if args.depths:
        depths = tuple(int(d) for d in args.depths.split(",") if d.strip())
    jobs = args.jobs if args.jobs is not None else default_jobs()
    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = odp_sweep(
        ratios=ratios, depths=depths, threads=args.threads,
        payload=args.block_size, measure_ns=args.measure_us * 1e3, jobs=jobs,
    )
    wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)
    print(result.format())
    print(f"wall time={wall_s:.1f} s (jobs={jobs})")
    if args.json:
        write_experiment_json(result, args.json)
        print(f"wrote {args.json}")
    return 0


def build_offload_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench offload",
        description="Near-memory offload sweep: graph skew x AM fan-out x "
                    "execution mode (one-sided CAS vs RPC vs offload)",
    )
    parser.add_argument("--skews", default=None, metavar="S1,S2,...",
                        help="R-MAT skews to sweep (default: quick grid "
                             "0.0,0.6; REPRO_FULL=1 widens it)")
    parser.add_argument("--chunks", default=None, metavar="C1,C2,...",
                        help="offload fan-outs to sweep (frontier slots per "
                             "active message; default: quick grid 8,32)")
    parser.add_argument("--modes", default="onesided,rpc,offload",
                        metavar="M1,M2,...",
                        help="execution modes (default: all three)")
    parser.add_argument("--algo", choices=("bfs", "pagerank"), default="bfs")
    parser.add_argument("--vertices", type=int, default=192)
    parser.add_argument("--degree", type=int, default=6)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--coroutines", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sanitize", action="store_true",
                        help="run every point under RDMASan")
    parser.add_argument("--jobs", type=int, default=None,
                        help="process-pool workers (0 = all cores)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the result as JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and write a pstats dump next "
                             "to the result JSON")
    return parser


def run_offload_cmd(argv: List[str]) -> int:
    args = build_offload_parser().parse_args(argv)
    if args.profile:
        return run_profiled(profile_path_for(args), lambda: _run_offload(args))
    return _run_offload(args)


def _run_offload(args) -> int:
    from repro.apps.graph.client import MODES
    from repro.bench.experiments import offload_sweep
    from repro.bench.report import write_experiment_json

    skews = None
    if args.skews:
        skews = tuple(float(s) for s in args.skews.split(",") if s.strip())
        if any(not 0.0 <= s < 1.0 for s in skews):
            print("--skews values must be in [0, 1)", file=sys.stderr)
            return 2
    chunks = None
    if args.chunks:
        chunks = tuple(int(c) for c in args.chunks.split(",") if c.strip())
    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
    if any(m not in MODES for m in modes):
        print(f"--modes values must be among {MODES}", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = offload_sweep(
        skews=skews, chunks=chunks, modes=modes, algo=args.algo,
        vertices=args.vertices, degree=args.degree, threads=args.threads,
        coroutines=args.coroutines, seed=args.seed, sanitize=args.sanitize,
        jobs=jobs,
    )
    wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)
    print(result.format())
    print(f"wall time={wall_s:.1f} s (jobs={jobs})")
    if args.json:
        write_experiment_json(result, args.json)
        print(f"wrote {args.json}")
    return 0


_WORKLOADS = {
    "write-heavy": "WRITE_HEAVY",
    "read-heavy": "READ_HEAVY",
    "read-only": "READ_ONLY",
    "update-only": "UPDATE_ONLY",
}


def _traffic_arrivals(args):
    from repro.traffic import (
        DeterministicArrivals, OnOffArrivals, PoissonArrivals, RampArrivals,
    )

    rate = args.rate / args.tenants
    peak = (args.peak if args.peak is not None else 2.0 * args.rate) / args.tenants
    period_ns = args.period_us * 1e3
    if args.arrivals == "deterministic":
        return DeterministicArrivals(rate)
    if args.arrivals == "poisson":
        return PoissonArrivals(rate)
    if args.arrivals == "onoff":
        return OnOffArrivals(on_rate_mops=peak, off_rate_mops=0.0,
                             mean_on_ns=period_ns / 2, mean_off_ns=period_ns / 2)
    return RampArrivals(start_mops=rate, end_mops=peak, period_ns=period_ns,
                        shape="linear" if args.arrivals == "ramp" else "diurnal")


def run_traffic(argv: List[str]) -> int:
    args = build_traffic_parser().parse_args(argv)
    if args.tenants < 1:
        print("--tenants must be >= 1", file=sys.stderr)
        return 2
    if args.profile:
        return run_profiled(profile_path_for(args), lambda: _run_traffic(args))
    return _run_traffic(args)


def _run_traffic(args) -> int:
    import dataclasses
    import json

    from repro.bench.report import format_table

    if args.sweep is not None:
        from repro.bench.experiments import latency_throughput
        from repro.bench.report import write_experiment_json

        rates = [float(r) for r in args.sweep.split(",") if r.strip()]
        result = latency_throughput(
            app=args.app, rates_mops=rates, threads=args.threads,
            workers=args.workers, item_count=args.item_count,
            warmup_ns=args.warmup_us * 1e3, measure_ns=args.measure_us * 1e3,
            jobs=args.jobs,
        )
        print(result.format())
        if args.json:
            write_experiment_json(result, args.json)
            print(f"wrote {args.json}")
        return 0

    from repro.traffic import NO_SLO, Slo, TenantSpec, run_open_loop

    workload = None
    if args.workload is not None:
        import repro.workloads.ycsb as ycsb

        workload = getattr(ycsb, _WORKLOADS[args.workload])
    if args.theta is not None:
        from repro.workloads.ycsb import WRITE_HEAVY

        workload = (workload or WRITE_HEAVY).with_theta(args.theta)
    if args.app == "dtx":
        workload = args.benchmark

    if args.slo_p99_us is None and args.max_queue is None:
        slo = NO_SLO
    else:
        policy = args.admission or "shed"
        slo = Slo(
            target_p99_ns=(args.slo_p99_us * 1e3
                           if args.slo_p99_us is not None else None),
            max_queue_depth=args.max_queue,
            policy=policy,
        )
    arrivals = _traffic_arrivals(args)
    workers_each = max(1, args.workers // args.tenants)
    tenants = [
        TenantSpec(f"t{i}", arrivals, workload=workload, slo=slo,
                   workers=workers_each)
        for i in range(args.tenants)
    ]

    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = run_open_loop(
        app=args.app, system=args.system, tenants=tenants,
        threads=args.threads, servers=args.servers,
        item_count=args.item_count, benchmark=args.benchmark,
        warmup_ns=args.warmup_us * 1e3, measure_ns=args.measure_us * 1e3,
        seed=args.seed,
    )
    wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)
    headers = ["tenant", "offered", "achieved", "shed", "deferred", "backlog",
               "p50_us", "p99_us", "queue_p99_us"]
    rows = [
        [t.tenant, t.offered_mops, t.achieved_mops, t.shed, t.deferred,
         t.backlog, (t.p50_latency_ns or 0) / 1e3, (t.p99_latency_ns or 0) / 1e3,
         (t.queue_p99_ns or 0) / 1e3]
        for t in result.tenants
    ]
    print(format_table(
        headers, rows,
        title=f"open-loop {result.app} ({result.system}), "
              f"{args.arrivals} arrivals",
    ))
    print(f"total: offered={result.offered_mops:.3f} MOPS, "
          f"achieved={result.achieved_mops:.3f} MOPS, "
          f"wall time={wall_s:.1f} s")
    if args.json:
        payload = {
            "app": result.app,
            "system": result.system,
            "threads": result.threads,
            "measure_ns": result.measure_ns,
            "tenants": [dataclasses.asdict(t) for t in result.tenants],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def run_figures(args) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.bench.report import write_experiment_json

    names = list(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown figure(s) {unknown}; choose from "
              f"{', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    for name in names:
        started = time.time()  # lint: disable=SIM001 (host wall clock)
        result = ALL_EXPERIMENTS[name](jobs=jobs)
        wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)
        print(result.format())
        print(f"[{name}] wall time={wall_s:.1f} s (jobs={jobs})")
        print()
        if args.json:
            write_experiment_json(result, args.json)
    return 0


def format_phase_breakdown(breakdown) -> str:
    """Render the per-phase latency table printed under a traced run."""
    from repro.obs.tracing import SEGMENTS

    lines = [
        "batch lifecycle breakdown "
        f"({breakdown['batches']:.0f} complete batches):",
        f"  {'segment':<24}{'mean ns':>12}{'share':>8}",
    ]
    total = breakdown["total"] or 1.0
    for name, _, _ in SEGMENTS:
        lines.append(
            f"  {name:<24}{breakdown[name]:>12.1f}"
            f"{breakdown[name] / total:>7.1%}"
        )
    lines.append(f"  {'total':<24}{breakdown['total']:>12.1f}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "traffic":
        return run_traffic(argv[1:])
    if argv and argv[0] == "resharding":
        return run_resharding_cmd(argv[1:])
    if argv and argv[0] == "odp":
        return run_odp_cmd(argv[1:])
    if argv and argv[0] == "offload":
        return run_offload_cmd(argv[1:])
    args = build_parser().parse_args(argv)
    if args.figure:
        if args.trace or args.metrics_out:
            print("--trace/--metrics-out apply to single-point runs, "
                  "not --figure grids", file=sys.stderr)
            return 2
        if args.profile:
            return run_profiled(profile_path_for(args),
                                lambda: run_figures(args))
        return run_figures(args)
    if args.profile:
        return run_profiled(profile_path_for(args), lambda: run_single(args))
    return run_single(args)


def run_single(args) -> int:
    if args.pinned_ratio is not None and not 0.0 <= args.pinned_ratio <= 1.0:
        print("--pinned-ratio must be in [0, 1]", file=sys.stderr)
        return 2
    obs = None
    if args.trace or args.metrics_out:
        from repro.obs import Observability

        obs = Observability()
    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = run_microbench(
        policy=args.policy,
        threads=args.threads,
        depth=args.depth,
        payload=args.block_size,
        op=args.op,
        memory_nodes=args.memory_nodes,
        measure_ns=args.measure_us * 1e3,
        seed=args.seed,
        access=args.access,
        pinned_ratio=args.pinned_ratio,
        merge_wrs=args.merge_wrs or None,
        adaptive_poll=args.adaptive_poll or None,
        faults=args.faults,
        fault_seed=args.fault_seed,
        obs=obs,
        sanitize=args.sanitize,
    )
    bandwidth_mbps = result.throughput_mops * args.block_size
    wall_ms = (time.time() - started) * 1e3  # lint: disable=SIM001 (host wall clock)
    print(
        f"rdma-{args.op}: #threads={args.threads}, #depth={args.depth}, "
        f"#block_size={args.block_size}, BW={bandwidth_mbps:.3f} MB/s, "
        f"IOPS={result.throughput_mops:.3f} M/s, "
        f"sim wall time={wall_ms:.3f} ms"
    )
    if args.faults:
        print(
            f"faults: dropped={result.messages_dropped}, "
            f"retransmits={result.retransmissions}, "
            f"wasted_wrs={result.wasted_wrs}"
        )
    if args.pinned_ratio is not None or args.merge_wrs:
        print(
            f"odp/merge: faults={result.odp_faults}, "
            f"invalidations={result.odp_invalidations}, "
            f"merged_wrs={result.merged_wrs}"
        )
    if args.dump_file_path:
        with open(args.dump_file_path, "a") as dump:
            dump.write(
                f"rdma-{args.op},{args.threads},{args.depth},{args.block_size},"
                f"{bandwidth_mbps:.3f},{result.throughput_mops:.3f},{wall_ms:.3f}\n"
            )
    if obs is not None:
        if result.phase_breakdown:
            print(format_phase_breakdown(result.phase_breakdown))
        obs.write(
            trace_path=args.trace,
            metrics_path=args.metrics_out,
            metadata={
                "bench": f"rdma-{args.op}",
                "threads": args.threads,
                "depth": args.depth,
                "block_size": args.block_size,
                "policy": args.policy,
            },
        )
        for path in (args.trace, args.metrics_out):
            if path:
                print(f"wrote {path}")
    if result.sanitizer is not None:
        report = result.sanitizer
        print(
            f"rdmasan: ops_checked={report['ops_checked']}, "
            f"findings={len(report['findings'])}, leaks={len(report['leaks'])}"
        )
        for finding in report["findings"]:
            print(f"  {finding['kind']}: blade={finding['blade']} "
                  f"region={finding['region']} addr={finding['addr']:#x} "
                  f"bytes={finding['bytes']}")
        if report["findings"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
