"""Command-line bench tool, mirroring the artifact's ``test_rdma``.

The paper's appendix (A.4.1) runs::

    LD_PRELOAD=libmlx5.so ./test/test_rdma 96 8

and prints::

    rdma-read: #threads=96, #depth=8, #block_size=8, BW=848.217 MB/s,
    IOPS=111.177 M/s, conn establish time=1245.924 ms

This module provides the simulated equivalent::

    python -m repro.bench.cli 96 8 --policy smart
    python -m repro.bench.cli --help

and can append a CSV line to a dump file, exactly like the artifact.

Figure grids run through the same tool: ``--figure fig7`` regenerates a
paper figure, and ``--jobs N`` (or ``REPRO_JOBS=N``) fans its
independent simulation points out over a process pool.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.bench.microbench import POLICIES, run_microbench
from repro.bench.parallel import default_jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="simulated equivalent of SMART's test_rdma micro-benchmark",
    )
    parser.add_argument("threads", type=int, nargs="?", default=96,
                        help="worker thread count (default: 96)")
    parser.add_argument("depth", type=int, nargs="?", default=8,
                        help="outstanding work requests per thread (default: 8)")
    parser.add_argument("--policy", choices=POLICIES, default="smart",
                        help="QP allocation policy (default: smart)")
    parser.add_argument("--op", choices=("read", "write"), default="read")
    parser.add_argument("--block-size", type=int, default=8,
                        help="payload bytes per work request (default: 8)")
    parser.add_argument("--memory-nodes", type=int, default=1)
    parser.add_argument("--measure-us", type=float, default=1500.0,
                        help="measured window, simulated microseconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault schedule: 'seeded' or clause list, e.g. "
                             "'loss=0.02@0.5ms+1ms,crash=1@0.8ms+0.4ms' "
                             "(kind=value@start+duration[:node])")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault schedule / per-message draws "
                             "(same seed replays a faulty run bit-identically)")
    parser.add_argument("--sanitize", action="store_true",
                        help="attach RDMASan (remote-memory race sanitizer); "
                             "exits 1 when any finding is reported")
    parser.add_argument("--dump-file-path", default=None,
                        help="append a CSV result line to this file")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Perfetto/chrome://tracing timeline "
                             "(JSON) of the run to PATH")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics registry (counters, gauges, "
                             "latency histograms) as JSON to PATH")
    parser.add_argument("--figure", default=None, metavar="NAME",
                        help="regenerate a paper figure/table grid instead of "
                             "a single point (fig3..fig14, table1; 'all' runs "
                             "the whole suite)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool workers for --figure grids "
                             "(default: $REPRO_JOBS or 1 = serial)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="with --figure: also write the result rows as JSON")
    return parser


def run_figures(args) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.bench.report import write_experiment_json

    names = list(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown figure(s) {unknown}; choose from "
              f"{', '.join(ALL_EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    for name in names:
        started = time.time()  # lint: disable=SIM001 (host wall clock)
        result = ALL_EXPERIMENTS[name](jobs=jobs)
        wall_s = time.time() - started  # lint: disable=SIM001 (host wall clock)
        print(result.format())
        print(f"[{name}] wall time={wall_s:.1f} s (jobs={jobs})")
        print()
        if args.json:
            write_experiment_json(result, args.json)
    return 0


def format_phase_breakdown(breakdown) -> str:
    """Render the per-phase latency table printed under a traced run."""
    from repro.obs.tracing import SEGMENTS

    lines = [
        "batch lifecycle breakdown "
        f"({breakdown['batches']:.0f} complete batches):",
        f"  {'segment':<24}{'mean ns':>12}{'share':>8}",
    ]
    total = breakdown["total"] or 1.0
    for name, _, _ in SEGMENTS:
        lines.append(
            f"  {name:<24}{breakdown[name]:>12.1f}"
            f"{breakdown[name] / total:>7.1%}"
        )
    lines.append(f"  {'total':<24}{breakdown['total']:>12.1f}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure:
        if args.trace or args.metrics_out:
            print("--trace/--metrics-out apply to single-point runs, "
                  "not --figure grids", file=sys.stderr)
            return 2
        return run_figures(args)
    obs = None
    if args.trace or args.metrics_out:
        from repro.obs import Observability

        obs = Observability()
    started = time.time()  # lint: disable=SIM001 (host wall clock)
    result = run_microbench(
        policy=args.policy,
        threads=args.threads,
        depth=args.depth,
        payload=args.block_size,
        op=args.op,
        memory_nodes=args.memory_nodes,
        measure_ns=args.measure_us * 1e3,
        seed=args.seed,
        faults=args.faults,
        fault_seed=args.fault_seed,
        obs=obs,
        sanitize=args.sanitize,
    )
    bandwidth_mbps = result.throughput_mops * args.block_size
    wall_ms = (time.time() - started) * 1e3  # lint: disable=SIM001 (host wall clock)
    print(
        f"rdma-{args.op}: #threads={args.threads}, #depth={args.depth}, "
        f"#block_size={args.block_size}, BW={bandwidth_mbps:.3f} MB/s, "
        f"IOPS={result.throughput_mops:.3f} M/s, "
        f"sim wall time={wall_ms:.3f} ms"
    )
    if args.faults:
        print(
            f"faults: dropped={result.messages_dropped}, "
            f"retransmits={result.retransmissions}, "
            f"wasted_wrs={result.wasted_wrs}"
        )
    if args.dump_file_path:
        with open(args.dump_file_path, "a") as dump:
            dump.write(
                f"rdma-{args.op},{args.threads},{args.depth},{args.block_size},"
                f"{bandwidth_mbps:.3f},{result.throughput_mops:.3f},{wall_ms:.3f}\n"
            )
    if obs is not None:
        if result.phase_breakdown:
            print(format_phase_breakdown(result.phase_breakdown))
        obs.write(
            trace_path=args.trace,
            metrics_path=args.metrics_out,
            metadata={
                "bench": f"rdma-{args.op}",
                "threads": args.threads,
                "depth": args.depth,
                "block_size": args.block_size,
                "policy": args.policy,
            },
        )
        for path in (args.trace, args.metrics_out):
            if path:
                print(f"wrote {path}")
    if result.sanitizer is not None:
        report = result.sanitizer
        print(
            f"rdmasan: ops_checked={report['ops_checked']}, "
            f"findings={len(report['findings'])}, leaks={len(report['leaks'])}"
        )
        for finding in report["findings"]:
            print(f"  {finding['kind']}: blade={finding['blade']} "
                  f"region={finding['region']} addr={finding['addr']:#x} "
                  f"bytes={finding['bytes']}")
        if report["findings"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
