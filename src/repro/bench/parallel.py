"""Parallel sweep execution for the figure grids.

Every paper figure is a grid of fully independent simulation points
(one deterministic simulation per (experiment fn, kwargs, seed) tuple),
so the grid parallelizes embarrassingly across a process pool.  This
module provides the pieces:

* :class:`PointSpec` — a picklable description of one grid point: the
  *name* of a registered experiment function, its keyword arguments and
  an optional explicit seed.  Specs carry names rather than callables so
  they cross process boundaries cheaply and reproducibly.
* :class:`WorkerPool` — a *persistent* pool of warm worker processes.
  Each worker imports the experiment registry once at startup and then
  only ever receives batches of specs over a shared task queue — idle
  workers steal the next batch the moment they finish one, so the grid
  load-balances without any per-point fork/import cost.  The pool is
  cached module-wide and reused by every subsequent sweep.
* :func:`run_points` — executes a list of specs, serially (``jobs=1``)
  or on the warm pool (``jobs=N``; ``jobs=0`` = all cores), and returns
  results **in input order**.  A point's result depends only on its spec
  (simulations are seeded, self-contained and share no mutable state),
  so serial and parallel execution produce identical results — asserted
  by ``tests/test_parallel_exec.py``.
* :class:`PointFailure` — raised when a point raises (or its worker
  dies) with the failing spec attached, so a grid error names the exact
  (experiment, kwargs, seed) to replay instead of a bare pool traceback.

The default job count comes from the ``REPRO_JOBS`` environment
variable (``1`` — serial — when unset, ``0`` meaning all cores), which
the bench CLI's ``--jobs`` flag and the figure suite both honour.
"""

from __future__ import annotations

import atexit
import os
import queue
import traceback
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Experiment functions a :class:`PointSpec` may name, mapped to the
#: module that defines them.  Names (not callables) keep specs picklable
#: and make the executor surface auditable.
_REGISTRY: Dict[str, str] = {
    "run_microbench": "repro.bench.microbench",
    "run_dynamic_microbench": "repro.bench.microbench",
    "run_hashtable": "repro.bench.runner",
    "run_dtx": "repro.bench.runner",
    "run_btree": "repro.bench.runner",
    "run_open_loop": "repro.traffic.runner",
    "run_resharding": "repro.traffic.resharding",
    "run_graph": "repro.bench.graph_runner",
}


def register_experiment(name: str, module: str) -> None:
    """Expose another module-level experiment function to PointSpecs."""
    _REGISTRY[name] = module


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``.

    Unset or empty means ``1`` (serial); ``0`` means *all cores*
    (``os.cpu_count()``); any positive integer is used as-is.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")
    if value < 0:
        raise ValueError(f"REPRO_JOBS must be >= 0, got {value}")
    return value or (os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None`` → env default, ``0`` → all cores."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs or (os.cpu_count() or 1)


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of an experiment grid."""

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: explicit per-point seed; ``None`` keeps the experiment's default
    seed: Optional[int] = None

    def resolve(self) -> Callable:
        module = _REGISTRY.get(self.fn)
        if module is None:
            raise KeyError(
                f"unknown experiment fn {self.fn!r}; "
                f"choose from {sorted(_REGISTRY)} or register_experiment() it"
            )
        return getattr(import_module(module), self.fn)

    def run(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.resolve()(**kwargs)

    def describe(self) -> str:
        return f"{self.fn}(kwargs={self.kwargs!r}, seed={self.seed!r})"


class PointFailure(RuntimeError):
    """A grid point raised (or its worker died); carries the failing spec.

    ``spec`` names the exact (experiment fn, kwargs, seed) to replay the
    failure serially; ``worker_traceback`` is the remote traceback text
    when the point raised inside a worker (``None`` when the worker
    process died without reporting).
    """

    def __init__(self, spec: Optional[PointSpec], message: str,
                 worker_traceback: Optional[str] = None):
        detail = f"point {spec.describe()}: {message}" if spec else message
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.spec = spec
        self.worker_traceback = worker_traceback


def _run_spec(spec: PointSpec) -> Any:
    """Module-level trampoline so specs survive pickling into workers."""
    return spec.run()


def _worker_main(tasks, results) -> None:
    """Body of one persistent worker process.

    Imports the experiment registry once (the warm-up the old
    pool-per-sweep executor paid on every sweep), then serves batches
    from the shared task queue until it receives the ``None`` sentinel.
    Each task is ``(batch_index, [spec, ...])``; each reply is
    ``(batch_index, ok, payload)`` where payload is the result list or a
    ``(spec, repr, traceback)`` failure triple.
    """
    for module in set(_REGISTRY.values()):
        try:
            import_module(module)
        except Exception:  # pragma: no cover - registry module missing
            pass
    while True:
        task = tasks.get()
        if task is None:
            return
        batch_index, specs, registry = task
        # Late register_experiment() calls in the parent must resolve
        # here too — each task carries the registry snapshot it was
        # built under.
        _REGISTRY.update(registry)
        batch_results = []
        try:
            for spec in specs:
                batch_results.append(spec.run())
        except BaseException as exc:  # report, keep serving other batches
            failed = specs[len(batch_results)]
            results.put(
                (batch_index, False, (failed, repr(exc), traceback.format_exc()))
            )
            continue
        results.put((batch_index, True, batch_results))


class WorkerPool:
    """A persistent pool of warm experiment workers.

    Workers are forked (where the platform allows — they then inherit
    the already-imported simulator for free) or spawned once and reused
    across sweeps.  Dispatch is a single shared task queue acting as the
    work-stealing deque: idle workers pull the next batch as soon as
    they finish one, so stragglers don't serialize the tail of a grid.
    """

    #: seconds between liveness checks while waiting on results
    _POLL_S = 0.25

    def __init__(self, workers: int):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.workers = workers
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._procs = [
            context.Process(
                target=_worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"repro-worker-{index}",
            )
            for index in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    @property
    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self._procs)

    def run(self, specs: Sequence[PointSpec],
            batch_size: Optional[int] = None) -> List[Any]:
        """Run every spec on the pool; results come back in input order.

        Specs are chunked into batches (small enough that the shared
        queue load-balances, large enough to amortize the IPC) and the
        ordered reassembly makes the output independent of which worker
        ran what.  A failing point raises :class:`PointFailure` naming
        its spec; a worker that dies mid-grid is detected by a liveness
        poll instead of hanging the collection loop forever.
        """
        specs = list(specs)
        if not specs:
            return []
        if batch_size is None:
            # ~4 batches per worker bounds tail imbalance at ~1/4 of a
            # worker's share while keeping queue traffic low.
            batch_size = max(1, len(specs) // (self.workers * 4))
        batches = [
            specs[start:start + batch_size]
            for start in range(0, len(specs), batch_size)
        ]
        registry = dict(_REGISTRY)
        for index, batch in enumerate(batches):
            self._tasks.put((index, batch, registry))
        slots: List[Any] = [None] * len(batches)
        pending = len(batches)
        while pending:
            try:
                batch_index, ok, payload = self._results.get(
                    timeout=self._POLL_S
                )
            except queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    # Can't tell which batch the dead worker held; fail
                    # the sweep but name the casualties and keep the
                    # other workers from going zombie.
                    self.shutdown()
                    raise PointFailure(
                        None,
                        f"worker(s) {[p.name for p in dead]} died "
                        f"(exitcodes {[p.exitcode for p in dead]}) with "
                        f"{pending} batch(es) outstanding",
                    )
                continue
            if not ok:
                spec, exc_repr, tb = payload
                self.shutdown()  # in-flight batches would pollute reuse
                raise PointFailure(spec, exc_repr, worker_traceback=tb)
            slots[batch_index] = payload
            pending -= 1
        return [result for batch in slots for result in batch]

    def shutdown(self) -> None:
        """Terminate the workers and drain the queues."""
        global _POOL
        if _POOL is self:
            _POOL = None
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()

    def stop(self) -> None:
        """Graceful shutdown: let workers finish their current batch."""
        global _POOL
        if _POOL is self:
            _POOL = None
        for _ in self._procs:
            self._tasks.put(None)
        for proc in self._procs:
            proc.join(timeout=5.0)
        self.shutdown()


#: the cached warm pool (one at a time; rebuilt when the size changes)
_POOL: Optional[WorkerPool] = None


def _get_pool(workers: int) -> WorkerPool:
    global _POOL
    if _POOL is not None and (_POOL.workers != workers or not _POOL.alive):
        _POOL.shutdown()
    if _POOL is None:
        _POOL = WorkerPool(workers)
    return _POOL


@atexit.register
def _shutdown_pool() -> None:
    if _POOL is not None:
        _POOL.shutdown()


def run_points(
    specs: Sequence[PointSpec],
    jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> List[Any]:
    """Run every spec and return results in input order.

    ``jobs=None`` falls back to :func:`default_jobs` (the ``REPRO_JOBS``
    environment variable); ``jobs=0`` means all cores.  With an
    effective ``jobs=1`` — or a single spec — points run in-process;
    otherwise the persistent :class:`WorkerPool` executes them with one
    deterministic simulation per point, and ordered collection keeps the
    output independent of worker scheduling.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [spec.run() for spec in specs]
    # The pool is sized by the jobs request (not the grid) so repeated
    # sweeps of different sizes reuse the same warm workers.
    pool = _get_pool(jobs)
    return pool.run(specs, batch_size=batch_size)

