"""Parallel sweep execution for the figure grids.

Every paper figure is a grid of fully independent simulation points
(one deterministic simulation per (experiment fn, kwargs, seed) tuple),
so the grid parallelizes embarrassingly across a process pool.  This
module provides the two pieces:

* :class:`PointSpec` — a picklable description of one grid point: the
  *name* of a registered experiment function, its keyword arguments and
  an optional explicit seed.  Specs carry names rather than callables so
  they cross process boundaries cheaply and reproducibly.
* :func:`run_points` — executes a list of specs, serially (``jobs=1``)
  or on a process pool (``jobs=N``), and returns results **in input
  order**.  A point's result depends only on its spec (simulations are
  seeded, self-contained and share no mutable state), so serial and
  parallel execution produce identical results — asserted by
  ``tests/test_parallel_exec.py``.

The default job count comes from the ``REPRO_JOBS`` environment
variable (``1`` — serial — when unset), which the bench CLI's
``--jobs`` flag and the figure suite both honour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Experiment functions a :class:`PointSpec` may name, mapped to the
#: module that defines them.  Names (not callables) keep specs picklable
#: and make the executor surface auditable.
_REGISTRY: Dict[str, str] = {
    "run_microbench": "repro.bench.microbench",
    "run_dynamic_microbench": "repro.bench.microbench",
    "run_hashtable": "repro.bench.runner",
    "run_dtx": "repro.bench.runner",
    "run_btree": "repro.bench.runner",
    "run_open_loop": "repro.traffic.runner",
}


def register_experiment(name: str, module: str) -> None:
    """Expose another module-level experiment function to PointSpecs."""
    _REGISTRY[name] = module


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (>= 1); 1 means serial."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of an experiment grid."""

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: explicit per-point seed; ``None`` keeps the experiment's default
    seed: Optional[int] = None

    def resolve(self) -> Callable:
        module = _REGISTRY.get(self.fn)
        if module is None:
            raise KeyError(
                f"unknown experiment fn {self.fn!r}; "
                f"choose from {sorted(_REGISTRY)} or register_experiment() it"
            )
        return getattr(import_module(module), self.fn)

    def run(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.resolve()(**kwargs)


def _run_spec(spec: PointSpec) -> Any:
    """Module-level trampoline so specs survive pickling into workers."""
    return spec.run()


def run_points(
    specs: Sequence[PointSpec],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Run every spec and return results in input order.

    ``jobs=None`` falls back to :func:`default_jobs` (the ``REPRO_JOBS``
    environment variable).  With ``jobs=1`` — or a single spec — points
    run in-process; otherwise a process pool executes them with one
    deterministic simulation per task, and ordered collection keeps the
    output independent of worker scheduling.
    """
    specs = list(specs)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(specs) <= 1:
        return [spec.run() for spec in specs]

    import concurrent.futures
    import multiprocessing

    # fork (where available) shares the already-imported simulator with
    # the workers; spawn re-imports it and is used as the fallback.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    workers = min(jobs, len(specs))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        return list(pool.map(_run_spec, specs))
