"""Benchmark harness: the §3.1 micro-bench tool, application experiment
runners and report formatting for every figure/table in the paper."""

from repro.bench.microbench import MicrobenchResult, run_microbench
from repro.bench.report import format_table, ratio

__all__ = ["MicrobenchResult", "format_table", "ratio", "run_microbench"]
