"""One entry point per paper figure/table.

Every function regenerates the corresponding experiment and returns an
:class:`ExperimentResult` whose rows mirror the series the paper plots.
Grids default to a "quick" subsample of the paper's x-axes so the whole
suite runs in minutes; set ``REPRO_FULL=1`` for the full grids.

Each figure declares its grid as a list of :class:`PointSpec`s and
routes them through :func:`repro.bench.parallel.run_points`, so the
fully independent simulation points can fan out over a process pool:
pass ``jobs=N`` (or set ``REPRO_JOBS=N``) to parallelize.  Results are
collected in spec order, which keeps the emitted tables — and every
simulated number in them — identical between serial and parallel runs.

Absolute numbers come from the simulated RNIC, so they are compared to
the paper by *shape* (who wins, by what factor, where curves peak) — see
EXPERIMENTS.md for the per-experiment comparison.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import PointSpec, run_points
from repro.bench.report import format_table
from repro.bench.runner import BENCH_DELTA_NS, bench_features
from repro.core.features import SmartFeatures, baseline, cumulative_ladder, full
from repro.workloads.ycsb import (
    READ_HEAVY,
    READ_ONLY,
    UPDATE_ONLY,
    WRITE_HEAVY,
    YcsbWorkload,
)


def full_grids() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("", "0")


def _grid(quick: Sequence, complete: Sequence) -> Sequence:
    return complete if full_grids() else quick


@dataclass
class ExperimentResult:
    """A reproduced figure/table: tabular series plus the paper's claim."""

    name: str
    headers: List[str]
    rows: List[List]
    paper_claim: str
    observations: List[str] = field(default_factory=list)
    #: optional (x_column, y_columns) to render an ASCII chart in format()
    chart_spec: Optional[Tuple[str, Tuple[str, ...]]] = None
    #: optional observability block (metrics snapshots, phase breakdowns)
    #: attached by instrumented runs; empty for ordinary grid runs
    telemetry: Dict = field(default_factory=dict)

    def format(self) -> str:
        lines = [format_table(self.headers, self.rows, title=self.name)]
        if self.chart_spec is not None:
            from repro.bench.plotting import line_chart

            x_column, y_columns = self.chart_spec
            lines.append("")
            lines.append(
                line_chart(
                    {column: self.series(column) for column in y_columns},
                    x_labels=self.series(x_column),
                )
            )
        breakdown = self.telemetry.get("phase_breakdown")
        if breakdown:
            from repro.obs.tracing import SEGMENTS

            lines.append("")
            lines.append(format_table(
                ["segment", "mean ns", "share"],
                [[name, breakdown[name],
                  breakdown[name] / breakdown["total"] if breakdown["total"] else 0.0]
                 for name, _, _ in SEGMENTS]
                + [["total", breakdown["total"], 1.0]],
                title=(f"batch lifecycle breakdown "
                       f"({breakdown['batches']:.0f} batches)"),
            ))
        lines.append(f"paper: {self.paper_claim}")
        lines.extend(f"note:  {o}" for o in self.observations)
        return "\n".join(lines)

    def series(self, column: str) -> List:
        index = self.headers.index(column)
        return [row[index] for row in self.rows]

    def to_dict(self) -> Dict:
        """JSON-ready form (the machine-readable twin of :meth:`format`)."""
        data = {
            "name": self.name,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "paper_claim": self.paper_claim,
            "observations": list(self.observations),
        }
        # Key present only when telemetry was attached, so JSON artifacts
        # from un-instrumented runs stay byte-identical.
        if self.telemetry:
            data["telemetry"] = dict(self.telemetry)
        return data


# -- Section 3: scalability bottlenecks ---------------------------------------------


def fig3_qp_policies(
    threads: Optional[Sequence[int]] = None,
    op: str = "read",
    measure_ns: float = 1.0e6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 3: 8-byte READ/WRITE throughput under QP allocation policies."""
    threads = threads or _grid((2, 8, 32, 48, 96), (2, 4, 8, 16, 24, 32, 48, 64, 80, 96))
    policies = ("shared-qp", "multiplexed-qp", "per-thread-qp", "per-thread-db")
    specs = [
        PointSpec("run_microbench", dict(
            policy=policy, threads=t, depth=8, op=op, measure_ns=measure_ns,
        ))
        for t in threads
        for policy in policies
    ]
    results = iter(run_points(specs, jobs=jobs))
    rows = [
        [t] + [next(results).throughput_mops for _ in policies] for t in threads
    ]
    return ExperimentResult(
        name=f"Figure 3 ({op}): throughput (MOPS) vs threads by QP policy",
        headers=["threads"] + list(policies),
        rows=rows,
        paper_claim=(
            "per-thread QP collapses past 32 threads (halves by 96); per-thread "
            "doorbell reaches the 110 MOPS hardware limit; shared QP is flat and "
            "up to 130x worse; multiplexed QP sits in between"
        ),
        chart_spec=("threads", policies),
    )


def fig4_cache_thrashing(
    threads: Optional[Sequence[int]] = None,
    depths: Optional[Sequence[int]] = None,
    op: str = "read",
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 4: throughput and DRAM traffic vs outstanding work requests."""
    threads = threads or _grid((16, 36, 96), (16, 36, 64, 96))
    depths = depths or _grid((2, 8, 32), (1, 2, 4, 8, 16, 32, 64))
    points = [(t, d) for t in threads for d in depths]
    specs = [
        PointSpec("run_microbench", dict(
            policy="per-thread-db", threads=t, depth=d, op=op, measure_ns=1.0e6,
        ))
        for t, d in points
    ]
    rows = [
        [t, d, t * d, result.throughput_mops, result.dram_bytes_per_wr]
        for (t, d), result in zip(points, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name=f"Figure 4 ({op}): OWR sweep (per-thread doorbell)",
        headers=["threads", "owrs/thread", "total_owrs", "MOPS", "dram_B/wr"],
        rows=rows,
        paper_claim=(
            "throughput peaks near 768 total OWRs; 96x32 runs at ~49.5% of the "
            "peak while DRAM traffic per WR grows 93 -> 180 bytes"
        ),
    )


def fig5_race_contention(
    threads: Optional[Sequence[int]] = None,
    thetas: Optional[Sequence[float]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 5: RACE update throughput/latency vs threads and skew."""
    threads = threads or _grid((2, 8, 96), (2, 4, 8, 16, 32, 64, 96))
    thetas = thetas or _grid((0.0, 0.99), (0.0, 0.5, 0.8, 0.9, 0.95, 0.99))
    labels = [("threads", t, 0.99) for t in threads] + [
        ("theta", 16, theta) for theta in thetas
    ]
    specs = [
        PointSpec("run_hashtable", dict(
            system="race", workload=UPDATE_ONLY, threads=t, item_count=100_000,
            warmup_ns=1.0e6, measure_ns=1.5e6,
        ))
        for t in threads
    ] + [
        PointSpec("run_hashtable", dict(
            system="race", workload=UPDATE_ONLY.with_theta(theta), threads=16,
            item_count=100_000, warmup_ns=1.0e6, measure_ns=1.5e6,
        ))
        for theta in thetas
    ]
    rows = [
        [sweep, t, theta, result.throughput_mops,
         (result.p50_latency_ns or 0) / 1e3, (result.p99_latency_ns or 0) / 1e3]
        for (sweep, t, theta), result in zip(labels, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 5: RACE updates vs parallelism and Zipfian skew",
        headers=["sweep", "threads", "theta", "MOPS", "p50_us", "p99_us"],
        rows=rows,
        paper_claim=(
            "RACE peaks at only 8 threads; p99 latency grows up to 17.1x with "
            "more threads; raising theta 0 -> 0.99 grows p50 1.9x and p99 78.4x"
        ),
    )


# -- Section 6.2.1: hash table ---------------------------------------------------------


_HT_WORKLOADS = (
    ("write-heavy", WRITE_HEAVY),
    ("read-heavy", READ_HEAVY),
    ("read-only", READ_ONLY),
)


def fig7_hashtable(
    threads: Optional[Sequence[int]] = None,
    compute_blades: Optional[Sequence[int]] = None,
    item_count: int = 50_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 7: RACE vs SMART-HT, scale-up (a-c) and scale-out (d-f)."""
    threads = threads or _grid((8, 96), (2, 8, 16, 32, 48, 64, 96))
    compute_blades = compute_blades or _grid((2, 4), (2, 3, 4, 5, 6))
    workloads = _HT_WORKLOADS if full_grids() else (
        _HT_WORKLOADS[0], _HT_WORKLOADS[2],
    )
    scale_out_threads = 96 if full_grids() else 24
    labels: List[List] = []
    specs: List[PointSpec] = []
    for label, workload in workloads:
        for t in threads:
            for system in ("race", "smart-ht"):
                specs.append(PointSpec("run_hashtable", dict(
                    system=system, workload=workload, threads=t,
                    item_count=item_count, warmup_ns=1.0e6, measure_ns=1.5e6,
                )))
                labels.append(["scale-up", label, system, t, 1])
        for blades in compute_blades:
            for system in ("race", "smart-ht"):
                specs.append(PointSpec("run_hashtable", dict(
                    system=system, workload=workload, threads=scale_out_threads,
                    compute_blades=blades, item_count=item_count,
                    warmup_ns=1.0e6, measure_ns=1.5e6,
                )))
                labels.append(["scale-out", label, system, scale_out_threads, blades])
    rows = [
        label + [result.throughput_mops]
        for label, result in zip(labels, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 7: hash table throughput (MOPS), RACE vs SMART-HT",
        headers=["mode", "workload", "system", "threads", "blades", "MOPS"],
        rows=rows,
        paper_claim=(
            "scale-up: RACE peaks at 2.8 (write-heavy, 8 threads) while SMART-HT "
            "reaches 5.7 at 48; read-only 11.4 vs 23.7.  scale-out (576 threads): "
            "SMART-HT up to 132.4x (write-heavy), 77.3x (read-heavy), "
            "2.0-3.8x (read-only)"
        ),
    )


def fig8_breakdown(
    threads: Optional[Sequence[int]] = None,
    item_count: int = 50_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 8: cumulative technique ladder on the hash table."""
    threads = threads or _grid((8, 96), (8, 16, 32, 48, 64, 96))
    # read-heavy behaves between the other two mixes; the quick grid
    # skips it (REPRO_FULL=1 restores it).
    workloads = _HT_WORKLOADS if full_grids() else (
        _HT_WORKLOADS[0], _HT_WORKLOADS[2],
    )
    labels = []
    specs = []
    for label, workload in workloads:
        for t in threads:
            for name, features in cumulative_ladder():
                specs.append(PointSpec("run_hashtable", dict(
                    system="smart-ht", workload=workload, threads=t,
                    item_count=item_count, features=features,
                    warmup_ns=1.0e6, measure_ns=1.5e6,
                )))
                labels.append([label, t, name])
    rows = [
        label + [result.throughput_mops]
        for label, result in zip(labels, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 8: hash table performance breakdown (MOPS)",
        headers=["workload", "threads", "config", "MOPS"],
        rows=rows,
        paper_claim=(
            "ThdResAlloc dominates read-heavy gains; WorkReqThrot helps "
            "write-heavy at 8-32 threads; ConflictAvoid dominates write-heavy "
            "at high thread counts"
        ),
    )


def fig9_ht_latency(
    gaps_ns: Optional[Sequence[float]] = None,
    item_count: int = 50_000,
    threads: int = 96,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 9: throughput vs latency (read-only, 96 threads)."""
    gaps_ns = gaps_ns or _grid(
        (0.0, 20_000.0), (0.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 40_000.0, 80_000.0)
    )
    points = [(system, gap) for system in ("race", "smart-ht") for gap in gaps_ns]
    specs = [
        PointSpec("run_hashtable", dict(
            system=system, workload=READ_ONLY, threads=threads,
            item_count=item_count, throttle_gap_ns=gap,
            warmup_ns=1.0e6, measure_ns=1.5e6,
        ))
        for system, gap in points
    ]
    rows = [
        [system, gap / 1e3, result.throughput_mops,
         (result.p50_latency_ns or 0) / 1e3, (result.p99_latency_ns or 0) / 1e3]
        for (system, gap), result in zip(points, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 9: hash table throughput vs latency (read-only, 96 threads)",
        headers=["system", "gap_us", "MOPS", "p50_us", "p99_us"],
        rows=rows,
        paper_claim=(
            "SMART-HT cuts median latency by 69.6% and tail latency by up to "
            "80.6% at matched throughput"
        ),
    )


# -- Section 6.2.2: distributed transactions ---------------------------------------------


def fig10_dtx(
    threads: Optional[Sequence[int]] = None,
    item_count: int = 50_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 10: FORD+ vs SMART-DTX throughput (SmallBank, TATP)."""
    threads = threads or _grid((8, 24, 96), (8, 16, 24, 32, 40, 48, 64, 80, 96))
    points = [
        (benchmark, t, system)
        for benchmark in ("smallbank", "tatp")
        for t in threads
        for system in ("ford", "smart-dtx")
    ]
    specs = [
        PointSpec("run_dtx", dict(
            system=system, benchmark=benchmark, threads=t, item_count=item_count,
            warmup_ns=1.0e6, measure_ns=1.5e6,
        ))
        for benchmark, t, system in points
    ]
    rows = [
        [benchmark, system, t, result.throughput_mops]
        for (benchmark, t, system), result in zip(points, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 10: committed txns (M/s), FORD+ vs SMART-DTX",
        headers=["benchmark", "system", "threads", "Mtxn/s"],
        rows=rows,
        paper_claim=(
            "FORD+ peaks at 24 (SmallBank) / 32 (TATP) threads then degrades; "
            "SMART-DTX keeps scaling: up to 5.2x (SmallBank) and 2.6x (TATP)"
        ),
    )


def fig11_dtx_latency(
    gaps_ns: Optional[Sequence[float]] = None,
    item_count: int = 50_000,
    threads: int = 96,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 11: throughput vs median latency, 96 threads x 8 coroutines."""
    gaps_ns = gaps_ns or _grid((0.0, 40_000.0), (0.0, 5_000.0, 20_000.0, 40_000.0, 80_000.0, 160_000.0))
    points = [
        (benchmark, system, gap)
        for benchmark in ("smallbank", "tatp")
        for system in ("ford", "smart-dtx")
        for gap in gaps_ns
    ]
    specs = [
        PointSpec("run_dtx", dict(
            system=system, benchmark=benchmark, threads=threads,
            item_count=item_count, throttle_gap_ns=gap,
            warmup_ns=1.0e6, measure_ns=1.5e6,
        ))
        for benchmark, system, gap in points
    ]
    rows = [
        [benchmark, system, gap / 1e3, result.throughput_mops,
         (result.p50_latency_ns or 0) / 1e3]
        for (benchmark, system, gap), result in zip(points, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 11: DTX throughput vs median latency (96 threads)",
        headers=["benchmark", "system", "gap_us", "Mtxn/s", "p50_us"],
        rows=rows,
        paper_claim=(
            "SMART-DTX cuts median latency by up to 45.8% (SmallBank) and "
            "77.0% (TATP); at low load the systems match"
        ),
    )


# -- Section 6.2.3: B+Tree ------------------------------------------------------------------


def fig12_btree(
    threads: Optional[Sequence[int]] = None,
    servers: Optional[Sequence[int]] = None,
    item_count: int = 30_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 12: Sherman+ vs Sherman+ w/SL vs SMART-BT."""
    threads = threads or _grid((16, 94), (2, 8, 16, 32, 48, 64, 94))
    servers = servers or _grid((2,), (2, 3, 4, 5, 6))
    systems = ("sherman", "sherman-sl", "smart-bt")
    workloads = _HT_WORKLOADS if full_grids() else (
        _HT_WORKLOADS[0], _HT_WORKLOADS[2],
    )
    so_threads = 94 if full_grids() else 32
    labels = []
    specs = []
    for label, workload in workloads:
        for t in threads:
            for system in systems:
                specs.append(PointSpec("run_btree", dict(
                    system=system, workload=workload, threads=t,
                    item_count=item_count, warmup_ns=1.0e6, measure_ns=1.5e6,
                )))
                labels.append(["scale-up", label, system, t, 1])
        for n in servers:
            for system in systems:
                specs.append(PointSpec("run_btree", dict(
                    system=system, workload=workload, threads=so_threads,
                    servers=n, item_count=item_count,
                    warmup_ns=1.0e6, measure_ns=1.5e6,
                )))
                labels.append(["scale-out", label, system, so_threads, n])
    rows = [
        label + [result.throughput_mops]
        for label, result in zip(labels, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Figure 12: B+Tree throughput (MOPS)",
        headers=["mode", "workload", "system", "threads", "servers", "MOPS"],
        rows=rows,
        paper_claim=(
            "speculative lookup gives up to 1.6x on read-heavy; Sherman+ w/SL "
            "stops scaling past 64 threads (16.3 at 94); SMART-BT reaches 2.0x "
            "Sherman+ on read-only; write-heavy is roughly tied (HOPL already "
            "minimizes lock messages)"
        ),
    )


# -- Section 6.3: micro-benchmarks ---------------------------------------------------------------


def fig13_micro(
    threads: Optional[Sequence[int]] = None,
    batches: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 13: thread-aware allocation + throttling microbenchmarks."""
    threads = threads or _grid((16, 56, 96), (8, 16, 24, 32, 40, 56, 72, 96))
    batches = batches or _grid((4, 16, 64), (1, 2, 4, 8, 16, 32, 64))
    policies = ("per-thread-qp", "per-thread-context", "per-thread-db", "smart")
    labels = [["threads", t, 16] for t in threads] + [
        ["batch", 96, b] for b in batches
    ]
    specs = [
        PointSpec("run_microbench", dict(
            policy=policy, threads=t, depth=16, measure_ns=1.5e6,
        ))
        for t in threads
        for policy in policies
    ] + [
        PointSpec("run_microbench", dict(
            policy=policy, threads=96, depth=b, measure_ns=1.5e6,
        ))
        for b in batches
        for policy in policies
    ]
    results = iter(run_points(specs, jobs=jobs))
    rows = [
        label + [next(results).throughput_mops for _ in policies]
        for label in labels
    ]
    return ExperimentResult(
        name="Figure 13: QP allocation + throttling micro-bench (MOPS)",
        headers=["sweep", "threads", "batch"] + list(policies),
        rows=rows,
        paper_claim=(
            "(a) +ThdResAlloc reaches the 110 MOPS limit, up to 4.3x over "
            "per-thread QP; +WorkReqThrot stays flat at 56+ threads (up to "
            "5.0x / 1.9x over per-thread QP / context).  (b) with batch > 8, "
            "+WorkReqThrot is the best configuration"
        ),
    )


def table1_dynamic(
    intervals_ns: Optional[Sequence[float]] = None,
    total_ns: float = 24e6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Table 1: throughput under a dynamically changing thread count.

    The paper's interval ladder (32..2048 ms against a 512 ms epoch) is
    scaled to the bench epoch (stable phase = 60 x Δ = 18 ms): the ratio
    interval/epoch spans the same 1/16..4 range.
    """
    # Shorten the stable phase so several epochs fit in a bench run; the
    # interval:epoch ratios still span the paper's 1/16..4 range.
    stable_epochs = 20
    epoch_ns = (5 + stable_epochs) * BENCH_DELTA_NS
    intervals_ns = intervals_ns or _grid(
        tuple(epoch_ns * f for f in (1 / 8, 1 / 2, 2)),
        tuple(epoch_ns * f for f in (1 / 16, 1 / 8, 1 / 4, 1 / 2, 1, 2, 4)),
    )
    features_on = bench_features(
        full().with_overrides(
            backoff=False, dynamic_backoff_limit=False,
            coroutine_throttling=False, stable_epochs=stable_epochs,
        )
    )
    features_off = bench_features(
        baseline().with_overrides(thread_aware_alloc=True)
    )
    specs = []
    for interval in intervals_ns:
        run_total = max(total_ns, interval * 5)
        specs.append(PointSpec("run_dynamic_microbench", dict(
            changing_interval_ns=interval, throttled=False,
            features=features_off, total_ns=run_total,
        )))
        specs.append(PointSpec("run_dynamic_microbench", dict(
            changing_interval_ns=interval, throttled=True,
            features=features_on, total_ns=run_total,
        )))
    results = iter(run_points(specs, jobs=jobs))
    rows = []
    for interval in intervals_ns:
        off = next(results)
        on = next(results)
        rows.append(
            [interval / 1e6, interval / epoch_ns, off.throughput_mops,
             on.throughput_mops]
        )
    return ExperimentResult(
        name="Table 1: dynamic workload, w/ and w/o WorkReqThrot (MOPS)",
        headers=["interval_ms", "interval/epoch", "w/o_throttle", "w/_throttle"],
        rows=rows,
        paper_claim=(
            "with changing intervals longer than the epoch, throttled "
            "throughput is near the 110 MOPS maximum; faster changes lose up "
            "to 13%, but throttling still wins at every interval"
        ),
    )


def fig14_conflict(
    threads: Optional[Sequence[int]] = None,
    item_count: int = 50_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 14: conflict-avoidance ladder on 100% updates, theta=0.99."""
    threads = threads or _grid((16, 96), (8, 16, 32, 48, 64, 96))
    ladder = [
        ("none", full().with_overrides(
            backoff=False, dynamic_backoff_limit=False, coroutine_throttling=False)),
        ("+Backoff", full().with_overrides(
            dynamic_backoff_limit=False, coroutine_throttling=False)),
        ("+DynLimit", full().with_overrides(coroutine_throttling=False)),
        ("+CoroThrot", full()),
    ]
    points = [(t, name) for t in threads for name, _ in ladder]
    specs = [
        PointSpec("run_hashtable", dict(
            system="smart-ht", workload=UPDATE_ONLY, threads=t,
            item_count=item_count, features=features,
            warmup_ns=1.8e6, measure_ns=2.0e6,
        ))
        for t in threads
        for _, features in ladder
    ]
    rows = []
    distributions: Dict[str, Dict[int, float]] = {}
    for (t, name), result in zip(points, run_points(specs, jobs=jobs)):
        rows.append([t, name, result.throughput_mops, result.avg_retries])
        if t == max(threads):
            distributions[name] = result.retry_distribution
    observations = []
    for name, dist in distributions.items():
        zero = dist.get(0, 0.0)
        observations.append(
            f"{name}: {zero * 100:.1f}% of updates complete without retries "
            f"at {max(threads)} threads"
        )
    return ExperimentResult(
        name="Figure 14: conflict avoidance (100% updates, theta=0.99)",
        headers=["threads", "config", "MOPS", "avg_retries"],
        rows=rows,
        paper_claim=(
            "without conflict avoidance retries reach 11.5/op at 96 threads; "
            "+Backoff keeps them under 1.7; +DynLimit adds 1.6x throughput; "
            "all techniques: 1.1 retries/op and 93.3% of updates retry-free"
        ),
        observations=observations,
    )


# -- open-loop latency-throughput knee (not a paper figure) --------------------------


#: baseline vs SMART system pair swept by :func:`latency_throughput`
_OPEN_LOOP_SYSTEMS = {
    "hashtable": ("race", "smart-ht"),
    "dtx": ("ford", "smart-dtx"),
    "btree": ("sherman", "smart-bt"),
}


def latency_throughput(
    app: str = "hashtable",
    rates_mops: Optional[Sequence[float]] = None,
    threads: int = 8,
    workers: int = 32,
    item_count: int = 30_000,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 1.5e6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Open-loop offered-load sweep: find the latency-throughput knee.

    Unlike the closed-loop Fig 9/11 sweeps (which thin load by inserting
    idle gaps and therefore cannot observe queueing delay), this sweep
    offers Poisson arrivals at fixed rates through
    :func:`repro.traffic.runner.run_open_loop` and reports achieved
    throughput, total (arrival→completion) latency and queueing delay.
    Past the knee the baseline's queue grows without bound while SMART's
    higher capacity keeps absorbing load.
    """
    from repro.bench.report import find_knee

    systems = _OPEN_LOOP_SYSTEMS[app]
    rates_mops = rates_mops or _grid(
        (0.5, 1.0, 2.0, 4.0), (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0)
    )
    specs = [
        PointSpec("run_open_loop", dict(
            app=app, system=system, rate_mops=rate, threads=threads,
            workers=workers, item_count=item_count,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
        ))
        for rate in rates_mops
        for system in systems
    ]
    results = iter(run_points(specs, jobs=jobs))
    headers = ["offered"]
    for system in systems:
        headers += [f"{system}_mops", f"{system}_p99_us", f"{system}_qd99_us"]
    rows = []
    achieved: Dict[str, List[float]] = {system: [] for system in systems}
    for rate in rates_mops:
        row: List = [rate]
        for system in systems:
            tenant = next(results).tenants[0]
            achieved[system].append(tenant.achieved_mops)
            row += [
                tenant.achieved_mops,
                (tenant.p99_latency_ns or 0) / 1e3,
                (tenant.queue_p99_ns or 0) / 1e3,
            ]
        rows.append(row)
    observations = []
    for system in systems:
        knee = find_knee(list(rates_mops), achieved[system])
        observations.append(
            f"{system}: knee at {knee} MOPS offered" if knee is not None
            else f"{system}: no knee within the sweep "
                 f"(kept up through {max(rates_mops)} MOPS)"
        )
    return ExperimentResult(
        name=f"Open-loop latency-throughput knee ({app}, {threads} threads)",
        headers=headers,
        rows=rows,
        paper_claim=(
            "not a paper figure — open-loop companion to Figs 9/11: offered "
            "load is independent of completions, so past-saturation queueing "
            "delay is measured instead of omitted (coordinated omission); "
            "SMART's knee sits at a higher offered rate than the baseline's"
        ),
        observations=observations,
        chart_spec=("offered", tuple(f"{system}_mops" for system in systems)),
    )


# -- elastic resharding (not a paper figure) -----------------------------------------


def resharding(
    modes: Optional[Sequence[str]] = None,
    rate_mops: float = 0.4,
    workers: int = 4,
    threads: int = 4,
    num_shards: int = 8,
    item_count: int = 2_000,
    phase_ns: float = 1.0e6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Online shard migration under live open-loop traffic.

    For each elasticity mode (blade join / blade drain / autoscaler-
    driven) a sharded hash table serves Poisson traffic while shards
    move between blades; the table reports per-phase queue delay —
    before, during and after the rebalance — so the SLO cost of
    elasticity is visible directly.  See
    :func:`repro.traffic.resharding.run_resharding`.
    """
    modes = modes or _grid(("add_blade",), ("add_blade", "drain", "autoscale"))
    specs = [
        PointSpec("run_resharding", dict(
            mode=mode, rate_mops=rate_mops, workers=workers, threads=threads,
            num_shards=num_shards, item_count=item_count, phase_ns=phase_ns,
        ))
        for mode in modes
    ]
    rows = []
    observations = []
    for mode, result in zip(modes, run_points(specs, jobs=jobs)):
        for row in result.phases:
            rows.append([
                mode, row.phase, row.tenant, row.completed, row.shed,
                row.deferred, (row.queue_p50_ns or 0) / 1e3,
                (row.queue_p99_ns or 0) / 1e3,
            ])
        migration = result.migration_ns
        observations.append(
            f"{mode}: {len(result.moves)} shard move(s), "
            f"{result.keys_copied} keys copied, "
            f"{result.bytes_freed / 1024:.0f} KiB freed, "
            + (f"migration took {migration / 1e3:.0f} us"
               if migration is not None else "no migration triggered")
        )
    return ExperimentResult(
        name="Elastic resharding: per-phase queue delay around a rebalance",
        headers=["mode", "phase", "tenant", "completed", "shed", "deferred",
                 "queue_p50_us", "queue_p99_us"],
        rows=rows,
        paper_claim=(
            "not a paper figure — elasticity harness: shards migrate online "
            "between blades over one-sided verbs (dual-write + tombstone "
            "reconciliation), source regions are freed back to the blade "
            "allocator, and queue delay returns to its pre-migration level "
            "in the after phase"
        ),
        observations=observations,
    )


# -- chaos harness (not a paper figure) ----------------------------------------------


def chaos_recovery(
    measure_ns: float = 2.0e6,
    # seed 9 leaves in-doubt log records at the crash in *both* crash
    # scenarios, so the table always shows NVM rollback at restart
    fault_seed: int = 9,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Fault-injection scenarios on the FORD transaction stack (SmallBank).

    Four runs: fault-free baseline, a packet-loss window, a memory-blade
    crash+restart, and both together.  Crash restarts run FORD's NVM
    log-ring recovery; the table shows the wasted-IOPS and
    recovery-latency cost of each scenario.  Every scenario is fully
    deterministic under its ``fault_seed``.  (Fault times are absolute,
    placed inside the measurement window [1 ms, 1 ms + measure_ns); the
    baseline FORD feature set keeps the warmup at exactly 1 ms.)
    """
    scenarios = [
        ("none", None),
        ("loss", "loss=0.02@1.2ms+1.2ms"),
        ("crash", "crash=2@1.4ms+0.5ms"),
        ("crash+loss", "loss=0.01@1.1ms+1.6ms,crash=1@1.4ms+0.4ms"),
    ]
    specs = [
        PointSpec("run_dtx", dict(
            system="ford", benchmark="smallbank", threads=4, coroutines=4,
            item_count=20_000, warmup_ns=1.0e6, measure_ns=measure_ns,
            faults=spec, fault_seed=fault_seed,
        ))
        for _, spec in scenarios
    ]
    rows = [
        [name, result.throughput_mops, result.crashes, result.recoveries,
         round(result.avg_recovery_us, 2), result.fault_aborts,
         result.retransmissions, result.error_completions, result.wasted_wrs,
         result.rolled_back]
        for (name, _), result in zip(scenarios, run_points(specs, jobs=jobs))
    ]
    return ExperimentResult(
        name="Chaos: FORD DTX under injected faults (SmallBank)",
        headers=["scenario", "Mtxn/s", "crashes", "recoveries", "avg_rec_us",
                 "fault_aborts", "retransmits", "error_cqes", "wasted_wrs",
                 "rolled_back"],
        rows=rows,
        paper_claim=(
            "not a paper figure — fault-injection harness: FORD's NVM undo "
            "logs (§2.3 of the FORD design) make blade crashes recoverable; "
            "throughput dips inside fault windows, clients reconnect with "
            "jittered probes, and in-doubt records are rolled back at restart"
        ),
    )


def odp_sweep(
    ratios: Optional[Sequence[float]] = None,
    depths: Optional[Sequence[int]] = None,
    threads: int = 8,
    payload: int = 64,
    measure_ns: float = 1.0e6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """ODP pinned-ratio sweep x outstanding-WR count, +/- request merging.

    Every point runs the sequential-offset microbench twice: once with
    merging/adaptive polling off, once with both on.  As ``pinned_ratio``
    falls, more responder pages are on-demand-paged and first-touch
    faults stretch the tail; RDMAbox-style merging fuses the contiguous
    WRs into one wire message per doorbell, clawing back the per-WR
    processing cost at high OWR counts.  ``pinned_ratio=1.0`` rows are
    the pinned baseline (zero faults by construction).
    """
    ratios = ratios or _grid((1.0, 0.75, 0.5), (1.0, 0.9, 0.75, 0.5, 0.25))
    depths = depths or _grid((4, 32), (2, 4, 8, 16, 32, 64))
    specs = [
        PointSpec("run_microbench", dict(
            policy="per-thread-db", threads=threads, depth=depth,
            payload=payload, op="read", access="seq",
            pinned_ratio=ratio, merge_wrs=merged, adaptive_poll=merged,
            latency_samples=True, measure_ns=measure_ns,
        ))
        for ratio in ratios
        for depth in depths
        for merged in (False, True)
    ]
    results = iter(run_points(specs, jobs=jobs))
    rows = []
    for ratio in ratios:
        for depth in depths:
            plain = next(results)
            merged = next(results)
            rows.append([
                ratio, depth,
                plain.throughput_mops, merged.throughput_mops,
                (plain.batch_latency_p50_ns or 0.0) / 1e3,
                (merged.batch_latency_p50_ns or 0.0) / 1e3,
                plain.odp_faults, merged.merged_wrs,
            ])
    return ExperimentResult(
        name="ODP: pinned-ratio sweep x OWR, +/- doorbell merging",
        headers=["pinned_ratio", "depth", "MOPS", "MOPS+merge",
                 "p50_us", "p50_us+merge", "odp_faults", "merged_wrs"],
        rows=rows,
        chart_spec=("depth", ("MOPS", "MOPS+merge")),
        paper_claim=(
            "not a SMART figure — realism axes from related work: NP-RDMA "
            "reports on-demand paging costs tens of us per first-touch "
            "fault, so throughput/latency degrade smoothly as the pinned "
            "ratio falls; RDMAbox's doorbell batching merges contiguous "
            "WRs and recovers the per-WR RNIC processing cost at high "
            "queue depth"
        ),
    )


def offload_sweep(
    skews: Optional[Sequence[float]] = None,
    chunks: Optional[Sequence[int]] = None,
    modes: Sequence[str] = ("onesided", "rpc", "offload"),
    algo: str = "bfs",
    vertices: int = 192,
    degree: int = 6,
    threads: int = 2,
    coroutines: int = 2,
    seed: int = 0,
    sanitize: bool = False,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Near-memory offload sweep: skew x fan-out x execution mode.

    Each point runs the same seeded graph job (BFS by default) in one of
    the three execution modes.  The headline: at high skew the one-sided
    mode burns CAS round trips on already-claimed hub vertices (the
    RACE-style wasted IOPS), while the offload mode's per-blade chunk
    handlers claim locally and waste none — at the price of wimpy-core
    handler occupancy.  ``chunk`` only affects the offload rows (it is
    the AM fan-out: frontier slots per active message); other modes run
    once per skew with the default chunk.  Every row reports the result
    checksum, so mode-equivalence is visible directly in the table.
    """
    skews = skews or _grid((0.0, 0.6), (0.0, 0.2, 0.4, 0.6, 0.8))
    chunks = chunks or _grid((8, 32), (4, 8, 16, 32, 64))
    specs = []
    labels = []
    for skew in skews:
        for mode in modes:
            mode_chunks = chunks if mode == "offload" else [chunks[-1]]
            for chunk in mode_chunks:
                specs.append(PointSpec("run_graph", dict(
                    mode=mode, algo=algo, vertices=vertices, degree=degree,
                    skew=skew, threads=threads, coroutines=coroutines,
                    chunk=chunk, seed=seed, sanitize=sanitize,
                )))
                labels.append((skew, mode, chunk))
    rows = []
    for (skew, mode, chunk), result in zip(labels, run_points(specs, jobs=jobs)):
        rows.append([
            skew, mode, chunk if mode == "offload" else "-",
            round(result.elapsed_ns / 1e3, 1),
            round(result.edges_per_us, 2),
            result.wasted_iops, result.am_messages, result.am_rejected,
            round(result.handler_busy_ns / 1e3, 1),
            result.visited, result.levels_checksum % 10**8,
        ])
    return ExperimentResult(
        name=f"Offload: near-memory {algo} — skew x fan-out x mode",
        headers=["skew", "mode", "chunk", "elapsed_us", "edges/us",
                 "wasted_iops", "am_msgs", "am_rejected", "handler_us",
                 "visited", "checksum"],
        rows=rows,
        paper_claim=(
            "not a SMART figure — near-memory extension: offloading "
            "traversal chunks to blade-side handlers eliminates the "
            "RACE-style CAS-retry wasted IOPS that one-sided claims burn "
            "on hub vertices at high skew, trading client round trips for "
            "wimpy-core handler occupancy; all modes produce bit-identical "
            "results (equal checksums per skew row)"
        ),
    )


ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig3": fig3_qp_policies,
    "fig4": fig4_cache_thrashing,
    "fig5": fig5_race_contention,
    "fig7": fig7_hashtable,
    "fig8": fig8_breakdown,
    "fig9": fig9_ht_latency,
    "fig10": fig10_dtx,
    "fig11": fig11_dtx_latency,
    "fig12": fig12_btree,
    "fig13": fig13_micro,
    "table1": table1_dynamic,
    "fig14": fig14_conflict,
    "latency_throughput": latency_throughput,
    "resharding": resharding,
    "chaos": chaos_recovery,
    "odp": odp_sweep,
    "offload": offload_sweep,
}
