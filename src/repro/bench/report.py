"""Plain-text table formatting and machine-readable benchmark output."""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format(cell, floatfmt))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(cells[i].rjust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """Safe speedup ratio (0 when the denominator is 0)."""
    return numerator / denominator if denominator else 0.0


def find_knee(
    offered: Sequence[float],
    achieved: Sequence[float],
    threshold: float = 0.9,
) -> Optional[float]:
    """Locate the knee of a latency-throughput sweep.

    Walking the sweep in offered-load order, the knee is the first
    offered rate at which achieved throughput falls below ``threshold``
    of offered — i.e. where the open-loop queue starts absorbing load
    the service can no longer keep up with.  Returns ``None`` when the
    service tracked every offered rate (the sweep never saturated).
    """
    if len(offered) != len(achieved):
        raise ValueError("offered and achieved must have the same length")
    for rate, got in sorted(zip(offered, achieved)):
        if rate > 0 and got < threshold * rate:
            return rate
    return None


def result_slug(name: str) -> str:
    """Filesystem-safe slug for an experiment name.

    Names with no alphanumeric characters (or empty names) collapse to a
    stable default instead of the empty string — an empty slug produced
    hidden files like ``.txt``/``.json``.
    """
    slug = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")[:60]
    return slug or "experiment"


def write_experiment_text(result, directory) -> Path:
    """Write ``result.format()`` to ``<slug>.txt`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result_slug(result.name)}.txt"
    path.write_text(result.format() + "\n")
    return path


def write_experiment_json(result, target) -> Path:
    """Write an :class:`ExperimentResult` as JSON.

    ``target`` may be a directory (the file becomes ``<slug>.json`` next
    to the ``.txt`` table) or an explicit ``.json`` file path.
    """
    target = Path(target)
    if target.suffix == ".json":
        path = target
        path.parent.mkdir(parents=True, exist_ok=True)
    else:
        target.mkdir(parents=True, exist_ok=True)
        path = target / f"{result_slug(result.name)}.json"
    path.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
    return path
