"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format(cell, floatfmt))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(cells[i].rjust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """Safe speedup ratio (0 when the denominator is 0)."""
    return numerator / denominator if denominator else 0.0
