"""Terminal plotting: ASCII charts for benchmark series.

No plotting stack is assumed (the reference environment is offline);
these renderers make the figure shapes visible directly in bench output.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line bar sketch of a series (max-normalized)."""
    values = list(values)
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _BARS[0] * len(values)
    scaled = [int(round(v / top * (len(_BARS) - 1))) for v in values]
    return "".join(_BARS[max(0, min(s, len(_BARS) - 1))] for s in scaled)


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Optional[Sequence] = None,
    width: int = 60,
    height: int = 12,
) -> str:
    """A multi-series ASCII scatter chart (one letter per series)."""
    if not series:
        return ""
    names = list(series)
    markers = {}
    for i, name in enumerate(names):
        markers[name] = name[0].upper() if i == 0 else (
            name.lstrip("+")[0].lower() if i % 2 else name.lstrip("+")[0].upper()
        )
    # Ensure marker uniqueness.
    used = set()
    for name in names:
        marker = markers[name]
        while marker in used:
            marker = chr(ord(marker) + 1)
        markers[name] = marker
        used.add(marker)

    longest = max(len(list(v)) for v in series.values())
    top = max((max(v) for v in series.values() if len(list(v))), default=1.0)
    top = top or 1.0
    grid = [[" "] * width for _ in range(height)]
    for name in names:
        values = list(series[name])
        for i, value in enumerate(values):
            x = int(i / max(longest - 1, 1) * (width - 1))
            y = height - 1 - int(min(value / top, 1.0) * (height - 1))
            grid[y][x] = markers[name]
    lines = [f"{top:>10.1f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{0.0:>10.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    legend = "   ".join(f"{markers[n]}={n}" for n in names)
    lines.append(" " * 12 + legend)
    if x_labels is not None:
        labels = list(x_labels)
        lines.append(" " * 12 + f"x: {labels[0]} .. {labels[-1]}")
    return "\n".join(lines)
