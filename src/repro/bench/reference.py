"""Reference-result comparison (the artifact's ``ae/raw-reference`` role).

``benchmarks/results/`` holds the series produced by the last bench run;
``benchmarks/reference/`` holds a committed snapshot.  Because the
simulator is deterministic for a fixed seed and grid, a healthy checkout
reproduces the reference numbers within a tight tolerance (drift signals
an unintended model change).
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")


@dataclass
class Comparison:
    """Outcome of comparing one results file against its reference."""

    name: str
    compared_values: int = 0
    mismatches: List[Tuple[int, float, float]] = field(default_factory=list)
    missing_reference: bool = False

    @property
    def ok(self) -> bool:
        return not self.missing_reference and not self.mismatches


def extract_numbers(text: str) -> List[float]:
    """All numeric literals from a results table, in reading order.

    Chart lines and prose are skipped: only rows between the header rule
    (``---``) and the first blank line are parsed.
    """
    numbers: List[float] = []
    in_table = False
    for line in text.splitlines():
        if set(line.strip()) and set(line.strip()) <= {"-", " "}:
            in_table = True
            continue
        if in_table:
            if not line.strip() or line.startswith(("paper:", "note:")):
                break
            numbers.extend(float(m) for m in _NUMBER.findall(line))
    return numbers


def compare_file(
    results_path: pathlib.Path,
    reference_dir: pathlib.Path,
    rel_tolerance: float = 0.05,
    abs_tolerance: float = 0.05,
) -> Comparison:
    """Compare one results file to its committed reference."""
    comparison = Comparison(results_path.name)
    reference_path = reference_dir / results_path.name
    if not reference_path.exists():
        comparison.missing_reference = True
        return comparison
    measured = extract_numbers(results_path.read_text())
    expected = extract_numbers(reference_path.read_text())
    if len(measured) != len(expected):
        comparison.mismatches.append((-1, float(len(expected)), float(len(measured))))
        return comparison
    for index, (want, got) in enumerate(zip(expected, measured)):
        comparison.compared_values += 1
        scale = max(abs(want), abs_tolerance)
        if abs(got - want) > rel_tolerance * scale + abs_tolerance:
            comparison.mismatches.append((index, want, got))
    return comparison


def compare_all(
    results_dir: pathlib.Path,
    reference_dir: pathlib.Path,
    rel_tolerance: float = 0.05,
) -> List[Comparison]:
    return [
        compare_file(path, reference_dir, rel_tolerance)
        for path in sorted(results_dir.glob("*.txt"))
    ]


def snapshot(results_dir: pathlib.Path, reference_dir: pathlib.Path) -> int:
    """Copy the current results into the reference directory."""
    reference_dir.mkdir(parents=True, exist_ok=True)
    count = 0
    for path in sorted(results_dir.glob("*.txt")):
        (reference_dir / path.name).write_text(path.read_text())
        count += 1
    return count
