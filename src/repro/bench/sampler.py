"""Time-series sampling of device counters during a simulation.

Used to visualize throughput over time (e.g. while the adaptive
work-request throttling searches for C_max, or while a dynamic workload
changes its thread count — the Table-1 mechanism).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.rnic.device import RnicDevice
from repro.sim import Simulator


class CounterSampler:
    """Samples a device's completed-WR counter on a fixed period."""

    def __init__(self, sim: Simulator, device: RnicDevice, period_ns: float):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.device = device
        self.period_ns = period_ns
        #: [(time_ns, MOPS over the last period)]
        self.samples: List[Tuple[int, float]] = []
        self._stopped = False
        self.process = sim.spawn(self._loop(), name="counter-sampler")

    def stop(self) -> None:
        self._stopped = True

    def _loop(self):
        last = self.device.counters.cqe_delivered
        while not self._stopped:
            yield self.sim.timeout(self.period_ns)
            current = self.device.counters.cqe_delivered
            mops = (current - last) / self.period_ns * 1e3
            self.samples.append((self.sim.now, mops))
            last = current

    def throughputs(self) -> List[float]:
        return [mops for _, mops in self.samples]

    def mean_mops(self) -> Optional[float]:
        values = self.throughputs()
        return sum(values) / len(values) if values else None
