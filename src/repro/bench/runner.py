"""Application experiment runner.

Builds a cluster, deploys an application (hash table / B+Tree / DTX),
spawns client threads x coroutines, and measures throughput/latency over
a warm window — the common skeleton behind Figures 5 and 7-12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.race.client import HashTableClient
from repro.apps.race.server import HashTableServer
from repro.cluster import Cluster, Node
from repro.core import OperationStats, SmartContext, SmartFeatures, SmartThread
from repro.core.features import baseline, full
from repro.rnic.config import RnicConfig, apply_feature_overrides
from repro.workloads.ycsb import INSERT, READ, UPDATE, YcsbWorkload

#: Scaled-down adaptive-throttling epoch so the C_max search converges
#: within millisecond-scale simulations (the paper's 8 ms Δ assumes
#: multi-second runs; ratios are preserved).
BENCH_DELTA_NS = 0.3e6

#: Scaled-down γ sampling window (paper: 1 ms) for the same reason: the
#: t_max/c_max controller needs tens of windows to converge.
BENCH_RETRY_WINDOW_NS = 0.05e6


def bench_features(features: SmartFeatures) -> SmartFeatures:
    """Apply the bench-scale controller periods to a feature set."""
    if features.dynamic_backoff_limit or features.coroutine_throttling:
        features = features.with_overrides(retry_window_ns=BENCH_RETRY_WINDOW_NS)
    if features.work_req_throttling and features.adaptive_credit:
        features = features.with_overrides(update_delta_ns=BENCH_DELTA_NS)
    return features


SYSTEM_FEATURES: Dict[str, Callable[[], SmartFeatures]] = {
    "race": baseline,
    "smart-ht": full,
    "ford": baseline,
    "smart-dtx": full,
    "sherman": baseline,
    "smart-bt": full,
}


@dataclass
class RunResult:
    """Aggregated outcome of one experiment point."""

    system: str
    workload: str
    threads: int
    coroutines: int
    compute_blades: int
    throughput_mops: float
    p50_latency_ns: Optional[float]
    p99_latency_ns: Optional[float]
    avg_retries: float
    retry_distribution: Dict[int, float]
    ops: int
    measure_ns: float
    # Fault-injection observability (all stay zero for fault-free runs).
    fault_aborts: int = 0
    recoveries: int = 0
    failed_recoveries: int = 0
    avg_recovery_us: float = 0.0
    retransmissions: int = 0
    error_completions: int = 0
    flushed_wrs: int = 0
    wasted_wrs: int = 0
    messages_dropped: int = 0
    crashes: int = 0
    #: in-doubt records rolled back by FORD's recovery manager
    rolled_back: int = 0
    #: batch-weighted per-segment means (only when an Observability is
    #: attached; stays None — and out of serialized results — otherwise)
    phase_breakdown: Optional[Dict] = None
    #: RDMASan report (only when the run was sanitized; None otherwise)
    sanitizer: Optional[Dict] = None
    #: kernel events the whole point executed (warmup + measure) — with
    #: the host wall-clock this gives events/sec per figure point, the
    #: same currency as benchmarks/results/BENCH_kernel.json
    sim_events: int = 0

    @property
    def total_threads(self) -> int:
        return self.threads * self.compute_blades


@dataclass
class Deployment:
    """A wired cluster ready to run client coroutines."""

    cluster: Cluster
    compute_nodes: List[Node]
    memory_nodes: List[Node]
    smart_threads: List[SmartThread]
    features: SmartFeatures


def build_deployment(
    features: SmartFeatures,
    threads: int,
    compute_blades: int = 1,
    memory_blades: int = 2,
    config: Optional[RnicConfig] = None,
    seed: int = 0,
) -> Deployment:
    """Create the cluster and per-thread SMART state for an experiment."""
    features = bench_features(features)
    cluster = Cluster(config)
    compute_nodes = cluster.add_nodes(compute_blades)
    memory_nodes = cluster.add_nodes(memory_blades)
    smart_threads: List[SmartThread] = []
    for blade_index, node in enumerate(compute_nodes):
        node.add_threads(threads)
        SmartContext(node, memory_nodes, features)
        for thread in node.threads:
            smart_threads.append(
                SmartThread(thread, features, seed=seed + blade_index * 1000)
            )
    return Deployment(cluster, compute_nodes, memory_nodes, smart_threads, features)


def install_faults(
    deployment: Deployment,
    faults,
    fault_seed: int,
    warmup_ns: float,
    measure_ns: float,
):
    """Arm a fault schedule on a freshly built deployment.

    ``faults`` is ``None`` (no-op, the run is bit-identical to a build
    without fault injection), a :class:`repro.faults.FaultSchedule`, the
    literal ``"seeded"``, or a clause spec string (see
    :meth:`repro.faults.FaultSchedule.parse`).  Seeded schedules target
    the measurement window and crash only memory blades.
    """
    if faults is None:
        return None
    from repro.faults import FaultInjector, FaultSchedule

    schedule = FaultSchedule.from_spec(
        faults,
        seed=fault_seed,
        window_start_ns=effective_warmup_ns(deployment.features, warmup_ns),
        window_ns=measure_ns,
        crash_nodes=[n.node_id for n in deployment.memory_nodes],
    )
    return FaultInjector(deployment.cluster, schedule).install()


def apply_fault_stats(
    result: RunResult,
    stats: OperationStats,
    deployment: Deployment,
    injector=None,
    recovery=None,
) -> RunResult:
    """Fill a result's fault/recovery columns from the run's artifacts."""
    result.fault_aborts = stats.fault_aborts
    result.recoveries = stats.recoveries
    result.failed_recoveries = stats.failed_recoveries
    result.avg_recovery_us = stats.avg_recovery_ns / 1e3
    result.messages_dropped = deployment.cluster.fabric.messages_dropped
    for node in deployment.cluster.nodes:
        counters = node.device.counters
        result.retransmissions += counters.retransmissions
        result.error_completions += counters.error_completions
        result.flushed_wrs += counters.flushed_wrs
        result.wasted_wrs += counters.wasted_wrs
    if injector is not None:
        result.crashes = injector.crashes_fired
    if recovery is not None:
        result.rolled_back = recovery.rolled_back
    return result


def attach_sanitizer(sanitize, cluster):
    """Attach an RDMASan instance when ``sanitize`` is truthy.

    ``sanitize`` may be ``True`` (builds a fresh sanitizer) or an
    existing :class:`repro.analysis.RdmaSanitizer` to reuse; falsy
    returns ``None`` and the run stays byte-identical to an unsanitized
    build.
    """
    if not sanitize:
        return None
    from repro.analysis.rdmasan import RdmaSanitizer

    sanitizer = sanitize if isinstance(sanitize, RdmaSanitizer) else RdmaSanitizer()
    sanitizer.attach_cluster(cluster)
    return sanitizer


def collect_sanitizer(sanitizer, result: RunResult) -> RunResult:
    """Run teardown leak checks and embed the report (no-op on None)."""
    if sanitizer is not None:
        sanitizer.finish()
        result.sanitizer = sanitizer.report()
    return result


def effective_warmup_ns(features: SmartFeatures, warmup_ns: float) -> float:
    """The warmup :func:`measure` will actually use.

    Adaptive-credit systems extend warmup to cover the C_max search
    phase; fault schedules anchored to the measurement window must use
    the same boundary (stats are reset at its end).
    """
    if features.work_req_throttling and features.adaptive_credit:
        update_phase = len(features.cmax_candidates) * features.update_delta_ns
        warmup_ns = max(warmup_ns, update_phase + 0.5e6)
    return warmup_ns


def measure(
    deployment: Deployment,
    warmup_ns: float,
    measure_ns: float,
) -> OperationStats:
    """Run warmup, reset stats, run the measured window, merge stats."""
    warmup_ns = effective_warmup_ns(deployment.features, warmup_ns)
    sim = deployment.cluster.sim
    sim.run(until=warmup_ns)
    for smart in deployment.smart_threads:
        smart.stats.reset()
    sim.run(until=warmup_ns + measure_ns)
    return OperationStats.merge([s.stats for s in deployment.smart_threads])


def collect_obs(
    obs,
    deployment: Deployment,
    stats: OperationStats,
    result: RunResult,
    warmup_ns: float,
    measure_ns: float,
) -> RunResult:
    """Post-run collection into an attached Observability (no-op on None)."""
    if obs is None:
        return result
    warmup_ns = effective_warmup_ns(deployment.features, warmup_ns)
    obs.phase("warmup", 0, warmup_ns)
    obs.phase("measure", warmup_ns, warmup_ns + measure_ns)
    obs.collect_cluster(deployment.cluster, window_ns=measure_ns)
    obs.collect_stats(stats)
    result.phase_breakdown = obs.phase_breakdown(deployment.cluster)
    return result


def result_from_stats(
    stats: OperationStats,
    system: str,
    workload: str,
    threads: int,
    coroutines: int,
    compute_blades: int,
    measure_ns: float,
    sim: Optional["object"] = None,
) -> RunResult:
    return RunResult(
        sim_events=sim.events_executed if sim is not None else 0,
        system=system,
        workload=workload,
        threads=threads,
        coroutines=coroutines,
        compute_blades=compute_blades,
        throughput_mops=stats.ops / measure_ns * 1e3,
        p50_latency_ns=stats.latency_percentile_ns(0.50),
        p99_latency_ns=stats.latency_percentile_ns(0.99),
        avg_retries=stats.avg_retries,
        retry_distribution=stats.retry_distribution(),
        ops=stats.ops,
        measure_ns=measure_ns,
    )


# -- hash table experiments (Figures 5, 7, 8, 9) -------------------------------


def load_hashtable_server(
    deployment: Deployment,
    item_count: int,
    seed: int,
    rebuild: Callable[[], Deployment],
):
    """Size and bulk-load a RACE hash table onto a deployment.

    Sizes the table for ~30% load so splits stay out of the measurement
    window; a freak both-buckets-full collision during loading retries
    with a doubled directory on a fresh deployment (``rebuild``).
    Returns the (possibly rebuilt) deployment and the loaded server.
    """
    slots_needed = int(item_count / 0.30)
    buckets = 512
    segments = 1
    while segments * buckets * 7 < slots_needed:
        segments *= 2
    for _ in range(3):
        try:
            server = HashTableServer(
                deployment.memory_nodes,
                segments=segments,
                buckets_per_segment=buckets,
                heap_bytes_per_blade=max(8 << 20, item_count * 64),
            )
            server.bulk_load(YcsbWorkload.load_items(item_count, seed))
            return deployment, server
        except MemoryError:
            segments *= 2
            deployment = rebuild()
    raise MemoryError("could not load the table even after resizing")


def run_hashtable(
    system: str = "smart-ht",
    workload: Optional[YcsbWorkload] = None,
    threads: int = 8,
    coroutines: int = 8,
    compute_blades: int = 1,
    memory_blades: int = 2,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    throttle_gap_ns: float = 0.0,
    faults=None,
    fault_seed: int = 0,
    obs=None,
    sanitize=False,
    pinned_ratio: Optional[float] = None,
    merge_wrs: Optional[bool] = None,
    adaptive_poll: Optional[bool] = None,
) -> RunResult:
    """One point of the hash-table experiments.

    ``throttle_gap_ns`` inserts idle time between ops (used by the
    Fig-9 throughput/latency curve to sweep offered load).
    ``faults`` arms a fault schedule (loss/dup/delay windows; the RACE
    client has no crash-recovery path, so crash faults belong to the DTX
    runner where FORD's recovery handles them).
    ``pinned_ratio``/``merge_wrs``/``adaptive_poll`` override the
    matching :class:`RnicConfig` knobs (ODP + doorbell batching axes).
    """
    from repro.workloads.ycsb import WRITE_HEAVY

    config = apply_feature_overrides(
        config, pinned_ratio=pinned_ratio, merge_wrs=merge_wrs,
        adaptive_poll=adaptive_poll,
    )
    workload = workload or WRITE_HEAVY
    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )

    deployment, server = load_hashtable_server(
        deployment, item_count, seed,
        rebuild=lambda: build_deployment(
            features, threads, compute_blades, memory_blades, config, seed
        ),
    )
    meta = server.meta()

    injector = install_faults(deployment, faults, fault_seed, warmup_ns, measure_ns)
    if obs is not None:
        obs.attach_deployment(deployment)
    sanitizer = attach_sanitizer(sanitize, deployment.cluster)
    if sanitizer is not None:
        server.declare_sanitizer_regions(sanitizer)
    sim = deployment.cluster.sim
    # One reusable pure-delay object serves every coroutine's gap sleeps
    # (the kernel's cheap Timeout alternative for fire-and-forget waits).
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart: SmartThread, stream):
        client = HashTableClient(smart.handle(), meta)
        for op, key, value in stream:
            if op == READ:
                yield from client.search(key)
            elif op == UPDATE:
                yield from client.update(key, value)
            elif op == INSERT:
                yield from client.insert(key, value)
            if gap is not None:
                yield gap

    stream_seed = random.Random(seed)
    clients = []
    for smart in deployment.smart_threads:
        for _ in range(coroutines):
            stream = workload.stream(item_count, stream_seed.getrandbits(31))
            clients.append(sim.spawn(client_coroutine(smart, stream)))

    stats = measure(deployment, warmup_ns, measure_ns)
    result = result_from_stats(
        stats, system, workload.name, threads, coroutines, compute_blades,
        measure_ns, sim=sim,
    )
    apply_fault_stats(result, stats, deployment, injector)
    result = collect_obs(obs, deployment, stats, result, warmup_ns, measure_ns)
    return collect_sanitizer(sanitizer, result)


# -- distributed transaction experiments (Figures 10, 11) ---------------------


def run_dtx(
    system: str = "smart-dtx",
    benchmark: str = "smallbank",
    threads: int = 8,
    coroutines: int = 8,
    compute_blades: int = 1,
    memory_blades: int = 2,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    throttle_gap_ns: float = 0.0,
    faults=None,
    fault_seed: int = 0,
    obs=None,
    sanitize=False,
    pinned_ratio: Optional[float] = None,
    merge_wrs: Optional[bool] = None,
    adaptive_poll: Optional[bool] = None,
) -> RunResult:
    """One point of the FORD / SMART-DTX experiments (throughput in
    committed M txn/s).

    ``faults`` arms a fault schedule (see :func:`install_faults`); blade
    restarts then run FORD's recovery manager over every client's NVM
    log ring, rolling back in-doubt records before traffic resumes.
    ``pinned_ratio``/``merge_wrs``/``adaptive_poll`` override the
    matching :class:`RnicConfig` knobs (ODP + doorbell batching axes).
    """
    from repro.apps.ford.server import DtxServer
    from repro.apps.ford.txn import TxnClient
    from repro.workloads import smallbank as sb
    from repro.workloads import tatp as tp

    config = apply_feature_overrides(
        config, pinned_ratio=pinned_ratio, merge_wrs=merge_wrs,
        adaptive_poll=adaptive_poll,
    )
    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    server = DtxServer(deployment.memory_nodes, replicas=min(2, memory_blades))
    if benchmark == "smallbank":
        tables = sb.setup(server, accounts=item_count)
    elif benchmark == "tatp":
        tables = tp.setup(server, subscribers=item_count)
    else:
        raise ValueError(f"benchmark must be smallbank or tatp, got {benchmark!r}")

    injector = install_faults(deployment, faults, fault_seed, warmup_ns, measure_ns)
    recovery = None
    log_rings: List = []
    if injector is not None:
        from repro.apps.ford.recovery import RecoveryManager

        recovery = RecoveryManager(server)
        injector.wire_ford_recovery(recovery, log_rings)

    if obs is not None:
        obs.attach_deployment(deployment)
    sanitizer = attach_sanitizer(sanitize, deployment.cluster)
    if sanitizer is not None:
        server.declare_sanitizer_regions(sanitizer)
    sim = deployment.cluster.sim
    stream_seed = random.Random(seed)
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart: SmartThread, seed_value: int):
        ring = server.alloc_log_ring()
        log_rings.append(ring)
        client = TxnClient(smart.handle(), ring)
        if benchmark == "smallbank":
            stream = sb.transaction_stream(item_count, seed_value)
            while True:
                profile, accounts, amount = next(stream)
                yield from client.run(
                    lambda txn, p=profile, a=accounts, m=amount: sb.run_profile(
                        txn, tables, p, a, m
                    )
                )
                if gap is not None:
                    yield gap
        else:
            stream = tp.transaction_stream(item_count, seed_value)
            while True:
                profile, sub, aux = next(stream)
                yield from client.run(
                    lambda txn, p=profile, s=sub, x=aux: tp.run_profile(
                        txn, tables, p, s, x
                    )
                )
                if gap is not None:
                    yield gap

    clients = []
    for smart in deployment.smart_threads:
        for _ in range(coroutines):
            clients.append(
                sim.spawn(client_coroutine(smart, stream_seed.getrandbits(31)))
            )

    stats = measure(deployment, warmup_ns, measure_ns)
    result = result_from_stats(
        stats, system, benchmark, threads, coroutines, compute_blades,
        measure_ns, sim=sim,
    )
    apply_fault_stats(result, stats, deployment, injector, recovery)
    result = collect_obs(obs, deployment, stats, result, warmup_ns, measure_ns)
    return collect_sanitizer(sanitizer, result)


# -- B+Tree experiments (Figure 12) --------------------------------------------


def run_btree(
    system: str = "smart-bt",
    workload: Optional[YcsbWorkload] = None,
    threads: int = 8,
    coroutines: int = 8,
    servers: int = 1,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    speculative: Optional[bool] = None,
    client_cpu_ns: float = 2000.0,
    throttle_gap_ns: float = 0.0,
    hopl: bool = True,
    obs=None,
    sanitize=False,
    pinned_ratio: Optional[float] = None,
    merge_wrs: Optional[bool] = None,
    adaptive_poll: Optional[bool] = None,
) -> RunResult:
    """One point of the Sherman / SMART-BT experiments.

    Matching the paper's setup, every server is both a memory blade and a
    compute blade (``servers`` scales both out together).  Systems:
    ``sherman`` (Sherman+), ``sherman-sl`` (Sherman+ w/ speculative
    lookup) and ``smart-bt``.  ``hopl=False`` degrades node locks to naive
    remote CAS spinlocks (the §3.3 behaviour HOPL avoids) — used by the
    HOPL ablation bench.
    """
    from repro.apps.sherman.client import BTreeClient, LocalLockTable, SpeculativeCache
    from repro.apps.sherman.server import BTreeServer
    from repro.workloads.ycsb import WRITE_HEAVY

    config = apply_feature_overrides(
        config, pinned_ratio=pinned_ratio, merge_wrs=merge_wrs,
        adaptive_poll=adaptive_poll,
    )
    workload = workload or WRITE_HEAVY
    if features is None:
        base = {"sherman": "sherman", "sherman-sl": "sherman", "smart-bt": "smart-bt"}
        features = SYSTEM_FEATURES[base[system]]()
    if speculative is None:
        speculative = system in ("sherman-sl", "smart-bt")
    features = bench_features(features)

    cluster = Cluster(config)
    nodes = cluster.add_nodes(servers)
    server = BTreeServer(nodes, heap_bytes_per_blade=max(16 << 20, item_count * 64))
    rng = random.Random(seed)
    server.bulk_load([(k, rng.getrandbits(32)) for k in range(item_count)])
    meta = server.meta()
    sanitizer = attach_sanitizer(sanitize, cluster)
    if sanitizer is not None:
        server.declare_sanitizer_regions(sanitizer)

    smart_threads: List[SmartThread] = []
    clients_per_node = []
    for blade_index, node in enumerate(nodes):
        node.add_threads(threads)
        SmartContext(node, nodes, features)
        index_cache: Dict = {}
        locks = LocalLockTable(cluster.sim, use_local_queues=hopl)
        spec = SpeculativeCache() if speculative else None
        node_threads = []
        for thread in node.threads:
            smart = SmartThread(thread, features, seed=seed + blade_index * 1000)
            smart_threads.append(smart)
            node_threads.append((smart, index_cache, locks, spec))
        clients_per_node.append(node_threads)

    sim = cluster.sim
    stream_seed = random.Random(seed)
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart, index_cache, locks, spec, stream):
        client = BTreeClient(
            smart.handle(), meta, index_cache, locks, spec_cache=spec,
            client_cpu_ns=client_cpu_ns,
        )
        for op, key, value in stream:
            if op == READ:
                yield from client.lookup(key)
            elif op == UPDATE:
                yield from client.update(key, value)
            elif op == INSERT:
                yield from client.insert(key, value)
            if gap is not None:
                yield gap

    clients = []
    for node_threads in clients_per_node:
        for smart, index_cache, locks, spec in node_threads:
            for _ in range(coroutines):
                stream = workload.stream(item_count, stream_seed.getrandbits(31))
                clients.append(
                    sim.spawn(client_coroutine(smart, index_cache, locks, spec, stream))
                )

    deployment = Deployment(cluster, nodes, nodes, smart_threads, features)
    if obs is not None:
        obs.attach_deployment(deployment)
    stats = measure(deployment, warmup_ns, measure_ns)
    result = result_from_stats(
        stats, system, workload.name, threads, coroutines, servers,
        measure_ns, sim=sim,
    )
    result = collect_obs(obs, deployment, stats, result, warmup_ns, measure_ns)
    return collect_sanitizer(sanitizer, result)
