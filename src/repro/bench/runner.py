"""Application experiment runner.

Builds a cluster, deploys an application (hash table / B+Tree / DTX),
spawns client threads x coroutines, and measures throughput/latency over
a warm window — the common skeleton behind Figures 5 and 7-12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.race.client import HashTableClient
from repro.apps.race.server import HashTableServer
from repro.cluster import Cluster, Node
from repro.core import OperationStats, SmartContext, SmartFeatures, SmartThread
from repro.core.features import baseline, full
from repro.rnic.config import RnicConfig
from repro.workloads.ycsb import INSERT, READ, UPDATE, YcsbWorkload

#: Scaled-down adaptive-throttling epoch so the C_max search converges
#: within millisecond-scale simulations (the paper's 8 ms Δ assumes
#: multi-second runs; ratios are preserved).
BENCH_DELTA_NS = 0.3e6

#: Scaled-down γ sampling window (paper: 1 ms) for the same reason: the
#: t_max/c_max controller needs tens of windows to converge.
BENCH_RETRY_WINDOW_NS = 0.05e6


def bench_features(features: SmartFeatures) -> SmartFeatures:
    """Apply the bench-scale controller periods to a feature set."""
    if features.dynamic_backoff_limit or features.coroutine_throttling:
        features = features.with_overrides(retry_window_ns=BENCH_RETRY_WINDOW_NS)
    if features.work_req_throttling and features.adaptive_credit:
        features = features.with_overrides(update_delta_ns=BENCH_DELTA_NS)
    return features


SYSTEM_FEATURES: Dict[str, Callable[[], SmartFeatures]] = {
    "race": baseline,
    "smart-ht": full,
    "ford": baseline,
    "smart-dtx": full,
    "sherman": baseline,
    "smart-bt": full,
}


@dataclass
class RunResult:
    """Aggregated outcome of one experiment point."""

    system: str
    workload: str
    threads: int
    coroutines: int
    compute_blades: int
    throughput_mops: float
    p50_latency_ns: Optional[float]
    p99_latency_ns: Optional[float]
    avg_retries: float
    retry_distribution: Dict[int, float]
    ops: int
    measure_ns: float

    @property
    def total_threads(self) -> int:
        return self.threads * self.compute_blades


@dataclass
class Deployment:
    """A wired cluster ready to run client coroutines."""

    cluster: Cluster
    compute_nodes: List[Node]
    memory_nodes: List[Node]
    smart_threads: List[SmartThread]
    features: SmartFeatures


def build_deployment(
    features: SmartFeatures,
    threads: int,
    compute_blades: int = 1,
    memory_blades: int = 2,
    config: Optional[RnicConfig] = None,
    seed: int = 0,
) -> Deployment:
    """Create the cluster and per-thread SMART state for an experiment."""
    features = bench_features(features)
    cluster = Cluster(config)
    compute_nodes = cluster.add_nodes(compute_blades)
    memory_nodes = cluster.add_nodes(memory_blades)
    smart_threads: List[SmartThread] = []
    for blade_index, node in enumerate(compute_nodes):
        node.add_threads(threads)
        SmartContext(node, memory_nodes, features)
        for thread in node.threads:
            smart_threads.append(
                SmartThread(thread, features, seed=seed + blade_index * 1000)
            )
    return Deployment(cluster, compute_nodes, memory_nodes, smart_threads, features)


def measure(
    deployment: Deployment,
    warmup_ns: float,
    measure_ns: float,
) -> OperationStats:
    """Run warmup, reset stats, run the measured window, merge stats."""
    features = deployment.features
    if features.work_req_throttling and features.adaptive_credit:
        update_phase = len(features.cmax_candidates) * features.update_delta_ns
        warmup_ns = max(warmup_ns, update_phase + 0.5e6)
    sim = deployment.cluster.sim
    sim.run(until=warmup_ns)
    for smart in deployment.smart_threads:
        smart.stats.reset()
    sim.run(until=warmup_ns + measure_ns)
    return OperationStats.merge([s.stats for s in deployment.smart_threads])


def result_from_stats(
    stats: OperationStats,
    system: str,
    workload: str,
    threads: int,
    coroutines: int,
    compute_blades: int,
    measure_ns: float,
) -> RunResult:
    return RunResult(
        system=system,
        workload=workload,
        threads=threads,
        coroutines=coroutines,
        compute_blades=compute_blades,
        throughput_mops=stats.ops / measure_ns * 1e3,
        p50_latency_ns=stats.latency_percentile_ns(0.50),
        p99_latency_ns=stats.latency_percentile_ns(0.99),
        avg_retries=stats.avg_retries,
        retry_distribution=stats.retry_distribution(),
        ops=stats.ops,
        measure_ns=measure_ns,
    )


# -- hash table experiments (Figures 5, 7, 8, 9) -------------------------------


def run_hashtable(
    system: str = "smart-ht",
    workload: Optional[YcsbWorkload] = None,
    threads: int = 8,
    coroutines: int = 8,
    compute_blades: int = 1,
    memory_blades: int = 2,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    throttle_gap_ns: float = 0.0,
) -> RunResult:
    """One point of the hash-table experiments.

    ``throttle_gap_ns`` inserts idle time between ops (used by the
    Fig-9 throughput/latency curve to sweep offered load).
    """
    from repro.workloads.ycsb import WRITE_HEAVY

    workload = workload or WRITE_HEAVY
    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )

    # Size the table for ~30% load so splits stay out of the window; a
    # freak both-buckets-full collision during loading retries with a
    # doubled directory.
    slots_needed = int(item_count / 0.30)
    buckets = 512
    segments = 1
    while segments * buckets * 7 < slots_needed:
        segments *= 2
    server = None
    for _ in range(3):
        try:
            server = HashTableServer(
                deployment.memory_nodes,
                segments=segments,
                buckets_per_segment=buckets,
                heap_bytes_per_blade=max(8 << 20, item_count * 64),
            )
            server.bulk_load(YcsbWorkload.load_items(item_count, seed))
            break
        except MemoryError:
            segments *= 2
            deployment = build_deployment(
                features, threads, compute_blades, memory_blades, config, seed
            )
    else:
        raise MemoryError("could not load the table even after resizing")
    meta = server.meta()

    sim = deployment.cluster.sim
    # One reusable pure-delay object serves every coroutine's gap sleeps
    # (the kernel's cheap Timeout alternative for fire-and-forget waits).
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart: SmartThread, stream):
        client = HashTableClient(smart.handle(), meta)
        for op, key, value in stream:
            if op == READ:
                yield from client.search(key)
            elif op == UPDATE:
                yield from client.update(key, value)
            elif op == INSERT:
                yield from client.insert(key, value)
            if gap is not None:
                yield gap

    stream_seed = random.Random(seed)
    for smart in deployment.smart_threads:
        for _ in range(coroutines):
            stream = workload.stream(item_count, stream_seed.getrandbits(31))
            sim.spawn(client_coroutine(smart, stream))

    stats = measure(deployment, warmup_ns, measure_ns)
    return result_from_stats(
        stats, system, workload.name, threads, coroutines, compute_blades, measure_ns
    )


# -- distributed transaction experiments (Figures 10, 11) ---------------------


def run_dtx(
    system: str = "smart-dtx",
    benchmark: str = "smallbank",
    threads: int = 8,
    coroutines: int = 8,
    compute_blades: int = 1,
    memory_blades: int = 2,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    throttle_gap_ns: float = 0.0,
) -> RunResult:
    """One point of the FORD / SMART-DTX experiments (throughput in
    committed M txn/s)."""
    from repro.apps.ford.server import DtxServer
    from repro.apps.ford.txn import TxnClient
    from repro.workloads import smallbank as sb
    from repro.workloads import tatp as tp

    if features is None:
        features = SYSTEM_FEATURES[system]()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    server = DtxServer(deployment.memory_nodes, replicas=min(2, memory_blades))
    if benchmark == "smallbank":
        tables = sb.setup(server, accounts=item_count)
    elif benchmark == "tatp":
        tables = tp.setup(server, subscribers=item_count)
    else:
        raise ValueError(f"benchmark must be smallbank or tatp, got {benchmark!r}")

    sim = deployment.cluster.sim
    stream_seed = random.Random(seed)
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart: SmartThread, seed_value: int):
        client = TxnClient(smart.handle(), server.alloc_log_ring())
        if benchmark == "smallbank":
            stream = sb.transaction_stream(item_count, seed_value)
            while True:
                profile, accounts, amount = next(stream)
                yield from client.run(
                    lambda txn, p=profile, a=accounts, m=amount: sb.run_profile(
                        txn, tables, p, a, m
                    )
                )
                if gap is not None:
                    yield gap
        else:
            stream = tp.transaction_stream(item_count, seed_value)
            while True:
                profile, sub, aux = next(stream)
                yield from client.run(
                    lambda txn, p=profile, s=sub, x=aux: tp.run_profile(
                        txn, tables, p, s, x
                    )
                )
                if gap is not None:
                    yield gap

    for smart in deployment.smart_threads:
        for _ in range(coroutines):
            sim.spawn(client_coroutine(smart, stream_seed.getrandbits(31)))

    stats = measure(deployment, warmup_ns, measure_ns)
    return result_from_stats(
        stats, system, benchmark, threads, coroutines, compute_blades, measure_ns
    )


# -- B+Tree experiments (Figure 12) --------------------------------------------


def run_btree(
    system: str = "smart-bt",
    workload: Optional[YcsbWorkload] = None,
    threads: int = 8,
    coroutines: int = 8,
    servers: int = 1,
    item_count: int = 100_000,
    features: Optional[SmartFeatures] = None,
    config: Optional[RnicConfig] = None,
    warmup_ns: float = 1.0e6,
    measure_ns: float = 2.0e6,
    seed: int = 0,
    speculative: Optional[bool] = None,
    client_cpu_ns: float = 2000.0,
    throttle_gap_ns: float = 0.0,
    hopl: bool = True,
) -> RunResult:
    """One point of the Sherman / SMART-BT experiments.

    Matching the paper's setup, every server is both a memory blade and a
    compute blade (``servers`` scales both out together).  Systems:
    ``sherman`` (Sherman+), ``sherman-sl`` (Sherman+ w/ speculative
    lookup) and ``smart-bt``.  ``hopl=False`` degrades node locks to naive
    remote CAS spinlocks (the §3.3 behaviour HOPL avoids) — used by the
    HOPL ablation bench.
    """
    from repro.apps.sherman.client import BTreeClient, LocalLockTable, SpeculativeCache
    from repro.apps.sherman.server import BTreeServer
    from repro.workloads.ycsb import WRITE_HEAVY

    workload = workload or WRITE_HEAVY
    if features is None:
        base = {"sherman": "sherman", "sherman-sl": "sherman", "smart-bt": "smart-bt"}
        features = SYSTEM_FEATURES[base[system]]()
    if speculative is None:
        speculative = system in ("sherman-sl", "smart-bt")
    features = bench_features(features)

    cluster = Cluster(config)
    nodes = cluster.add_nodes(servers)
    server = BTreeServer(nodes, heap_bytes_per_blade=max(16 << 20, item_count * 64))
    rng = random.Random(seed)
    server.bulk_load([(k, rng.getrandbits(32)) for k in range(item_count)])
    meta = server.meta()

    smart_threads: List[SmartThread] = []
    clients_per_node = []
    for blade_index, node in enumerate(nodes):
        node.add_threads(threads)
        SmartContext(node, nodes, features)
        index_cache: Dict = {}
        locks = LocalLockTable(cluster.sim, use_local_queues=hopl)
        spec = SpeculativeCache() if speculative else None
        node_threads = []
        for thread in node.threads:
            smart = SmartThread(thread, features, seed=seed + blade_index * 1000)
            smart_threads.append(smart)
            node_threads.append((smart, index_cache, locks, spec))
        clients_per_node.append(node_threads)

    sim = cluster.sim
    stream_seed = random.Random(seed)
    gap = sim.delay(throttle_gap_ns) if throttle_gap_ns > 0 else None

    def client_coroutine(smart, index_cache, locks, spec, stream):
        client = BTreeClient(
            smart.handle(), meta, index_cache, locks, spec_cache=spec,
            client_cpu_ns=client_cpu_ns,
        )
        for op, key, value in stream:
            if op == READ:
                yield from client.lookup(key)
            elif op == UPDATE:
                yield from client.update(key, value)
            elif op == INSERT:
                yield from client.insert(key, value)
            if gap is not None:
                yield gap

    for node_threads in clients_per_node:
        for smart, index_cache, locks, spec in node_threads:
            for _ in range(coroutines):
                stream = workload.stream(item_count, stream_seed.getrandbits(31))
                sim.spawn(client_coroutine(smart, index_cache, locks, spec, stream))

    deployment = Deployment(cluster, nodes, nodes, smart_threads, features)
    stats = measure(deployment, warmup_ns, measure_ns)
    return result_from_stats(
        stats, system, workload.name, threads, coroutines, servers, measure_ns
    )
