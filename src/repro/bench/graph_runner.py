"""Graph experiment runner: one BFS/PageRank job, run to completion.

Unlike the YCSB-style runners (open-ended streams measured over a
window), a graph traversal is a finite job: the runner spawns the
driver, advances the simulation in fixed slices until it finishes, and
reports job-level metrics — elapsed time, per-edge throughput, and the
wasted-IOPS ledger the offload experiment headlines (failed/retried
CASes vs. active messages).

Result checksums (levels, ranks, visit counts) are the differential
harness's currency: all three execution modes must produce identical
values on a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.graph.client import GraphClient, GraphStats, MODES
from repro.apps.graph.server import GraphServer, UNVISITED
from repro.bench.runner import (
    attach_sanitizer,
    build_deployment,
    collect_sanitizer,
    install_faults,
)
from repro.core.features import baseline
from repro.rnic.config import RnicConfig, apply_feature_overrides
from repro.workloads.graph import GraphSpec, checksum_u64s, edge_count

#: slice length the runner advances the simulation by while polling the
#: driver; a pure scheduling horizon, invisible to simulated behaviour
RUN_SLICE_NS = 0.5e6


@dataclass
class GraphRunResult:
    """Outcome of one graph experiment point."""

    mode: str
    algo: str
    vertices: int
    degree: int
    skew: float
    chunk: int
    threads: int
    coroutines: int
    memory_blades: int
    elapsed_ns: float
    edges: int
    #: graph edges traversed per microsecond of simulated time
    edges_per_us: float
    visited: int
    levels_checksum: int
    ranks_checksum: int
    #: client-side wasted-IOPS ledger
    wasted_cas: int
    cas_retries: int
    am_messages: int
    #: blade-side offload counters (summed over memory blades)
    am_handled: int
    am_rejected: int
    am_aborted: int
    handler_busy_ns: float
    #: remote ops that made no progress: lost/retried CAS + the device
    #: ledger (retransmissions, error completions, flushed WRs)
    wasted_iops: int
    fault_aborts: int = 0
    crashes: int = 0
    sim_events: int = 0
    sanitizer: Optional[Dict] = None
    by_depth: Optional[Dict[int, int]] = None


def run_graph(
    mode: str = "onesided",
    algo: str = "bfs",
    vertices: int = 192,
    degree: int = 6,
    skew: float = 0.0,
    threads: int = 2,
    coroutines: int = 2,
    compute_blades: int = 1,
    memory_blades: int = 2,
    chunk: int = 32,
    rounds: int = 2,
    source: int = 0,
    features=None,
    config: Optional[RnicConfig] = None,
    seed: int = 0,
    faults=None,
    fault_seed: int = 0,
    fault_window_ns: float = 1.0e6,
    obs=None,
    sanitize=False,
    offload_slowdown: Optional[float] = None,
    offload_dispatch_ns: Optional[float] = None,
    offload_queue_depth: Optional[int] = None,
    deadline_ns: float = 5.0e9,
) -> GraphRunResult:
    """One point of the near-memory offload experiment.

    ``mode`` picks the execution strategy (see
    :data:`repro.apps.graph.client.MODES`); ``algo`` is ``"bfs"`` or
    ``"pagerank"``.  ``chunk`` is the offload fan-out (frontier slots
    per active message).  The ``offload_*`` arguments override the
    matching :class:`RnicConfig` knobs.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if algo not in ("bfs", "pagerank"):
        raise ValueError(f"algo must be bfs or pagerank, got {algo!r}")
    config = apply_feature_overrides(
        config,
        offload_slowdown=offload_slowdown,
        offload_dispatch_ns=offload_dispatch_ns,
        offload_queue_depth=offload_queue_depth,
    )
    if features is None:
        features = baseline()
    deployment = build_deployment(
        features, threads, compute_blades, memory_blades, config, seed
    )
    spec = GraphSpec(
        name=f"graph-v{vertices}-d{degree}-s{seed}",
        vertex_count=vertices,
        degree=degree,
        kind="rmat" if skew > 0.0 else "uniform",
        skew=skew,
        seed=seed,
    )
    server = GraphServer(deployment.memory_nodes, spec)
    meta = server.meta()

    injector = install_faults(
        deployment, faults, fault_seed, 0.0, fault_window_ns
    )
    if obs is not None:
        obs.attach_deployment(deployment)
    sanitizer = attach_sanitizer(sanitize, deployment.cluster)
    if sanitizer is not None:
        server.declare_sanitizer_regions(sanitizer)

    sim = deployment.cluster.sim
    handles = [
        smart.handle()
        for smart in deployment.smart_threads
        for _ in range(coroutines)
    ]
    stats = GraphStats()
    client = GraphClient(meta, handles, mode, chunk=chunk, stats=stats)
    if algo == "bfs":
        driver = sim.spawn(client.bfs(source))
    else:
        driver = sim.spawn(client.pagerank(rounds))

    while not driver.triggered:
        before = sim.events_executed
        sim.run(until=sim.now + RUN_SLICE_NS)
        if driver.triggered:
            break
        if sim.events_executed == before:
            raise RuntimeError(
                f"graph run deadlocked at t={sim.now:.0f} ns "
                f"(mode={mode}, algo={algo})"
            )
        if sim.now > deadline_ns:
            raise RuntimeError(
                f"graph run exceeded the {deadline_ns:.0f} ns deadline"
            )
    if driver.error is not None:
        raise driver.error
    elapsed = float(driver.value)
    for smart in deployment.smart_threads:
        smart.stop()

    levels = server.read_levels()
    ranks = server.read_ranks()
    visited = sum(1 for level in levels if level != UNVISITED)
    edges = edge_count(server.adjacency)

    am_handled = am_rejected = am_aborted = 0
    handler_busy = 0.0
    wasted_device = 0
    fault_aborts = 0
    for node in deployment.cluster.nodes:
        counters = node.device.counters
        am_handled += counters.am_handled
        am_rejected += counters.am_rejected
        am_aborted += counters.am_aborted
        handler_busy += counters.handler_busy_ns
        wasted_device += int(counters.wasted_wrs)
    for smart in deployment.smart_threads:
        fault_aborts += smart.stats.fault_aborts

    result = GraphRunResult(
        mode=mode,
        algo=algo,
        vertices=vertices,
        degree=degree,
        skew=skew,
        chunk=chunk,
        threads=threads,
        coroutines=coroutines,
        memory_blades=memory_blades,
        elapsed_ns=elapsed,
        edges=edges,
        edges_per_us=(edges / elapsed * 1e3) if elapsed > 0 else 0.0,
        visited=visited,
        levels_checksum=checksum_u64s(levels),
        ranks_checksum=checksum_u64s(ranks),
        wasted_cas=stats.wasted_cas,
        cas_retries=stats.cas_retries,
        am_messages=stats.am_messages,
        am_handled=am_handled,
        am_rejected=am_rejected,
        am_aborted=am_aborted,
        handler_busy_ns=handler_busy,
        wasted_iops=stats.wasted_cas + wasted_device,
        fault_aborts=fault_aborts,
        crashes=injector.crashes_fired if injector is not None else 0,
        sim_events=sim.events_executed,
        by_depth=dict(stats.by_depth) if algo == "bfs" else None,
    )
    if obs is not None:
        obs.collect_cluster(deployment.cluster, window_ns=elapsed)
    return collect_sanitizer(sanitizer, result)
