"""The §3.1 bench tool (``test_rdma`` in the artifact).

Each thread repeatedly posts ``depth`` READ/WRITE work requests to
uniformly random addresses in a 1 GB remote region, rings the doorbell
once, and waits for all acknowledgements — exactly the paper's loop.
Throughput is measured from device counters over a warm window; DRAM
traffic per WR (the Fig-4b metric) comes from the same counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster import Cluster, ComputeThread
from repro.core import SmartContext, SmartFeatures, SmartThread
from repro.core.features import baseline as baseline_features
from repro.rnic import verbs
from repro.rnic.config import RnicConfig, apply_feature_overrides
from repro.rnic.policies import (
    ConnectionPolicy,
    MultiplexedQpPolicy,
    PerThreadContextPolicy,
    PerThreadQpPolicy,
    SharedQpPolicy,
)
from repro.rnic.qp import read_wr, write_wr
from repro.sim.rng import percentile

#: Remote region the paper's bench tool targets.
DEFAULT_REGION_BYTES = 1 << 30

POLICIES = (
    "shared-qp",
    "multiplexed-qp",
    "per-thread-qp",
    "per-thread-context",
    "per-thread-db",
    "smart",
)


@dataclass
class MicrobenchResult:
    """One measurement point of the bench tool."""

    policy: str
    threads: int
    depth: int
    payload: int
    op: str
    throughput_mops: float
    dram_bytes_per_wr: float
    batch_latency_p50_ns: Optional[float] = None
    batch_latency_p99_ns: Optional[float] = None
    doorbells_used: int = 0
    measured_wrs: int = 0
    # Fault-injection observability (zero for fault-free runs).
    retransmissions: int = 0
    messages_dropped: int = 0
    wasted_wrs: int = 0
    # ODP / request-merging observability (zero when both are off).
    odp_faults: int = 0
    odp_invalidations: int = 0
    merged_wrs: int = 0
    #: batch-weighted per-segment means (only when an Observability is
    #: attached; None keeps fault-free results byte-identical)
    phase_breakdown: Optional[dict] = None
    #: RDMASan report (only when the run was sanitized; None otherwise)
    sanitizer: Optional[dict] = None

    def __str__(self) -> str:
        return (
            f"rdma-{self.op}: policy={self.policy}, #threads={self.threads}, "
            f"#depth={self.depth}, #block_size={self.payload}, "
            f"IOPS={self.throughput_mops:.1f} M/s"
        )


def _policy_instance(policy: str, multiplex_q: int) -> Optional[ConnectionPolicy]:
    if policy == "shared-qp":
        return SharedQpPolicy()
    if policy == "multiplexed-qp":
        return MultiplexedQpPolicy(multiplex_q)
    if policy == "per-thread-qp":
        return PerThreadQpPolicy()
    if policy == "per-thread-context":
        return PerThreadContextPolicy()
    if policy in ("per-thread-db", "smart"):
        return None  # handled via SmartContext
    raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")


def _make_wrs(op: str, payload: int, depth: int, region_base: int, region_size: int,
              rng: random.Random, blade, access: str = "random") -> List:
    stride = max(payload, 8)
    slots = region_size // stride
    if access == "seq":
        # One random window start, then `depth` contiguous slots — the
        # access pattern RDMAbox's adjacent-WR merging is built for.
        base_slot = rng.randrange(max(1, slots - depth + 1))
        offsets = [region_base + (base_slot + i) * stride for i in range(depth)]
    elif access == "random":
        offsets = [region_base + rng.randrange(slots) * stride
                   for _ in range(depth)]
    else:
        raise ValueError(f"access must be 'random' or 'seq', got {access!r}")
    wrs = []
    for offset in offsets:
        addr = blade.global_addr(offset)
        if op == "read":
            wrs.append(read_wr(addr, payload))
        elif op == "write":
            wrs.append(write_wr(addr, b"\x00" * payload))
        else:
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    return wrs


def run_microbench(
    policy: str = "per-thread-db",
    threads: int = 96,
    depth: int = 8,
    payload: int = 8,
    op: str = "read",
    memory_nodes: int = 1,
    warmup_ns: float = 0.4e6,
    measure_ns: float = 1.6e6,
    config: Optional[RnicConfig] = None,
    features: Optional[SmartFeatures] = None,
    multiplex_q: int = 8,
    seed: int = 1,
    latency_samples: bool = False,
    faults=None,
    fault_seed: int = 0,
    obs=None,
    sanitize=False,
    access: str = "random",
    pinned_ratio: Optional[float] = None,
    merge_wrs: Optional[bool] = None,
    adaptive_poll: Optional[bool] = None,
    region_pinned: Optional[bool] = None,
) -> MicrobenchResult:
    """Run the bench tool at one (policy, threads, depth) point.

    ``faults`` arms a fault schedule (spec string, ``"seeded"`` or a
    :class:`repro.faults.FaultSchedule`); loss shows up as transparent
    RC retransmissions, crashes as flushed/error completions until the
    blade restarts and the injector resets the errored QPs.

    ``obs`` attaches a :class:`repro.obs.Observability` before the run
    and collects metrics / the phase breakdown afterwards.  Attachment
    is passive: simulated numbers are bit-identical with or without it.

    ``access`` picks the offset pattern: ``"random"`` (the paper's
    uniform draw) or ``"seq"`` (contiguous batches — what RDMAbox-style
    merging fuses).  ``pinned_ratio``/``merge_wrs``/``adaptive_poll``
    override the matching :class:`RnicConfig` knobs; ``region_pinned``
    registers the bench MR with that pinning (``False`` = fully ODP).
    """
    config = apply_feature_overrides(
        config, pinned_ratio=pinned_ratio, merge_wrs=merge_wrs,
        adaptive_poll=adaptive_poll,
    )
    if policy == "smart" and features is None:
        # Scale the paper's Δ = 8 ms epoch down so the C_max search
        # converges inside a short simulation (ratios preserved).
        features = SmartFeatures().with_overrides(
            update_delta_ns=0.3e6,
            backoff=False,
            dynamic_backoff_limit=False,
            coroutine_throttling=False,
        )
    if features is not None and features.work_req_throttling and features.adaptive_credit:
        # Measure in the stable phase, after the first UPDATE pass.
        update_phase = len(features.cmax_candidates) * features.update_delta_ns
        warmup_ns = max(warmup_ns, update_phase + 0.5e6)

    cluster = Cluster(config)
    compute = cluster.add_node()
    compute.add_threads(threads)
    remotes = cluster.add_nodes(memory_nodes)
    regions = [r.storage.alloc_region("bench", min(DEFAULT_REGION_BYTES,
               r.storage.capacity - 4096), pinned=region_pinned)
               for r in remotes]

    if faults is not None:
        from repro.faults import FaultInjector, FaultSchedule

        schedule = FaultSchedule.from_spec(
            faults, seed=fault_seed, window_start_ns=warmup_ns,
            window_ns=measure_ns, crash_nodes=[r.node_id for r in remotes],
        )
        FaultInjector(cluster, schedule).install()

    smart_threads: List[SmartThread] = []
    doorbells_used = 0
    conn = _policy_instance(policy, multiplex_q)
    if conn is not None:
        conn.connect(compute, remotes)
    else:
        if policy == "per-thread-db":
            # Thread-aware allocation only; no throttling or backoff.
            features = baseline_features().with_overrides(thread_aware_alloc=True)
        elif features is None:
            features = SmartFeatures()
        context = SmartContext(compute, remotes, features)
        doorbells_used = context.doorbells_in_use()
        if policy == "smart":
            smart_threads = [
                SmartThread(t, features, seed=seed + i)
                for i, t in enumerate(compute.threads)
            ]

    if obs is not None:
        obs.attach_cluster(cluster)
        if smart_threads:
            obs.attach_smart_threads(smart_threads)
    from repro.bench.runner import attach_sanitizer

    sanitizer = attach_sanitizer(sanitize, cluster)

    latencies: List[float] = []
    sim = cluster.sim

    def raw_worker(thread: ComputeThread, rng: random.Random):
        remote = remotes[rng.randrange(len(remotes))]
        region = regions[remote.node_id - 1]
        qp = thread.qp_for(remote.node_id)
        while True:
            wrs = _make_wrs(op, payload, depth, region.base, region.size, rng,
                            remote.storage, access)
            start = sim.now
            yield from verbs.post_and_wait(thread, qp, wrs)
            if latency_samples and sim.now >= warmup_ns:
                latencies.append(sim.now - start)

    def smart_worker(smart: SmartThread, rng: random.Random):
        handle = smart.handle()
        remote = remotes[rng.randrange(len(remotes))]
        region = regions[remote.node_id - 1]
        blade = remote.storage
        while True:
            for wr in _make_wrs(op, payload, depth, region.base, region.size,
                                rng, blade, access):
                handle._buffer.append(wr)
            start = sim.now
            yield from handle.post_send()
            yield from handle.sync()
            if latency_samples and sim.now >= warmup_ns:
                latencies.append(sim.now - start)

    rng = random.Random(seed)
    workers = []
    if smart_threads:
        for smart in smart_threads:
            workers.append(sim.spawn(smart_worker(smart, random.Random(rng.random()))))
    else:
        for thread in compute.threads:
            workers.append(sim.spawn(raw_worker(thread, random.Random(rng.random()))))

    sim.run(until=warmup_ns)
    snapshot = compute.device.counters.snapshot()
    sim.run(until=warmup_ns + measure_ns)
    window = compute.device.counters.delta(snapshot)

    throughput_mops = window.cqe_delivered / measure_ns * 1e3
    result = MicrobenchResult(
        policy=policy,
        threads=threads,
        depth=depth,
        payload=payload,
        op=op,
        throughput_mops=throughput_mops,
        dram_bytes_per_wr=window.dram_bytes_per_wr,
        doorbells_used=doorbells_used,
        measured_wrs=window.cqe_delivered,
        retransmissions=compute.device.counters.retransmissions,
        messages_dropped=cluster.fabric.messages_dropped,
        wasted_wrs=compute.device.counters.wasted_wrs,
        odp_faults=sum(r.device.counters.odp_faults for r in remotes),
        odp_invalidations=sum(
            r.device.counters.odp_invalidations for r in remotes
        ),
        merged_wrs=compute.device.counters.merged_wrs,
    )
    if latencies:
        ordered = sorted(latencies)
        result.batch_latency_p50_ns = percentile(ordered, 0.50)
        result.batch_latency_p99_ns = percentile(ordered, 0.99)
    if obs is not None:
        obs.phase("warmup", 0, warmup_ns)
        obs.phase("measure", warmup_ns, warmup_ns + measure_ns)
        obs.collect_cluster(cluster, window_ns=measure_ns)
        if smart_threads:
            from repro.core.stats import OperationStats

            obs.collect_stats(OperationStats.merge(
                [s.stats for s in smart_threads]
            ))
        result.phase_breakdown = obs.phase_breakdown(cluster)
    if sanitizer is not None:
        sanitizer.finish()
        result.sanitizer = sanitizer.report()
    return result


@dataclass
class DynamicWorkloadResult:
    """Table-1 style measurement under a changing thread count."""

    changing_interval_ns: float
    throttled: bool
    throughput_mops: float


def run_dynamic_microbench(
    changing_interval_ns: float,
    throttled: bool,
    depth: int = 64,
    thread_range: Sequence[int] = (36, 96),
    payload: int = 8,
    total_ns: float = 20e6,
    config: Optional[RnicConfig] = None,
    features: Optional[SmartFeatures] = None,
    seed: int = 1,
) -> DynamicWorkloadResult:
    """The Table-1 experiment: the number of *active* threads jumps
    between ``thread_range`` bounds every ``changing_interval_ns``.

    With throttling enabled, the adaptive C_max search keeps the
    outstanding-WR count near the sweet spot as long as the workload is
    stable for at least one epoch; faster changes leave C_max stale.
    """
    max_threads = max(thread_range)
    if features is None:
        base = SmartFeatures() if throttled else baseline_features().with_overrides(
            thread_aware_alloc=True
        )
        features = base.with_overrides(
            backoff=False, dynamic_backoff_limit=False, coroutine_throttling=False
        )
    cluster = Cluster(config)
    compute = cluster.add_node()
    compute.add_threads(max_threads)
    remotes = cluster.add_nodes(1)
    region = remotes[0].storage.alloc_region(
        "bench", min(DEFAULT_REGION_BYTES, remotes[0].storage.capacity - 4096)
    )
    context = SmartContext(compute, remotes, features)
    smart_threads = [
        SmartThread(t, features, seed=seed + i) for i, t in enumerate(compute.threads)
    ]

    sim = cluster.sim
    active = [min(thread_range)]
    rng = random.Random(seed)

    idle = sim.delay(changing_interval_ns / 8)

    def worker(index: int, smart: SmartThread, wrng: random.Random):
        handle = smart.handle()
        blade = remotes[0].storage
        while True:
            if index >= active[0]:
                yield idle
                continue
            for wr in _make_wrs("read", payload, depth, region.base, region.size,
                                wrng, blade):
                handle._buffer.append(wr)
            yield from handle.post_send()
            yield from handle.sync()

    def controller():
        choices = list(thread_range)
        while True:
            yield sim.timeout(changing_interval_ns)
            active[0] = choices[rng.randrange(len(choices))]

    workers = [
        sim.spawn(worker(i, smart, random.Random(rng.random())))
        for i, smart in enumerate(smart_threads)
    ]
    control_process = sim.spawn(controller())

    warmup = min(2e6, total_ns / 10)
    sim.run(until=warmup)
    snapshot = compute.device.counters.snapshot()
    sim.run(until=total_ns)
    window = compute.device.counters.delta(snapshot)
    throughput = window.cqe_delivered / (total_ns - warmup) * 1e3
    return DynamicWorkloadResult(changing_interval_ns, throttled, throughput)
