"""Discrete-event simulation kernel.

The whole reproduction runs on this kernel: compute-blade threads,
application coroutines, RNIC processing pipelines and memory blades are all
simulated processes exchanging events in virtual nanoseconds.

The kernel is deliberately small and simpy-like: a process is a Python
generator that yields *waitables* (:class:`Timeout`, :class:`Event`,
acquisition tickets from :class:`FifoLock`) and is resumed with the
waitable's value.
"""

from repro.sim.core import Delay, Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import FifoLock, SpinLock, TokenBucket
from repro.sim.rng import ScrambledZipfianGenerator, UniformGenerator, ZipfianGenerator

__all__ = [
    "Delay",
    "Event",
    "FifoLock",
    "Interrupt",
    "Process",
    "ScrambledZipfianGenerator",
    "Simulator",
    "SpinLock",
    "Timeout",
    "TokenBucket",
    "UniformGenerator",
    "ZipfianGenerator",
]
