"""Event loop, processes and primitive waitables.

Time is measured in integer nanoseconds (floats are accepted and rounded).
The loop is deterministic: events scheduled for the same instant run in
scheduling order, so a fixed RNG seed reproduces a run exactly.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (bad yields, double fires, ...)."""


#: Sentinel distinguishing "no value given" from an explicit ``None``.
_NO_VALUE = object()


def _invoke_noarg(callback: Callable[[], None]) -> None:
    """Trampoline for zero-argument ``call_at`` callbacks.

    Reusing this one module-level function keeps ``call_at`` free of
    per-call closure allocations while the heap entry format stays a
    uniform ``(when, seq, callback, value)``.
    """
    callback()


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Base class for things a process may yield.

    A waitable accepts at most many subscribers; when it triggers, each
    subscriber callback is invoked with the waitable's value.
    """

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._callbacks: List[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def _subscribe(self, callback: Callable[[Any], None]) -> None:
        if self._triggered:
            # Deliver on the next tick to preserve run-to-completion
            # semantics of the subscribing process.
            self._sim._schedule_at(self._sim.now, callback, self._value)
        else:
            self._callbacks.append(callback)

    def _trigger(self, value: Any) -> None:
        if self._triggered:
            raise SimulationError("waitable triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim._schedule_at(self._sim.now, callback, value)


class Timeout(Waitable):
    """Triggers ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        super().__init__(sim)
        # Round first so Timeout and Delay agree on which durations are
        # negative: -0.4 rounds to 0 and is accepted by both.
        delay = int(round(delay))
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        sim._schedule_at(sim.now + delay, self._trigger, value)


class Delay:
    """A reusable pure-delay yield: the cheap cousin of :class:`Timeout`.

    Yielding a ``Delay`` resumes the process ``ns`` nanoseconds later with
    value ``None``.  Unlike a :class:`Timeout` it carries no subscriber
    list and costs a single heap event instead of two (trigger + resume),
    and — being stateless — one instance can be yielded any number of
    times, by any number of processes.  This is the fast path for
    throttle-gap style sleeps that fire millions of times per run.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: float):
        ns = int(round(ns))
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = ns

    def __repr__(self) -> str:
        return f"Delay({self.ns})"


class Event(Waitable):
    """A one-shot event fired explicitly via :meth:`fire`."""

    __slots__ = ()

    def fire(self, value: Any = None) -> None:
        self._trigger(value)


class Process(Waitable):
    """A running generator; also waitable (triggers with the return value).

    A process that *raises* (rather than returning) still fires its
    completion event, with the exception instance as the value and kept
    on :attr:`error` — waiters parked on the process wake up instead of
    sleeping forever, and the exception then propagates to the caller of
    :meth:`Simulator.run` as before.
    """

    __slots__ = ("generator", "name", "_alive", "error")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        #: the exception that terminated the process, if any
        self.error: Optional[BaseException] = None
        sim._schedule_at(sim.now, self._resume, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        self._sim._schedule_at(self._sim.now, self._resume_throw, Interrupt(cause))

    def _resume_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process let the interrupt propagate: treat as termination.
            self._finish(None)
            return
        except BaseException as error:
            self.error = error
            self._finish(error)
            raise
        self._wait_on(target)

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as error:
            self.error = error
            self._finish(error)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if type(target) is Delay:
            sim = self._sim
            sim._schedule_at(sim.now + target.ns, self._resume, None)
        elif isinstance(target, Waitable):
            target._subscribe(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )

    def _finish(self, value: Any) -> None:
        self._alive = False
        self._trigger(value)


class _AllOfCollector:
    """Gathers the values of an ``all_of`` join.

    One shared instance replaces the per-waitable closure factory: each
    input gets an index-carrying bound callback, and the event fires with
    the value list itself once the last slot fills (no defensive copy —
    every slot is final by then).
    """

    __slots__ = ("done", "values", "remaining")

    def __init__(self, done: Event, count: int):
        self.done = done
        self.values: List[Any] = [None] * count
        self.remaining = count

    def callback(self, index: int) -> Callable[[Any], None]:
        return partial(self._collect, index)

    def _collect(self, index: int, value: Any) -> None:
        self.values[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            self.done.fire(self.values)


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.spawn(hello())
    >>> sim.run()
    >>> proc.value
    5
    """

    def __init__(self):
        self._heap: List = []
        self._seq = 0
        self.now = 0
        #: total events executed by :meth:`step`/:meth:`run` (drives the
        #: events/sec figure reported by the perf harness)
        self.events_executed = 0
        #: when set to a list (RDMASan's leak checker does), :meth:`spawn`
        #: appends every process to it; ``None`` keeps spawn allocation-free
        self.process_registry: Optional[List[Process]] = None
        #: per-simulation WorkBatch numbering (see repro.rnic.qp).  Scoped
        #: here rather than a process-global so batch ids — and with them
        #: traces and sanitizer reports — replay identically run-to-run.
        self.next_batch_id = 0

    # -- scheduling -------------------------------------------------------

    def _schedule_at(self, when: int, callback: Callable, value: Any) -> None:
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, callback, value))

    def call_at(self, when: float, callback: Callable, value: Any = _NO_VALUE) -> None:
        """Run ``callback()`` — or ``callback(value)`` if ``value`` is
        given — at absolute time ``when``.

        Passing the argument through ``value`` schedules the callback
        directly, without the closure a ``lambda: callback(arg)`` wrapper
        would allocate on every call.
        """
        if value is _NO_VALUE:
            self._schedule_at(int(round(when)), _invoke_noarg, callback)
        else:
            self._schedule_at(int(round(when)), callback, value)

    def call_after(self, delay: float, callback: Callable, value: Any = _NO_VALUE) -> None:
        """Run ``callback()`` (or ``callback(value)``) after ``delay`` ns."""
        self.call_at(self.now + delay, callback, value)

    # -- factories --------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def delay(self, ns: float) -> Delay:
        """A reusable pure delay (see :class:`Delay`)."""
        return Delay(ns)

    def event(self) -> Event:
        return Event(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        process = Process(self, generator, name)
        if self.process_registry is not None:
            self.process_registry.append(process)
        return process

    def all_of(self, waitables: Iterable[Waitable]) -> Event:
        """An event that fires (with a list of values) once all inputs have.

        Inputs that already triggered are fine: their (deferred) delivery
        is counted like any other, so the result preserves input order
        regardless of completion order.
        """
        waitables = list(waitables)
        done = self.event()
        if not waitables:
            done.fire([])
            return done
        collector = _AllOfCollector(done, len(waitables))
        for index, waitable in enumerate(waitables):
            waitable._subscribe(collector.callback(index))
        return done

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Run a single event; return False when the heap is empty."""
        if not self._heap:
            return False
        when, _seq, callback, value = heapq.heappop(self._heap)
        self.now = when
        self.events_executed += 1
        callback(value)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or event budget ends."""
        heap = self._heap
        pop = heapq.heappop
        events = 0
        try:
            if until is None:
                while heap:
                    when, _seq, callback, value = pop(heap)
                    self.now = when
                    events += 1
                    callback(value)
                    if max_events is not None and events >= max_events:
                        return
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = int(round(until))
                        return
                    when, _seq, callback, value = pop(heap)
                    self.now = when
                    events += 1
                    callback(value)
                    if max_events is not None and events >= max_events:
                        return
                if until > self.now:
                    self.now = int(round(until))
        finally:
            self.events_executed += events

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if idle."""
        return self._heap[0][0] if self._heap else None
