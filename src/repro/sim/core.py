"""Event loop, processes and primitive waitables.

Time is measured in integer nanoseconds (floats are accepted and rounded).
The loop is deterministic: events scheduled for the same instant run in
scheduling order, so a fixed RNG seed reproduces a run exactly.

Scheduler internals (see docs/MODEL.md §12 for the full story): pending
events live in per-tick *buckets* — flat ``[what, value, what, value,
...]`` lists — indexed by a timing wheel of ``_WHEEL_SLOTS`` single-tick
slots covering the window ``[base, base + _WHEEL_SLOTS)``.  A small heap
orders the *distinct occupied tick times* of the wheel (one heap push/pop
per tick, not per event), and events beyond the window land in an
overflow calendar (``{when: bucket}`` plus a heap of its distinct times)
whose buckets migrate into wheel slots wholesale when the window
advances.  Executing a tick drains its whole bucket in insertion order,
which preserves the old heap's ``(when, seq)`` total order exactly while
replacing per-event O(log n) heap churn with list appends.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (bad yields, double fires, ...)."""


#: Sentinel distinguishing "no value given" from an explicit ``None``.
_NO_VALUE = object()

#: Wheel geometry: one slot per integer-nanosecond tick, so a slot holds
#: exactly one bucket and same-tick FIFO order is the bucket's list order.
_WHEEL_BITS = 13
_WHEEL_SLOTS = 1 << _WHEEL_BITS
_WHEEL_MASK = _WHEEL_SLOTS - 1


def _invoke_noarg(callback: Callable[[], None]) -> None:
    """Trampoline for zero-argument ``call_at`` callbacks.

    Reusing this one module-level function keeps ``call_at`` free of
    per-call closure allocations while the bucket entry format stays a
    uniform ``(what, value)`` pair.
    """
    callback()


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Base class for things a process may yield.

    A waitable accepts at most many subscribers; when it triggers, each
    subscriber is invoked with the waitable's value.  A subscriber is
    either a plain callable or a :class:`Process` instance — the kernel
    resumes processes directly (the fused fast path) instead of going
    through a bound-method trampoline.
    """

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._callbacks: List[Any] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def _subscribe(self, callback: Any) -> None:
        if self._triggered:
            # Deliver on the next tick to preserve run-to-completion
            # semantics of the subscribing process.
            self._sim._schedule_at(self._sim.now, callback, self._value)
        else:
            self._callbacks.append(callback)

    def _trigger(self, value: Any) -> None:
        if self._triggered:
            raise SimulationError("waitable triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        sim = self._sim
        bucket = sim._active
        if bucket is not None:
            # The active bucket is exactly "deliver at sim.now, after
            # everything already queued" — append without a scheduler call.
            for callback in callbacks:
                bucket.append(callback)
                bucket.append(value)
        else:
            schedule = sim._schedule_at
            now = sim.now
            for callback in callbacks:
                schedule(now, callback, value)


class Timeout(Waitable):
    """Triggers ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Inlined Waitable.__init__ — Timeout creation is on the sleep
        # hot path and the extra super().__init__ frame is measurable.
        self._sim = sim
        self._callbacks = []
        self._triggered = False
        self._value = None
        # Round first so Timeout and Delay agree on which durations are
        # negative: -0.4 rounds to 0 and is accepted by both.
        delay = int(round(delay))
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Schedule the Timeout itself (the drain loop calls _trigger) so
        # no bound method is allocated per timeout.
        sim._schedule_at(sim.now + delay, self, value)


class Delay:
    """A reusable pure-delay yield: the cheap cousin of :class:`Timeout`.

    Yielding a ``Delay`` resumes the process ``ns`` nanoseconds later with
    value ``None``.  Unlike a :class:`Timeout` it carries no subscriber
    list and costs a single bucket entry instead of two (trigger + resume),
    and — being stateless — one instance can be yielded any number of
    times, by any number of processes.  This is the fast path for
    throttle-gap style sleeps that fire millions of times per run: the
    drain loop in :meth:`Simulator.run` reschedules the resume inline,
    without touching the generic scheduling machinery at all.
    """

    __slots__ = ("ns",)

    def __init__(self, ns: float):
        ns = int(round(ns))
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = ns

    def retime(self, ns: float) -> "Delay":
        """Re-arm this instance for a different gap and return it.

        The kernel reads ``ns`` once, at the instant the delay is
        yielded, so a loop with a varying gap (open-loop arrival
        processes) can recycle one instance instead of allocating a
        ``Delay`` per sleep::

            nap = sim.delay(0)
            for gap in gaps:
                yield nap.retime(gap)
        """
        ns = int(round(ns))
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = ns
        return self

    def __repr__(self) -> str:
        return f"Delay({self.ns})"


class Event(Waitable):
    """A one-shot event fired explicitly via :meth:`fire`."""

    __slots__ = ()

    def fire(self, value: Any = None) -> None:
        self._trigger(value)


class Process(Waitable):
    """A running generator; also waitable (triggers with the return value).

    A process that *raises* (rather than returning) still fires its
    completion event, with the exception instance as the value and kept
    on :attr:`error` — waiters parked on the process wake up instead of
    sleeping forever, and the exception then propagates to the caller of
    :meth:`Simulator.run` as before.
    """

    __slots__ = ("generator", "name", "_alive", "error")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        #: the exception that terminated the process, if any
        self.error: Optional[BaseException] = None
        sim._schedule_at(sim.now, self, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        self._sim._schedule_at(self._sim.now, self._resume_throw, Interrupt(cause))

    def _resume_throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process let the interrupt propagate: treat as termination.
            self._finish(None)
            return
        except BaseException as error:
            self.error = error
            self._finish(error)
            raise
        self._wait_on(target)

    def _resume(self, value: Any) -> None:
        # Reference implementation of one process step.  The drain loop
        # in Simulator.run() inlines exactly this sequence (plus the
        # Delay reschedule) — keep the two in lockstep.
        if not self._alive:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as error:
            self.error = error
            self._finish(error)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if type(target) is Delay:
            sim = self._sim
            sim._schedule_at(sim.now + target.ns, self, None)
        elif isinstance(target, Waitable):
            target._subscribe(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )

    def _finish(self, value: Any) -> None:
        self._alive = False
        self._trigger(value)


class _AllOfCollector:
    """Gathers the values of an ``all_of`` join.

    One shared instance replaces the per-waitable closure factory: each
    input gets an index-carrying bound callback, and the event fires with
    the value list itself once the last slot fills (no defensive copy —
    every slot is final by then).
    """

    __slots__ = ("done", "values", "remaining")

    def __init__(self, done: Event, count: int):
        self.done = done
        self.values: List[Any] = [None] * count
        self.remaining = count

    def callback(self, index: int) -> Callable[[Any], None]:
        return partial(self._collect, index)

    def _collect(self, index: int, value: Any) -> None:
        self.values[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            self.done.fire(self.values)


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(5)
    ...     return sim.now
    >>> proc = sim.spawn(hello())
    >>> sim.run()
    >>> proc.value
    5
    """

    def __init__(self):
        #: wheel slot -> bucket (or None); slot index is ``when & mask``
        self._wheel: List[Optional[list]] = [None] * _WHEEL_SLOTS
        #: minheap of the distinct tick times occupying wheel slots
        self._wheel_times: List[int] = []
        #: start of the window the wheel covers (aligned to the wheel size)
        self._base = 0
        #: far-future calendar: {when: bucket} + minheap of its times
        self._overflow: dict = {}
        self._overflow_times: List[int] = []
        #: drained bucket lists recycled here instead of reallocated
        self._free: List[list] = []
        #: bucket currently being drained (events scheduled for ``now``
        #: append here so same-tick cascades stay FIFO) and its cursor
        self._active: Optional[list] = None
        self._active_pos = 0
        self.now = 0
        #: total events executed by :meth:`step`/:meth:`run` (drives the
        #: events/sec figure reported by the perf harness)
        self.events_executed = 0
        #: when set to a list (RDMASan's leak checker does), :meth:`spawn`
        #: appends every process to it; ``None`` keeps spawn allocation-free
        self.process_registry: Optional[List[Process]] = None
        #: per-simulation WorkBatch numbering (see repro.rnic.qp).  Scoped
        #: here rather than a process-global so batch ids — and with them
        #: traces and sanitizer reports — replay identically run-to-run.
        self.next_batch_id = 0

    # -- scheduling -------------------------------------------------------

    def _schedule_at(self, when: int, what: Any, value: Any) -> None:
        """Append ``(what, value)`` to the bucket for tick ``when``.

        ``what`` is either a plain callable or a :class:`Process` (the
        drain loop dispatches on type).  Events for the tick currently
        being drained join the active bucket, which keeps same-instant
        cascades in strict scheduling order.
        """
        now = self.now
        if when <= now:
            if when < now:
                raise SimulationError(
                    f"scheduling into the past: {when} < {now}"
                )
            bucket = self._active
            if bucket is not None:
                bucket.append(what)
                bucket.append(value)
                return
        offset = when - self._base
        if 0 <= offset < _WHEEL_SLOTS:
            index = when & _WHEEL_MASK
            bucket = self._wheel[index]
            if bucket is None:
                free = self._free
                bucket = free.pop() if free else []
                self._wheel[index] = bucket
                heapq.heappush(self._wheel_times, when)
            bucket.append(what)
            bucket.append(value)
        else:
            self._schedule_overflow(when, what, value)

    def _schedule_overflow(self, when: int, what: Any, value: Any) -> None:
        """Slow path for events beyond the wheel window (or a stale base)."""
        bucket = self._overflow.get(when)
        if bucket is None:
            free = self._free
            bucket = free.pop() if free else []
            if (
                not self._wheel_times
                and not self._overflow_times
                and self._active is None
            ):
                # Nothing pending anywhere: slide the window straight to
                # the new event instead of paying a migration later.
                self._base = when & ~_WHEEL_MASK
                self._wheel[when & _WHEEL_MASK] = bucket
                heapq.heappush(self._wheel_times, when)
            else:
                self._overflow[when] = bucket
                heapq.heappush(self._overflow_times, when)
        bucket.append(what)
        bucket.append(value)

    def call_at(self, when: float, callback: Callable, value: Any = _NO_VALUE) -> None:
        """Run ``callback()`` — or ``callback(value)`` if ``value`` is
        given — at absolute time ``when``.

        Passing the argument through ``value`` schedules the callback
        directly, without the closure a ``lambda: callback(arg)`` wrapper
        would allocate on every call.
        """
        if value is _NO_VALUE:
            self._schedule_at(int(round(when)), _invoke_noarg, callback)
        else:
            self._schedule_at(int(round(when)), callback, value)

    def call_after(self, delay: float, callback: Callable, value: Any = _NO_VALUE) -> None:
        """Run ``callback()`` (or ``callback(value)``) after ``delay`` ns."""
        self.call_at(self.now + delay, callback, value)

    # -- factories --------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def delay(self, ns: float) -> Delay:
        """A reusable pure delay (see :class:`Delay`)."""
        return Delay(ns)

    def event(self) -> Event:
        return Event(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        process = Process(self, generator, name)
        if self.process_registry is not None:
            self.process_registry.append(process)
        return process

    def all_of(self, waitables: Iterable[Waitable]) -> Event:
        """An event that fires (with a list of values) once all inputs have.

        Inputs that already triggered are fine: their (deferred) delivery
        is counted like any other, so the result preserves input order
        regardless of completion order.
        """
        waitables = list(waitables)
        done = self.event()
        if not waitables:
            done.fire([])
            return done
        collector = _AllOfCollector(done, len(waitables))
        for index, waitable in enumerate(waitables):
            waitable._subscribe(collector.callback(index))
        return done

    # -- execution --------------------------------------------------------

    def _next_bucket(self, until: Optional[int]) -> Optional[list]:
        """Advance to the earliest pending tick and return its bucket.

        Recycles an exhausted active bucket, migrates overflow pages into
        the wheel when the window empties, honours ``until``, and sets
        ``self.now``/``self._active`` for the drain.  Returns ``None``
        when nothing (eligible) is pending.
        """
        bucket = self._active
        if bucket is not None:
            if self._active_pos < len(bucket):
                if until is not None and self.now > until:
                    return None
                return bucket
            del bucket[:]
            free = self._free
            if len(free) < 1024:
                free.append(bucket)
            self._active = None
            self._active_pos = 0
        times = self._wheel_times
        overflow_times = self._overflow_times
        if not times:
            if not overflow_times:
                return None
            # The window is empty: slide it to the earliest overflow page
            # and migrate every bucket that now fits — wholesale, the
            # bucket list itself becomes the wheel slot.
            base = self._base = overflow_times[0] & ~_WHEEL_MASK
            horizon = base + _WHEEL_SLOTS
            overflow = self._overflow
            wheel = self._wheel
            while overflow_times and overflow_times[0] < horizon:
                when = heapq.heappop(overflow_times)
                wheel[when & _WHEEL_MASK] = overflow.pop(when)
                heapq.heappush(times, when)
        when = times[0]
        if overflow_times and overflow_times[0] < when:
            # A stale window (base slid past ``now`` by an ``until``-bounded
            # run) can leave near-term events in the overflow calendar;
            # serve its bucket directly so order is preserved regardless.
            when = overflow_times[0]
            if until is not None and when > until:
                return None
            heapq.heappop(overflow_times)
            bucket = self._overflow.pop(when)
        else:
            if until is not None and when > until:
                return None
            heapq.heappop(times)
            index = when & _WHEEL_MASK
            bucket = self._wheel[index]
            self._wheel[index] = None
        self.now = when
        self._active = bucket
        self._active_pos = 0
        return bucket

    def step(self) -> bool:
        """Run a single event; return False when nothing is pending."""
        bucket = self._next_bucket(None)
        if bucket is None:
            return False
        i = self._active_pos
        what = bucket[i]
        value = bucket[i + 1]
        self._active_pos = i + 2
        self.events_executed += 1
        cls = what.__class__
        if cls is Process:
            what._resume(value)
        elif cls is Timeout or cls is Event:
            what._trigger(value)
        else:
            what(value)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or event budget ends."""
        if max_events is not None:
            self._run_budget(until, max_events)
            return
        if until is not None:
            until = int(round(until))
        wheel = self._wheel
        free = self._free
        times = self._wheel_times
        heappush = heapq.heappush
        while True:
            bucket = self._next_bucket(until)
            if bucket is None:
                break
            now = self.now
            base = self._base
            i = self._active_pos
            start = i
            # Drain the whole tick.  The outer loop rechecks the length —
            # entries appended mid-drain (same-tick cascades) extend the
            # bucket past the hoisted bound, while the inner loop runs
            # free of len() calls.  The finally clause keeps the cursor
            # consistent when a callback raises, so remaining entries
            # survive for a rerun.
            try:
              while True:
                n = len(bucket)
                if i >= n:
                    break
                while i < n:
                    what = bucket[i]
                    value = bucket[i + 1]
                    i += 2
                    if what.__class__ is Process:
                        # Fused process resume (mirrors Process._resume).
                        if not what._alive:
                            continue
                        try:
                            target = what.generator.send(value)
                        except StopIteration as stop:
                            what._finish(stop.value)
                            continue
                        except BaseException as error:
                            what.error = error
                            what._finish(error)
                            raise
                        cls = target.__class__
                        if cls is Delay:
                            # Fused Delay reschedule: straight into the
                            # destination bucket, no scheduler frames.
                            when2 = now + target.ns
                            if when2 == now:
                                bucket.append(what)
                                bucket.append(None)
                            elif 0 <= when2 - base < _WHEEL_SLOTS:
                                index = when2 & _WHEEL_MASK
                                dest = wheel[index]
                                if dest is None:
                                    dest = free.pop() if free else []
                                    wheel[index] = dest
                                    heappush(times, when2)
                                dest.append(what)
                                dest.append(None)
                            else:
                                self._schedule_overflow(when2, what, None)
                        elif cls is Timeout or cls is Event or cls is Process:
                            if target._triggered:
                                # Next-tick delivery at the current time:
                                # the active bucket is exactly that.
                                bucket.append(what)
                                bucket.append(target._value)
                            else:
                                target._callbacks.append(what)
                        elif isinstance(target, Waitable):
                            target._subscribe(what)
                        else:
                            raise SimulationError(
                                f"process {what.name!r} yielded "
                                f"non-waitable {target!r}"
                            )
                    elif what.__class__ is Timeout or what.__class__ is Event:
                        # Timeouts/Events are scheduled as themselves (no
                        # per-schedule bound-method allocation).
                        what._trigger(value)
                    else:
                        what(value)
            finally:
                self._active_pos = i
                self.events_executed += (i - start) >> 1
        if until is not None and until > self.now:
            self.now = until

    def _run_budget(self, until: Optional[float], max_events: int) -> None:
        """The ``max_events``-bounded variant of :meth:`run` (slow path)."""
        if until is not None:
            until = int(round(until))
        events = 0
        while events < max_events:
            bucket = self._next_bucket(until)
            if bucket is None:
                if until is not None and until > self.now:
                    self.now = until
                return
            i = self._active_pos
            what = bucket[i]
            value = bucket[i + 1]
            self._active_pos = i + 2
            events += 1
            self.events_executed += 1
            cls = what.__class__
            if cls is Process:
                what._resume(value)
            elif cls is Timeout or cls is Event:
                what._trigger(value)
            else:
                what(value)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if idle."""
        bucket = self._active
        if bucket is not None and self._active_pos < len(bucket):
            return self.now
        times = self._wheel_times
        overflow_times = self._overflow_times
        if times:
            # A stale window can leave near-term events in the overflow
            # calendar (see _next_bucket) — the true head is the minimum.
            if overflow_times and overflow_times[0] < times[0]:
                return overflow_times[0]
            return times[0]
        if overflow_times:
            return overflow_times[0]
        return None
