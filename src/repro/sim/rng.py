"""Deterministic random number generation and key-distribution generators.

The Zipfian generator follows Gray et al., "Quickly Generating
Billion-Record Synthetic Databases" (SIGMOD'94) — the same algorithm YCSB
uses and the one the paper cites [19].  The scrambled variant hashes the
rank so that popular keys are spread over the key space, matching YCSB's
``ScrambledZipfianGenerator``.
"""

from __future__ import annotations

import math
import random
from typing import Optional

_FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = (1 << 64) - 1


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 little-endian bytes."""
    hashed = _FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        hashed ^= octet
        hashed = (hashed * _FNV_PRIME_64) & _MASK_64
    return hashed


class UniformGenerator:
    """Uniform keys in ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: Optional[int] = None):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


class ZipfianGenerator:
    """Zipfian-distributed ranks in ``[0, item_count)`` with skew ``theta``.

    ``theta = 0`` degenerates to uniform; the paper (and YCSB) use
    ``theta = 0.99`` for skewed workloads.
    """

    def __init__(self, item_count: int, theta: float = 0.99, seed: Optional[int] = None):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.item_count = item_count
        self.theta = theta
        self._rng = random.Random(seed)
        self._zeta_n = self._zeta(item_count, theta)
        self._zeta_2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta > 0 else 0.0
        denominator = 1.0 - self._zeta_2 / self._zeta_n
        if theta > 0 and denominator > 0:
            self._eta = (1.0 - (2.0 / item_count) ** (1.0 - theta)) / denominator
        else:
            # item_count <= 2: the closed-form eta is undefined but the two
            # head-probability branches in next() already cover both ranks.
            self._eta = 0.0

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # O(n) but done once per generator; fine for the scaled datasets.
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        if self.theta == 0.0:
            return self._rng.randrange(self.item_count)
        u = self._rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.item_count * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return min(rank, self.item_count - 1)


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the key space by an FNV hash (as in YCSB)."""

    def __init__(self, item_count: int, theta: float = 0.99, seed: Optional[int] = None):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, theta, seed)

    @property
    def theta(self) -> float:
        return self._zipf.theta

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.item_count


def exponential_interval_ns(mean_ns: float, rng: random.Random) -> float:
    """One exponentially distributed inter-arrival gap with the given mean.

    The building block of the open-loop Poisson/MMPP arrival processes in
    :mod:`repro.traffic.arrivals` — kept here so every source of
    randomness in a run flows through seeded ``random.Random`` instances
    and stays bit-replayable.
    """
    if mean_ns <= 0:
        raise ValueError(f"mean_ns must be positive, got {mean_ns}")
    # rng.random() is in [0, 1), so the argument of log stays in (0, 1].
    return -mean_ns * math.log(1.0 - rng.random())


def truncated_exponential_backoff_ns(
    attempt: int,
    unit_ns: float,
    max_ns: float,
    rng: random.Random,
) -> float:
    """Eq. (1) of the paper: ``min(t0 * 2^i, t_max) + Rand(t0)``."""
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    exp = unit_ns * (2.0 ** min(attempt, 62))
    return min(exp, max_ns) + rng.random() * unit_ns


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    index = min(len(sorted_values) - 1, max(0, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[index]
