"""Contended resources: FIFO locks, spinlocks with cache-line bouncing,
and token buckets.

The :class:`SpinLock` is the load-bearing model of this reproduction: mlx5
doorbell registers are protected by pthread spinlocks, and under high
thread counts the lock hand-off itself costs time that grows with the
number of spinning waiters (cache-line bouncing between cores).  That is
what makes the per-thread-QP policy collapse past 32 threads in the paper's
Figure 3, and the model below reproduces it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Event, SimulationError, Simulator, Waitable


class FifoLock:
    """A fair (FIFO) mutual-exclusion lock.

    Usage from a process::

        yield lock.acquire()
        ...  # critical section (may yield timeouts)
        lock.release()

    ``acquire``/``release`` optionally carry an *owner* token (any
    comparable object — verbs passes the posting thread id).  When both
    sides provide one, a release by anything other than the current
    holder raises :class:`SimulationError`; RDMASan's lock-discipline
    checker relies on this being a trustworthy oracle.  Callers that
    pass no owner keep the old unchecked behaviour.
    """

    def __init__(self, sim: Simulator, name: str = "lock"):
        self._sim = sim
        self.name = name
        self._locked = False
        #: owner token of the current holder (None when unlocked or when
        #: the holder did not identify itself)
        self.owner: Any = None
        self._waiters: Deque = deque()  # (Event, enqueue time, owner token)
        # Statistics
        self.acquisitions = 0
        self.total_wait_ns = 0
        self.max_queue_len = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self, owner: Any = None) -> Waitable:
        ticket = self._sim.event()
        if not self._locked and not self._waiters:
            self._locked = True
            self.owner = owner
            self.acquisitions += 1
            ticket.fire(self)
        else:
            self._waiters.append((ticket, self._sim.now, owner))
            self.max_queue_len = max(self.max_queue_len, len(self._waiters))
        return ticket

    def release(self, owner: Any = None) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        if owner is not None and self.owner is not None and owner != self.owner:
            raise SimulationError(
                f"{self.name}: release by non-owner {owner!r} "
                f"(held by {self.owner!r})"
            )
        if self._waiters:
            ticket, enqueued_at, next_owner = self._waiters.popleft()
            # The next owner is committed now even though its ticket may
            # fire after the hand-off delay: the lock is spoken for.
            self.owner = next_owner
            self.acquisitions += 1
            delay = self._handoff_delay_ns()
            # Stamp the wait at the instant the ticket actually fires: the
            # hand-off (cache-line bounce) delay is part of what the next
            # owner waits for — excluding it underestimated exactly the
            # contention the SpinLock model exists to measure.
            self.total_wait_ns += self._sim.now + delay - enqueued_at
            if delay > 0:
                # Schedule the Event object itself: the kernel dispatches
                # Events natively, so no per-hand-off bound method
                # (``ticket.fire``) is allocated on this hot path.
                self._sim._schedule_at(self._sim.now + delay, ticket, self)
            else:
                ticket.fire(self)
        else:
            self._locked = False
            self.owner = None

    def _handoff_delay_ns(self) -> int:
        return 0


class SpinLock(FifoLock):
    """A lock whose hand-off cost grows with the number of spinning waiters.

    ``bounce_ns`` models one cache-line transfer between cores; when *w*
    other threads are spinning on the lock word, the releasing store plus
    the winning CAS contend with ~*w* concurrent readers, so the hand-off
    costs ``bounce_ns * min(w, bounce_cap)`` extra nanoseconds.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "spinlock",
        bounce_ns: float = 40.0,
        bounce_cap: int = 64,
    ):
        super().__init__(sim, name)
        self.bounce_ns = bounce_ns
        self.bounce_cap = bounce_cap

    def _handoff_delay_ns(self) -> int:
        # +1: the winning thread was itself spinning on the line.
        spinners = min(len(self._waiters) + 1, self.bounce_cap)
        return int(round(self.bounce_ns * spinners))


class TokenBucket:
    """Integer token pool with blocking acquisition (credit accounting).

    SMART's work-request credits (Algorithm 1) are built on this: ``take``
    blocks the calling process until the pool holds enough tokens, ``put``
    replenishes, and ``resize`` applies UpdateCMax's delta (which may drive
    the pool transiently negative, exactly like the paper's
    ``credit += target - C_max``).
    """

    def __init__(self, sim: Simulator, tokens: int, name: str = "tokens"):
        self._sim = sim
        self.name = name
        self._tokens = tokens
        self._waiters: Deque[Any] = deque()  # (amount, Event)

    @property
    def tokens(self) -> int:
        return self._tokens

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def take(self, amount: int = 1) -> Waitable:
        """Waitable that fires once ``amount`` tokens have been debited."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ticket = self._sim.event()
        if not self._waiters and self._tokens - amount >= 0:
            self._tokens -= amount
            ticket.fire(amount)
        else:
            self._waiters.append((amount, ticket))
        return ticket

    def try_take(self, amount: int = 1) -> bool:
        """Non-blocking take; only succeeds when no one is queued before us."""
        if not self._waiters and self._tokens - amount >= 0:
            self._tokens -= amount
            return True
        return False

    def put(self, amount: int = 1) -> None:
        self._tokens += amount
        self._drain()

    def adjust(self, delta: int) -> None:
        """Add ``delta`` (possibly negative) to the pool."""
        self._tokens += delta
        if delta > 0:
            self._drain()

    def _drain(self) -> None:
        while self._waiters:
            amount, ticket = self._waiters[0]
            if self._tokens - amount < 0:
                break
            self._waiters.popleft()
            self._tokens -= amount
            ticket.fire(amount)
