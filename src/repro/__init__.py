"""SMART (ASPLOS'24) reproduced on a simulated RNIC.

Public API tour:

* :class:`repro.Cluster` — build the testbed (nodes = blades with RNICs).
* :class:`repro.SmartContext` — §4.1 thread-aware RDMA resource
  allocation for a compute node.
* :class:`repro.SmartThread` / :class:`repro.SmartHandle` — §5.1
  coroutine API (``read``/``write``/``cas``/``faa``/``post_send``/
  ``sync``/``backoff_cas_sync``).
* :class:`repro.SmartFeatures` — switchboard for SMART's techniques
  (everything off = the conventional per-thread-QP baseline).
* ``repro.apps.*`` — RACE, FORD and Sherman plus their SMART refactors.
* ``repro.bench.experiments`` — one entry point per paper figure/table.
"""

from repro.cluster import Cluster, ComputeThread, Node
from repro.core import (
    OperationStats,
    SmartContext,
    SmartFeatures,
    SmartHandle,
    SmartThread,
)
from repro.rnic.config import RnicConfig

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ComputeThread",
    "Node",
    "OperationStats",
    "RnicConfig",
    "SmartContext",
    "SmartFeatures",
    "SmartHandle",
    "SmartThread",
    "__version__",
]
