"""Simulated RNIC: the hardware substrate the paper's analysis targets.

The model reproduces the three structural contention points of §2.2/§3:

* :mod:`repro.rnic.doorbell` — UAR doorbell registers with per-register
  spinlocks and the mlx5 driver's round-robin QP→doorbell mapping.
* :mod:`repro.rnic.caches` — the WQE cache (miss rate grows with total
  outstanding work requests) and the MTT/MPT cache (miss rate grows with
  the number of device contexts).
* :mod:`repro.rnic.engine` — requester/responder pipelines with the CX-6
  IOPS ceiling and NIC/PCIe bandwidth ceilings.
"""

from repro.rnic.config import RnicConfig
from repro.rnic.counters import PerfCounters
from repro.rnic.device import DeviceContext, RnicDevice
from repro.rnic.doorbell import Doorbell
from repro.rnic.qp import CompletionQueue, QueuePair, WorkBatch, WorkRequest

__all__ = [
    "CompletionQueue",
    "DeviceContext",
    "Doorbell",
    "PerfCounters",
    "QueuePair",
    "RnicConfig",
    "RnicDevice",
    "WorkBatch",
    "WorkRequest",
]
