"""Near-memory compute offload: active-message handlers at the blade.

The paper's world is pure one-sided verbs; this module adds the
execution model the roadmap's frontier asks for — clients post active
messages (``AM_SEND`` work requests carrying a handler id + arguments)
that run *at the responder*, next to the data, on the blade's wimpy
core / SmartNIC datapath processor.

Cost model (all knobs on :class:`repro.rnic.config.RnicConfig`):

* the AM request pays the normal responder reception pipeline (flat
  rate + bandwidth ceiling), exactly like a one-sided op;
* each message then pays ``offload_dispatch_ns`` (parse + handler-table
  lookup) plus its handler's compute estimate multiplied by
  ``offload_slowdown`` (the wimpy-core tradeoff), serialized on the
  blade's single handler core;
* the handler queue is bounded at ``offload_queue_depth`` admitted but
  unexecuted messages; beyond that, arrivals bounce straight back with
  :data:`~repro.rnic.qp.WorkRequest.STATUS_HANDLER_BUSY` (an
  RNR-NAK-style backpressure completion the client retries);
* the result rides home in a single response message of the WR's
  declared ``resp_size``.

Crash semantics mirror the one-sided pipeline: the handler body runs
atomically at its scheduled finish instant, so a blade crash landing
before that instant aborts the message with ``STATUS_REMOTE_ABORT`` and
*nothing* has executed — the client's retry after reconnect observes
exactly-once-visible effects.

Handlers are registered process-globally (so forked sweep workers
inherit them at import time) and must be deterministic pure functions of
``(storage, args)``; their optional ``regions`` callback declares the
blade-local byte ranges they touch, which RDMASan indexes in place of
the per-WR address a one-sided op would carry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.rnic.qp import WorkBatch, WorkRequest

#: declared blade-local access: (offset, size, access class "R"/"W"/"A")
Region = Tuple[int, int, str]


class AmHandler:
    """One registered active-message handler.

    ``fn(storage, args)`` executes the handler body against the blade's
    :class:`~repro.memory.blade.MemoryBlade` and returns the response
    value.  ``cost`` is the handler's compute time on a *full-speed host
    core* in ns — a float, or a callable ``(storage, args, config) ->
    ns`` evaluated at admission (it must not mutate) so data-dependent
    handlers (edge scans) can charge proportionally.  ``regions`` maps
    ``(storage, args)`` to the declared blade-local accesses RDMASan
    observes for this message.
    """

    __slots__ = ("name", "fn", "cost", "regions")

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, tuple], Any],
        cost: "float | Callable[[Any, tuple, Any], float]" = 0.0,
        regions: Optional[Callable[[Any, tuple], Iterable[Region]]] = None,
    ):
        self.name = name
        self.fn = fn
        self.cost = cost
        self.regions = regions

    def estimate_ns(self, storage, args: tuple, config) -> float:
        """Host-core compute estimate for one invocation (pre-slowdown)."""
        if callable(self.cost):
            return self.cost(storage, args, config)
        return self.cost

    def declared_regions(self, storage, args: tuple) -> Iterable[Region]:
        if self.regions is None:
            return ()
        return self.regions(storage, args)


_HANDLERS: Dict[str, AmHandler] = {}


def register_handler(
    name: str,
    fn: Callable[[Any, tuple], Any],
    cost: "float | Callable[[Any, tuple, Any], float]" = 0.0,
    regions: Optional[Callable[[Any, tuple], Iterable[Region]]] = None,
) -> AmHandler:
    """Register (or re-register, e.g. on module reload) a handler."""
    spec = AmHandler(name, fn, cost, regions)
    _HANDLERS[name] = spec
    return spec


def get_handler(name: str) -> AmHandler:
    spec = _HANDLERS.get(name)
    if spec is None:
        raise KeyError(
            f"no active-message handler {name!r} registered "
            f"(known: {sorted(_HANDLERS)})"
        )
    return spec


def declared_am_regions(wr: WorkRequest, storage) -> Iterable[Region]:
    """The blade-local accesses RDMASan should index for one AM WR.

    Unknown handlers yield nothing: the sanitizer is a passive observer
    and must not crash a run the runtime itself would reject later.
    """
    spec = _HANDLERS.get(wr.handler)
    if spec is None or storage is None:
        return ()
    return spec.declared_regions(storage, wr.am_args)


class OffloadRuntime:
    """Blade-side handler runtime: one serialized wimpy core plus a
    bounded admission queue, attached lazily to an
    :class:`~repro.rnic.device.RnicDevice` (same pattern as ODP: the
    attribute stays ``None`` until the first AM arrives, so one-sided
    runs never pay more than one ``is None`` check)."""

    def __init__(self, device):
        self.device = device
        #: single-server watermark of the handler core
        self.busy_until = 0.0
        #: messages admitted but not yet executed (the handler queue);
        #: RDMASan's teardown leak check requires this to drain to zero
        self.pending = 0

    def admit(self, batch: WorkBatch, ready_ns: float) -> None:
        """One received AM batch leaves the NIC pipeline at ``ready_ns``:
        bounce it if the queue is full, else schedule its execution."""
        device = self.device
        sim = device.sim
        config = device.config
        counters = device.counters
        storage = device.storage
        if storage is None:
            raise RuntimeError(
                f"{device.name}: active message targets a blade without memory"
            )
        if self.pending >= config.offload_queue_depth:
            for wr in batch.wrs:
                wr.status = WorkRequest.STATUS_HANDLER_BUSY
            counters.am_rejected += len(batch)
            if device.recorder is not None:
                device.recorder.instant(
                    device.name, "offload", "am_rejected", ready_ns,
                    {"batch": batch.batch_id, "queued": self.pending},
                )
            # the bounce rides the normal response path, unexecuted
            sim.call_at(ready_ns, device.responder.send_response, batch)
            return
        self.pending += 1
        if self.pending > counters.am_queue_peak:
            counters.am_queue_peak = self.pending
        compute = 0.0
        for wr in batch.wrs:
            spec = get_handler(wr.handler)
            compute += config.offload_dispatch_ns
            compute += spec.estimate_ns(storage, wr.am_args, config) * config.offload_slowdown
        start = max(ready_ns, self.busy_until)
        finish = start + compute
        self.busy_until = finish
        counters.handler_busy_ns += finish - start
        sim.call_at(finish, self._execute, (batch, start))

    def _execute(self, entry) -> None:
        """The handler core reaches this batch: run it (or abort it, if
        the blade crashed while it sat in the queue)."""
        batch, start = entry
        device = self.device
        self.pending -= 1
        if not device.online:
            # Crash mid-handler: the body never ran, so nothing is
            # visible.  The requester sees a remote abort after its
            # detection timeout and replays through the retry path —
            # exactly-once-visible semantics.
            device.counters.am_aborted += len(batch)
            origin = batch.qp.device
            origin.fail_batch(
                batch,
                WorkRequest.STATUS_REMOTE_ABORT,
                delay_ns=origin.config.crash_detect_ns,
            )
            return
        storage = device.storage
        for wr in batch.wrs:
            wr.result = get_handler(wr.handler).fn(storage, wr.am_args)
        counters = device.counters
        counters.am_handled += len(batch)
        counters.responder_ops += len(batch)
        origin = batch.qp.device
        if origin.tracer is not None:
            origin.tracer.record(batch.batch_id, "executed", device.sim.now)
        if device.recorder is not None:
            device.recorder.span(
                device.name, "offload", batch.wrs[0].handler,
                start, device.sim.now,
                {"batch": batch.batch_id, "wrs": len(batch)},
            )
        device.responder.send_response(batch)
