"""The RNIC device: contexts, engines, caches and counters."""

from __future__ import annotations

from typing import List, Optional

from repro.sim import Simulator
from repro.rnic.caches import MttCacheModel, WqeCacheModel
from repro.rnic.config import RnicConfig
from repro.rnic.counters import PerfCounters
from repro.rnic.doorbell import Doorbell, DoorbellAllocator
from repro.rnic.engine import RequesterEngine, ResponderEngine
from repro.rnic.qp import CompletionQueue, QueuePair, WorkBatch


class DeviceContext:
    """An opened device context (``ibv_open_device`` + PD + MRs).

    Sharing one context across threads keeps the MTT/MPT small (memory is
    registered once); opening one context per thread multiplies MRs and
    thrashes the translation cache (§2.2, §4.1).
    """

    def __init__(self, device: "RnicDevice", total_uuars: int):
        self.device = device
        self.uar = DoorbellAllocator(device.sim, device.config, total_uuars)
        self.mr_count = 0
        #: MRs registered on-demand-paged (``pinned=False``); their pages
        #: can fault at the responder (see :mod:`repro.rnic.odp`)
        self.unpinned_mr_count = 0
        self.qps: List[QueuePair] = []

    def register_mr(self, pinned: bool = True) -> None:
        self.mr_count += 1
        if not pinned:
            self.unpinned_mr_count += 1

    def create_qp(
        self,
        remote_node,
        cq: Optional[CompletionQueue] = None,
        doorbell: Optional[Doorbell] = None,
        share_lock=None,
    ) -> QueuePair:
        """Create an RC QP to ``remote_node``.

        Without an explicit ``doorbell`` the driver's round-robin mapping
        applies; passing one emulates SMART's thread-aware binding.
        """
        if doorbell is None:
            doorbell = self.uar.bind_next()
        else:
            self.uar.bind_doorbell(doorbell)
        if cq is None:
            cq = CompletionQueue(self.device.sim)
        qp = QueuePair(self, doorbell, cq, remote_node, share_lock)
        self.qps.append(qp)
        remote_node.device.accept_connection(qp)
        return qp


class RnicDevice:
    """One physical RNIC (one per blade)."""

    def __init__(
        self,
        sim: Simulator,
        config: RnicConfig,
        fabric,
        name: str,
        storage=None,
        node_id: Optional[int] = None,
    ):
        self.sim = sim
        self.config = config
        self.fabric = fabric
        self.name = name
        #: hosting blade's node id (None for devices built outside a Node)
        self.node_id = node_id
        #: False while the hosting blade is crashed; messages to an
        #: offline device are blackholed and surface as error completions
        self.online = True
        self.crashes = 0
        #: callbacks invoked (with this device) when the blade restarts
        self.on_restore: List = []
        #: blade memory served by the responder (None on pure compute blades)
        self.storage = storage
        self.contexts: List[DeviceContext] = []
        self.counters = PerfCounters()
        self.wqe_cache = WqeCacheModel(config)
        self.mtt_cache = MttCacheModel(config)
        self.requester = RequesterEngine(self)
        self.responder = ResponderEngine(self)
        #: WRs posted but not yet completed, device-wide (drives the WQE
        #: cache model)
        self.outstanding = 0
        #: optional :class:`repro.rnic.trace.Tracer` for batch lifecycles
        self.tracer = None
        #: optional :class:`repro.obs.tracing.TraceRecorder` for instants
        self.recorder = None
        #: optional :class:`repro.analysis.rdmasan.RdmaSanitizer`; like the
        #: recorder it is a passive observer — None keeps the hot path free
        self.sanitizer = None
        #: lazily created :class:`repro.rnic.odp.OdpState`; stays None on
        #: fully pinned configurations so the fault-free fast path never
        #: pays more than one ``is None`` check
        self.odp = None
        #: lazily created :class:`repro.rnic.offload.OffloadRuntime`;
        #: stays None until the first active message arrives, so
        #: one-sided runs never pay for the handler runtime
        self.offload = None
        #: QPs created by remote peers that terminate at this device
        self.accepted_qps = 0

    def ensure_odp(self):
        """The device's ODP state, created on first need."""
        if self.odp is None:
            from repro.rnic.odp import OdpState

            self.odp = OdpState(self)
        return self.odp

    def ensure_offload(self):
        """The device's active-message handler runtime, created on first
        need (the first AM_SEND batch that reaches this responder)."""
        if self.offload is None:
            from repro.rnic.offload import OffloadRuntime

            self.offload = OffloadRuntime(self)
        return self.offload

    def open_context(self, total_uuars: Optional[int] = None) -> DeviceContext:
        """Open a device context with ``total_uuars`` doorbells.

        The default mirrors the mlx5 driver (16); SMART raises it via the
        MLX5_TOTAL_UUARS mechanism so each thread can own a doorbell.
        """
        if total_uuars is None:
            total_uuars = self.config.low_latency_uars + self.config.medium_latency_uars
        context = DeviceContext(self, total_uuars)
        self.contexts.append(context)
        return context

    def accept_connection(self, qp: QueuePair) -> None:
        """Memory-blade side of RC connection establishment (bookkeeping
        only — the responder path is insensitive to QP count)."""
        self.accepted_qps += 1

    def fail(self) -> None:
        """The hosting blade crashed: stop serving (idempotent)."""
        if not self.online:
            return
        self.online = False
        self.crashes += 1

    def restore(self) -> None:
        """The hosting blade restarted: resume serving, run restore hooks.

        The engine pipelines restart empty: whatever backlog the crashed
        NIC had accumulated died with it, so the pre-crash ``busy_until``
        watermarks must not delay the first post-restart operation (they
        could sit arbitrarily far in the future after a long outage).
        """
        if self.online:
            return
        self.online = True
        self.requester.busy_until = 0.0
        self.responder.busy_until = 0.0
        if self.offload is not None:
            # the handler core restarts idle; queued entries died with
            # the crash (their scheduled executions abort when they fire)
            self.offload.busy_until = 0.0
        if self.odp is not None:
            # the restarted NIC has no cached translations
            self.odp.invalidate_all(self.sim.now)
        for callback in list(self.on_restore):
            callback(self)

    def fail_batch(self, batch: WorkBatch, status: str, delay_ns: float = 0.0) -> None:
        """Complete ``batch`` with error CQEs after ``delay_ns``.

        Marks every still-OK WR with ``status``, moves the QP to ERROR and
        routes the batch through the normal completion path (so credit
        replenishment and outstanding-WR accounting stay balanced).
        """
        from repro.rnic.qp import WorkRequest

        for wr in batch.wrs:
            if wr.status == WorkRequest.STATUS_OK:
                wr.status = status
        if status == WorkRequest.STATUS_FLUSH:
            self.counters.flushed_wrs += len(batch)
        else:
            self.counters.error_completions += len(batch)
        if self.recorder is not None:
            self.recorder.instant(
                self.name, "faults", "batch_failed", self.sim.now,
                {"batch": batch.batch_id, "status": status, "wrs": len(batch)},
            )
        # The QP transitions to ERROR when the error CQE is *delivered*,
        # not when the fault is scheduled: nothing observable (neither the
        # app nor later posts) may learn of the failure before the
        # detection delay has elapsed.
        if delay_ns > 0:
            self.sim.call_after(delay_ns, self._deliver_failure, (batch, status))
        else:
            self.sim.call_at(self.sim.now, self._deliver_failure, (batch, status))

    def _deliver_failure(self, pair) -> None:
        batch, status = pair
        batch.qp.to_error(status)
        self.complete(batch)

    def complete(self, batch: WorkBatch) -> None:
        """Response arrived: DMA the CQEs and wake the poster."""
        self.outstanding -= len(batch)
        if self.outstanding < 0:  # pragma: no cover - invariant guard
            raise RuntimeError(f"{self.name}: negative outstanding WR count")
        self.counters.cqe_delivered += len(batch)
        batch.qp.completed_wrs += len(batch)
        batch.qp.cq.deliver(batch)
        batch.completed_at = self.sim.now
        if self.tracer is not None:
            self.tracer.record(batch.batch_id, "completed", self.sim.now)
        if self.sanitizer is not None:
            self.sanitizer.on_complete(batch)
        batch.done.fire(batch)

    def __repr__(self) -> str:
        return f"RnicDevice({self.name}, contexts={len(self.contexts)})"
