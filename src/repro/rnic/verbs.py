"""The posting path: ibv_post_send / completion waiting as DES generators.

The cost structure mirrors the mlx5 driver:

1. build WQEs in the send queue (CPU, per WR);
2. if the QP is shared between threads, take the QP lock;
3. take the doorbell spinlock, copy WQEs to the write-combining buffer and
   ring the doorbell (MMIO), release;
4. the RNIC's requester engine takes over; a completion event fires when
   the CQEs have been DMA-ed back;
5. polling the CQ costs CPU per CQE.

Threads are duck-typed: anything with ``compute(ns)`` (a generator that
charges serialized CPU time) and ``sim`` works — see
:class:`repro.cluster.ComputeThread`.
"""

from __future__ import annotations

from typing import Generator, List

from repro.rnic.qp import QueuePair, WorkBatch, WorkRequest


def post_send(thread, qp: QueuePair, wrs: List[WorkRequest], actor=None) -> Generator:
    """Post ``wrs`` on ``qp``; returns the :class:`WorkBatch` once rung in.

    Usage: ``batch = yield from post_send(thread, qp, wrs)``.

    ``actor`` is an optional stable identity token for the logical issuer
    (RDMASan attributes findings to it); raw posts without one are
    attributed to the posting thread.
    """
    device = qp.device
    config = device.config
    batch = WorkBatch(device.sim, qp, wrs)
    if actor is not None:
        batch.actor = actor

    yield from thread.compute(config.wqe_build_ns * len(wrs))

    if qp.state == QueuePair.STATE_ERROR:
        # Posting on an ERROR QP skips the doorbell entirely: the driver
        # flushes the WRs straight to the CQ with IBV_WC_WR_FLUSH_ERR.
        # CPU for WQE building is still charged (the check happens at
        # ring time), which also keeps retry loops from spinning at t=0.
        qp.posted_wrs += len(wrs)
        if device.sanitizer is not None:
            device.sanitizer.on_post(thread, qp, batch)
        device.requester.submit(batch)
        return batch

    thread_id = getattr(thread, "thread_id", 0)
    if qp.share_lock is not None:
        qp.note_user(thread_id)
        yield qp.share_lock.acquire(owner=thread_id)
    try:
        if qp.share_lock is not None:
            thread.mark_busy_until_now()
            # Contended lock word: every acquisition fights the sharers'
            # spinning reads (cache-line bouncing).
            yield from thread.compute(qp.sharing_penalty_ns(config))
        doorbell = qp.doorbell
        doorbell.note_user(thread_id)
        wait_start = device.sim.now
        yield doorbell.lock.acquire(owner=thread_id)
        try:
            # The wait above was a spin: the thread's CPU was burning the
            # whole time, so bring its watermark up to now before the
            # locked section.
            thread.mark_busy_until_now()
            if device.recorder is not None and device.sim.now > wait_start:
                device.recorder.instant(
                    device.name, "requester", "doorbell_stall", device.sim.now,
                    {"doorbell": doorbell.index, "thread": thread_id,
                     "stall_ns": device.sim.now - wait_start},
                )
            # With request merging on, fused neighbours share one WQE: the
            # write-combining copy under the lock covers wire_wrs WQEs,
            # not one per posted WR (wire_wrs == len(wrs) when merging is
            # off).
            yield from thread.compute(doorbell.held_cost_ns(config, batch.wire_wrs))
        finally:
            doorbell.lock.release(owner=thread_id)
    finally:
        if qp.share_lock is not None:
            qp.share_lock.release(owner=thread_id)

    doorbell.rings += 1
    device.counters.doorbell_rings += 1
    qp.posted_wrs += len(wrs)
    if device.sanitizer is not None:
        device.sanitizer.on_post(thread, qp, batch)
    device.requester.submit(batch)
    return batch


def wait_completion(thread, batch: WorkBatch) -> Generator:
    """Wait until ``batch`` completes, then charge the CQ-poll CPU cost.

    Fixed polling (the default) charges ``cqe_poll_ns`` per CQE.  With
    ``RnicConfig.adaptive_poll`` the poller follows RDMAbox's
    spin-then-yield discipline: spin up to ``poll_spin_ns`` (same per-CQE
    cost as fixed polling — the completion was reaped hot), otherwise
    yield the core and, on wakeup, pay ``poll_yield_ns`` once plus an
    *amortized* drain of the whole completion batch
    (``cqe_poll_ns * (1 + poll_drain_factor * (n - 1))``).  The
    trade-off is RDMAbox's: slightly worse at depth 1 (the wakeup tax),
    increasingly better as more CQEs arrive per wakeup.
    """
    config = thread.config
    if not config.adaptive_poll:
        if not batch.done.triggered:
            yield batch.done
        yield from thread.compute(config.cqe_poll_ns * len(batch))
        return batch
    amortized_ns = config.cqe_poll_ns * (
        1.0 + config.poll_drain_factor * (len(batch) - 1)
    )
    if batch.done.triggered:
        # Already completed when the poller arrived: one cold drain
        # (the CQEs piled up while the thread was elsewhere).
        yield from thread.compute(amortized_ns)
        return batch
    wait_start = thread.sim.now
    yield batch.done
    if thread.sim.now - wait_start <= config.poll_spin_ns:
        # Caught within the spin budget — hot path, per-CQE cost.
        yield from thread.compute(config.cqe_poll_ns * len(batch))
    else:
        yield from thread.compute(config.poll_yield_ns + amortized_ns)
    return batch


def post_and_wait(thread, qp: QueuePair, wrs: List[WorkRequest]) -> Generator:
    """Convenience: post a batch and wait for all its completions."""
    batch = yield from post_send(thread, qp, wrs)
    yield from wait_completion(thread, batch)
    return batch
