"""The posting path: ibv_post_send / completion waiting as DES generators.

The cost structure mirrors the mlx5 driver:

1. build WQEs in the send queue (CPU, per WR);
2. if the QP is shared between threads, take the QP lock;
3. take the doorbell spinlock, copy WQEs to the write-combining buffer and
   ring the doorbell (MMIO), release;
4. the RNIC's requester engine takes over; a completion event fires when
   the CQEs have been DMA-ed back;
5. polling the CQ costs CPU per CQE.

Threads are duck-typed: anything with ``compute(ns)`` (a generator that
charges serialized CPU time) and ``sim`` works — see
:class:`repro.cluster.ComputeThread`.
"""

from __future__ import annotations

from typing import Generator, List

from repro.rnic.qp import QueuePair, WorkBatch, WorkRequest


def post_send(thread, qp: QueuePair, wrs: List[WorkRequest], actor=None) -> Generator:
    """Post ``wrs`` on ``qp``; returns the :class:`WorkBatch` once rung in.

    Usage: ``batch = yield from post_send(thread, qp, wrs)``.

    ``actor`` is an optional stable identity token for the logical issuer
    (RDMASan attributes findings to it); raw posts without one are
    attributed to the posting thread.
    """
    device = qp.device
    config = device.config
    batch = WorkBatch(device.sim, qp, wrs)
    if actor is not None:
        batch.actor = actor

    yield from thread.compute(config.wqe_build_ns * len(wrs))

    if qp.state == QueuePair.STATE_ERROR:
        # Posting on an ERROR QP skips the doorbell entirely: the driver
        # flushes the WRs straight to the CQ with IBV_WC_WR_FLUSH_ERR.
        # CPU for WQE building is still charged (the check happens at
        # ring time), which also keeps retry loops from spinning at t=0.
        qp.posted_wrs += len(wrs)
        if device.sanitizer is not None:
            device.sanitizer.on_post(thread, qp, batch)
        device.requester.submit(batch)
        return batch

    thread_id = getattr(thread, "thread_id", 0)
    if qp.share_lock is not None:
        qp.note_user(thread_id)
        yield qp.share_lock.acquire(owner=thread_id)
        thread.mark_busy_until_now()
        # Contended lock word: every acquisition fights the sharers'
        # spinning reads (cache-line bouncing).
        yield from thread.compute(qp.sharing_penalty_ns(config))
    doorbell = qp.doorbell
    doorbell.note_user(thread_id)
    wait_start = device.sim.now
    yield doorbell.lock.acquire(owner=thread_id)
    # The wait above was a spin: the thread's CPU was burning the whole
    # time, so bring its watermark up to now before the locked section.
    thread.mark_busy_until_now()
    if device.recorder is not None and device.sim.now > wait_start:
        device.recorder.instant(
            device.name, "requester", "doorbell_stall", device.sim.now,
            {"doorbell": doorbell.index, "thread": thread_id,
             "stall_ns": device.sim.now - wait_start},
        )
    yield from thread.compute(doorbell.held_cost_ns(config, len(wrs)))
    doorbell.lock.release(owner=thread_id)
    if qp.share_lock is not None:
        qp.share_lock.release(owner=thread_id)

    doorbell.rings += 1
    device.counters.doorbell_rings += 1
    qp.posted_wrs += len(wrs)
    if device.sanitizer is not None:
        device.sanitizer.on_post(thread, qp, batch)
    device.requester.submit(batch)
    return batch


def wait_completion(thread, batch: WorkBatch) -> Generator:
    """Wait until ``batch`` completes, then charge the CQ-poll CPU cost."""
    if not batch.done.triggered:
        yield batch.done
    yield from thread.compute(thread.config.cqe_poll_ns * len(batch))
    return batch


def post_and_wait(thread, qp: QueuePair, wrs: List[WorkRequest]) -> Generator:
    """Convenience: post a batch and wait for all its completions."""
    batch = yield from post_send(thread, qp, wrs)
    yield from wait_completion(thread, batch)
    return batch
