"""On-demand paging (ODP): the responder-side page-fault model.

The paper's testbed pins every MR, so a responder never stalls on the
host MMU.  NP-RDMA ("Using Commodity RDMA without Pinning Memory",
PAPERS.md) shows the pinning requirement can be dropped if the fault
path is modeled honestly: a one-sided access touching a non-resident
page of an ODP MR triggers an MMU-notifier round trip through the host
(tens of microseconds) before the data moves, and host-side events —
page reclaim, link resets, memory-pressure invalidations — shoot the
NIC's cached translations down again.

The model here is deliberately small:

* A page (4 KiB) of an ODP-capable region is either *resident* (its
  translation is in the NIC, access is free) or not (first touch and
  every touch after an invalidation pay ``odp_fault_ns`` + seeded
  jitter).
* Residency is an LRU set capped at ``odp_resident_pages``; capacity
  evictions make cold pages fault again, which is what makes
  ``pinned_ratio`` sweeps degrade smoothly instead of paying a one-time
  warmup cost.
* Which pages are ODP-capable is decided *statically*: an explicit
  ``Region.pinned=False`` makes every page faultable; ``pinned=None``
  regions defer to ``RnicConfig.pinned_ratio`` via a pure hash of
  (page, seed) — stable across runs and independent of access order, so
  fixed-seed runs replay bit-identically.
* Faulted translations are MTT misses by definition (the NIC had no
  valid translation), so each fault also bumps the device's MTT
  counters.

``RnicDevice.odp`` stays ``None`` until the first access that could
fault (``pinned_ratio < 1.0`` or an unpinned region exists), which keeps
the default pinned configuration byte-identical: the fault-free fast
path performs one ``is None`` check and never consults the ODP RNG.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.memory.address import offset_of

#: host page size; ODP faults and invalidations are per-page
ODP_PAGE_BYTES = 4096

_MASK64 = (1 << 64) - 1


def page_pinned_draw(page: int, seed: int) -> float:
    """Deterministic per-page uniform in [0, 1) — splitmix64 finalizer.

    Pure function of (page, seed): the pinned/ODP decision for a
    ``pinned=None`` region must not depend on the order pages are first
    touched, or replay under a different access schedule would flip it.
    """
    x = (page * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0 ** 64


class OdpState:
    """Per-device resident-set tracker for on-demand-paged MRs."""

    def __init__(self, device):
        self.device = device
        config = device.config
        self.page_bytes = ODP_PAGE_BYTES
        self.capacity = max(1, int(config.odp_resident_pages))
        self.rng = random.Random(config.odp_seed)
        #: LRU of resident (faultable) pages: dict insertion order, page
        #: index -> True; re-touch moves the page to the MRU end
        self.resident: Dict[int, bool] = {}
        #: memo of the static per-page pinned decision (hash evaluations
        #: are pure, this only skips recomputing them per touch)
        self._pinned_memo: Dict[int, bool] = {}

    # -- classification ------------------------------------------------------

    def _page_is_odp(self, page: int, region) -> bool:
        """Whether this page can fault (i.e. is not pinned)."""
        if region is not None and region.pinned is not None:
            return not region.pinned
        ratio = self.device.config.pinned_ratio
        if ratio >= 1.0:
            return False
        if ratio <= 0.0:
            return True
        cached = self._pinned_memo.get(page)
        if cached is None:
            cached = page_pinned_draw(page, self.device.config.odp_seed) >= ratio
            self._pinned_memo[page] = cached
        return cached

    # -- the fault path ------------------------------------------------------

    def charge(self, batch, now: float) -> float:
        """Total fault latency for one batch's accesses (0.0 if all pages
        are resident or pinned); called by the responder before it
        schedules execution."""
        device = self.device
        storage = device.storage
        config = device.config
        resident = self.resident
        page_bytes = self.page_bytes
        penalty = 0.0
        for wr in batch.wrs:
            offset = offset_of(wr.remote_addr)
            first = offset // page_bytes
            last = (offset + wr.size - 1) // page_bytes
            region = storage.find_region(offset, wr.size)
            for page in range(first, last + 1):
                if not self._page_is_odp(page, region):
                    continue
                if page in resident:
                    # LRU touch: re-insert at the MRU end
                    del resident[page]
                    resident[page] = True
                    continue
                fault_ns = config.odp_fault_ns
                if config.odp_fault_jitter_ns > 0.0:
                    fault_ns += self.rng.random() * config.odp_fault_jitter_ns
                penalty += fault_ns
                counters = device.counters
                counters.odp_faults += 1
                counters.odp_fault_ns += fault_ns
                # a faulted translation is an MTT miss by definition
                counters.mtt_lookups += 1
                counters.mtt_miss_wrs += 1
                resident[page] = True
                while len(resident) > self.capacity:
                    del resident[next(iter(resident))]
                if device.recorder is not None:
                    device.recorder.instant(
                        device.name, "odp", "odp_fault", now,
                        {"page": page, "fault_ns": fault_ns},
                    )
        return penalty

    # -- invalidation --------------------------------------------------------

    def invalidate_all(self, now: float) -> int:
        """Shoot down every resident translation (MMU-notifier storm:
        link reset, reclaim, registration churn).  Every page faults
        again on next touch.  Returns the number of pages invalidated."""
        device = self.device
        pages = list(self.resident)
        if not pages:
            return 0
        self.resident.clear()
        device.counters.odp_invalidations += len(pages)
        if device.recorder is not None:
            device.recorder.instant(
                device.name, "odp", "odp_invalidation", now,
                {"pages": len(pages)},
            )
        if device.sanitizer is not None:
            device.sanitizer.on_odp_invalidate(
                device.storage.blade_id, self._coalesce(pages), now,
            )
        return len(pages)

    def _coalesce(self, pages: List[int]) -> List[Tuple[int, int]]:
        """Sorted page list -> byte ranges, merging adjacent pages."""
        pages = sorted(pages)
        ranges: List[Tuple[int, int]] = []
        span_first = span_last = pages[0]
        for page in pages[1:]:
            if page == span_last + 1:
                span_last = page
                continue
            ranges.append((span_first * self.page_bytes,
                           (span_last + 1) * self.page_bytes))
            span_first = span_last = page
        ranges.append((span_first * self.page_bytes,
                       (span_last + 1) * self.page_bytes))
        return ranges
