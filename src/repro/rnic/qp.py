"""Queue pairs, work requests and completion queues."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim import Event, Simulator
from repro.sim.resources import SpinLock
from repro.rnic.doorbell import plan_merges

# One-sided verb opcodes (the only ones disaggregated apps use).
READ = "read"
WRITE = "write"
CAS = "cas"
FAA = "faa"
#: active message: run a registered handler at the responder blade
#: (the near-memory offload path, see :mod:`repro.rnic.offload`)
AM_SEND = "am_send"

_OPCODES = frozenset({READ, WRITE, CAS, FAA, AM_SEND})

#: Wire overhead per one-sided message (IB transport + RETH headers).
MESSAGE_OVERHEAD_BYTES = 30


class WorkRequest:
    """One one-sided RDMA operation.

    ``wr_id`` is free for application metadata, exactly like the verbs API
    (SMART packs the batch size into it, Algorithm 1 line 4).
    """

    __slots__ = (
        "opcode",
        "remote_addr",
        "size",
        "payload",
        "compare",
        "swap",
        "delta",
        "wr_id",
        "result",
        "status",
        "handler",
        "am_args",
        "resp_size",
    )

    STATUS_OK = "ok"
    STATUS_ACCESS_ERROR = "access-error"
    #: active message bounced off a full blade-side handler queue
    #: (RNR-NAK-like backpressure; retryable, does NOT error the QP)
    STATUS_HANDLER_BUSY = "handler-busy"
    #: the remote blade died while the WR was in flight (IBV_WC_REM_OP_ERR)
    STATUS_REMOTE_ABORT = "remote-abort"
    #: RC transport exhausted its retransmissions (IBV_WC_RETRY_EXC_ERR)
    STATUS_RETRY_EXCEEDED = "retry-exceeded"
    #: posted on a QP already in the ERROR state (IBV_WC_WR_FLUSH_ERR)
    STATUS_FLUSH = "flush-error"

    #: statuses that indicate a fabric/blade fault (vs. an application-level
    #: protection error); these put the QP into the ERROR state
    FAULT_STATUSES = frozenset(
        {STATUS_REMOTE_ABORT, STATUS_RETRY_EXCEEDED, STATUS_FLUSH}
    )

    def __init__(
        self,
        opcode: str,
        remote_addr: int,
        size: int = 8,
        payload: Optional[bytes] = None,
        compare: int = 0,
        swap: int = 0,
        delta: int = 0,
        wr_id: Any = None,
        handler: Optional[str] = None,
        am_args: tuple = (),
        resp_size: int = 8,
    ):
        if opcode not in _OPCODES:
            raise ValueError(f"unknown opcode {opcode!r}")
        if opcode == WRITE:
            if payload is None:
                raise ValueError("WRITE requires a payload")
            size = len(payload)
        if opcode in (CAS, FAA) and size != 8:
            raise ValueError("atomics operate on 8 bytes")
        if opcode == AM_SEND and handler is None:
            raise ValueError("AM_SEND requires a handler name")
        if size <= 0:
            raise ValueError("size must be positive")
        self.opcode = opcode
        self.remote_addr = remote_addr
        self.size = size
        self.payload = payload
        self.compare = compare
        self.swap = swap
        self.delta = delta
        self.wr_id = wr_id
        self.handler = handler
        self.am_args = am_args
        #: declared response payload bytes (AM_SEND only; the handler's
        #: return message, like a READ's size but for the back direction)
        self.resp_size = resp_size
        self.result: Any = None
        self.status = WorkRequest.STATUS_OK

    @property
    def wire_bytes(self) -> int:
        """Bytes moved for this WR in its dominant direction."""
        return self.size + MESSAGE_OVERHEAD_BYTES

    def __repr__(self) -> str:
        return f"WR({self.opcode}, addr={self.remote_addr:#x}, size={self.size})"


def read_wr(remote_addr: int, size: int, wr_id: Any = None) -> WorkRequest:
    return WorkRequest(READ, remote_addr, size=size, wr_id=wr_id)


def write_wr(remote_addr: int, payload: bytes, wr_id: Any = None) -> WorkRequest:
    return WorkRequest(WRITE, remote_addr, payload=payload, wr_id=wr_id)


def cas_wr(remote_addr: int, compare: int, swap: int, wr_id: Any = None) -> WorkRequest:
    return WorkRequest(CAS, remote_addr, compare=compare, swap=swap, wr_id=wr_id)


def faa_wr(remote_addr: int, delta: int, wr_id: Any = None) -> WorkRequest:
    return WorkRequest(FAA, remote_addr, delta=delta, wr_id=wr_id)


def am_wr(
    remote_addr: int,
    handler: str,
    args: tuple = (),
    size: Optional[int] = None,
    resp_size: int = 8,
    wr_id: Any = None,
) -> WorkRequest:
    """An active message: run ``handler`` with ``args`` at the blade that
    owns ``remote_addr``.  The request payload defaults to one 8-byte
    handler id plus 8 bytes per argument; ``resp_size`` declares the
    handler's response payload."""
    if size is None:
        size = 8 + 8 * len(args)
    return WorkRequest(
        AM_SEND, remote_addr, size=size, wr_id=wr_id,
        handler=handler, am_args=tuple(args), resp_size=resp_size,
    )


class WorkBatch:
    """A group of WRs posted by one ``post_send`` (one doorbell ring).

    ``wire_bytes`` and ``write_bytes`` are hoisted out of the engines:
    each is needed several times along a batch's lifecycle (requester
    bandwidth ceiling, fabric transit, responder bandwidth ceiling), so
    they are summed once at construction instead of per consumer.
    """

    __slots__ = (
        "wrs",
        "qp",
        "done",
        "posted_at",
        "completed_at",
        "batch_id",
        "wire_bytes",
        "write_bytes",
        "response_bytes",
        "wire_wrs",
        "actor",
    )

    def __init__(self, sim: Simulator, qp: "QueuePair", wrs: List[WorkRequest]):
        if not wrs:
            raise ValueError("empty work batch")
        sim.next_batch_id += 1
        self.batch_id = sim.next_batch_id
        self.wrs = wrs
        self.qp = qp
        self.done: Event = sim.event()
        self.posted_at = sim.now
        self.completed_at: Optional[int] = None
        #: stable identity of the logical issuer (RDMASan attribution);
        #: set by ``post_send`` when the caller supplies one
        self.actor: Any = None
        wire = 0
        write_payload = 0
        response = 0
        am_count = 0
        for wr in wrs:
            wire += wr.size + MESSAGE_OVERHEAD_BYTES
            if wr.opcode == WRITE:
                write_payload += wr.size
                # a WRITE's return direction is just the transport ack
                response += MESSAGE_OVERHEAD_BYTES
            elif wr.opcode == AM_SEND:
                am_count += 1
                # the handler's reply carries its declared response bytes
                response += wr.resp_size + MESSAGE_OVERHEAD_BYTES
            else:
                # READ response carries the data; atomics return 8 bytes
                response += wr.size + MESSAGE_OVERHEAD_BYTES
        if 0 < am_count < len(wrs):
            # The responder routes whole batches: an active message rides
            # alone or with other AMs, never mixed with one-sided verbs.
            raise ValueError("AM_SEND cannot share a batch with one-sided WRs")
        #: wire messages this batch issues; == len(wrs) unless RDMAbox
        #: request merging fused adjacent WRs (``RnicConfig.merge_wrs``)
        self.wire_wrs = len(wrs)
        if qp.context.device.config.merge_wrs and len(wrs) > 1 and not am_count:
            groups = plan_merges(wrs)
            if len(groups) < len(wrs):
                self.wire_wrs = len(groups)
                wire = response = 0
                index = 0
                for count in groups:
                    first = wrs[index]
                    group_size = sum(
                        wrs[index + k].size for k in range(count)
                    )
                    wire += group_size + MESSAGE_OVERHEAD_BYTES
                    if first.opcode == WRITE:
                        response += MESSAGE_OVERHEAD_BYTES
                    else:
                        response += group_size + MESSAGE_OVERHEAD_BYTES
                    index += count
        #: bytes moved on the wire in the batch's dominant direction
        self.wire_bytes = wire
        #: WRITE payload bytes (DMA-read from host DRAM before transmit)
        self.write_bytes = write_payload
        #: bytes moved in the return direction (READ data / atomic result
        #: payloads, plus one ack header per wire message)
        self.response_bytes = response

    def __len__(self) -> int:
        return len(self.wrs)

    @property
    def status(self) -> str:
        """Aggregate completion status: OK, or the first failed WR's."""
        for wr in self.wrs:
            if wr.status != WorkRequest.STATUS_OK:
                return wr.status
        return WorkRequest.STATUS_OK

    @property
    def ok(self) -> bool:
        return all(wr.status == WorkRequest.STATUS_OK for wr in self.wrs)

    def errors(self) -> List[WorkRequest]:
        """The WRs that completed with a non-OK status."""
        return [wr for wr in self.wrs if wr.status != WorkRequest.STATUS_OK]


class CompletionQueue:
    """Completion accounting for one thread's QPs.

    Completions are delivered per batch (the model's granularity); the CQ
    keeps counters so SMART's poller and the benches can observe them.
    """

    def __init__(self, sim: Simulator, name: str = "cq"):
        self._sim = sim
        self.name = name
        self.cqes_delivered = 0
        self.batches_delivered = 0

    def deliver(self, batch: WorkBatch) -> None:
        self.cqes_delivered += len(batch)
        self.batches_delivered += 1


class QueuePair:
    """A reliable-connection QP between a local device and a remote blade.

    The state machine is collapsed to the two states that matter for the
    fault model: ``RTS`` (operational) and ``ERROR``.  A transport failure
    (retry exhaustion, remote blade crash) moves the QP to ``ERROR``;
    while there, every posted WR is flushed with
    :data:`WorkRequest.STATUS_FLUSH` instead of executing.  ``reset()``
    models destroy-and-reconnect (the CM round) back to ``RTS``.
    """

    STATE_RTS = "rts"
    STATE_ERROR = "error"

    _next_id = 0

    def __init__(
        self,
        context,
        doorbell,
        cq: CompletionQueue,
        remote_node,
        share_lock: Optional[SpinLock] = None,
    ):
        QueuePair._next_id += 1
        self.qp_id = QueuePair._next_id
        self.context = context
        self.doorbell = doorbell
        self.cq = cq
        self.remote_node = remote_node
        #: set when several threads share this QP (shared / multiplexed
        #: policies); the driver serializes them on this lock.
        self.share_lock = share_lock
        self.posted_wrs = 0
        self.completed_wrs = 0
        #: threads that post on this QP (contend on its driver lock)
        self.users = set()
        self.state = QueuePair.STATE_RTS
        #: completion status that moved the QP to ERROR (None while RTS)
        self.error_cause: Optional[str] = None
        #: completed destroy-and-reconnect rounds
        self.reconnects = 0

    def to_error(self, cause: str) -> None:
        """Transition to the ERROR state (idempotent)."""
        if self.state == QueuePair.STATE_ERROR:
            return
        self.state = QueuePair.STATE_ERROR
        self.error_cause = cause
        device = self.context.device
        device.counters.qp_errors += 1
        if device.recorder is not None:
            device.recorder.instant(
                device.name, "faults", "qp_error", device.sim.now,
                {"qp": self.qp_id, "cause": cause},
            )

    def reset(self) -> None:
        """Reconnect an ERROR QP (destroy + re-create, back to RTS)."""
        if self.state != QueuePair.STATE_ERROR:
            return
        self.state = QueuePair.STATE_RTS
        self.error_cause = None
        self.reconnects += 1

    def note_user(self, thread_id: int) -> None:
        self.users.add(thread_id)

    def sharing_penalty_ns(self, config) -> float:
        if self.share_lock is None:
            return 0.0
        sharers = min(max(len(self.users) - 1, 0), config.doorbell_bounce_cap)
        return config.doorbell_share_ns * sharers

    @property
    def device(self):
        return self.context.device

    @property
    def outstanding(self) -> int:
        return self.posted_wrs - self.completed_wrs

    def __repr__(self) -> str:
        return f"QP({self.qp_id}, db={self.doorbell.index}, remote={self.remote_node.node_id})"
