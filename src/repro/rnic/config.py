"""RNIC model parameters.

Defaults are calibrated to the paper's testbed (Mellanox ConnectX-6,
200 Gbps, PCIe 3.0 x16, dual-socket 96-core Xeon; hardware IOPS limit
110 MOP/s).  Calibration targets, all taken from the paper's text:

* hardware ceiling 110 MOPS for 8-byte READs (§6.1);
* per-thread-QP throughput roughly halves from 48 to 96 threads because
  ~8 threads share each of the 12 medium-latency doorbells (§3.1, Fig 3);
* 96 threads x 8 OWRs (=768 outstanding WRs) is the throughput peak;
  96 x 32 runs at ~49.5% of it; 36 x 32 (=1152) loses only ~5% (§3.2);
* DRAM traffic per WR grows 93 -> 180 bytes from depth 8 to 32 at 96
  threads (Fig 4b);
* MTT/MPT hit ratio is >95% with a shared device context and drops toward
  70% with per-thread contexts (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class RnicConfig:
    """All tunables of the simulated RNIC, CPU cost model and fabric."""

    name: str = "ConnectX-6"

    # -- processing ceilings -------------------------------------------------
    max_iops: float = 110e6
    """Requester WQE issue ceiling (ops/s) with a warm WQE cache."""

    responder_iops: float = 115e6
    """Responder-side execution ceiling (ops/s); the paper observes the
    outbound path does not degrade with QP count, so it is a flat rate."""

    network_bandwidth_gbps: float = 200.0
    pcie_bandwidth_gbps: float = 128.0
    """PCIe 3.0 x16 on the paper's testbed (their footnote 6)."""

    # -- doorbells (UARs) ------------------------------------------------------
    low_latency_uars: int = 4
    medium_latency_uars: int = 12
    max_uars: int = 512
    """Driver default: 16 doorbells per context (4 dedicated low-latency +
    12 shared medium-latency); CX-6 supports up to 512 with a driver mod."""

    doorbell_mmio_ns: float = 70.0
    """MMIO write to the UAR page, inside the spinlock."""

    doorbell_bounce_ns: float = 100.0
    """Cache-line bounce per *queued* waiter at spinlock hand-off."""

    doorbell_share_ns: float = 75.0
    """Cache-line bounce per *sharer* of the spinlock line paid on every
    acquisition: each thread spinning on the lock keeps invalidating it."""

    wqe_share_factor: float = 1.0
    """The per-WQE work under the lock (write-combining buffer copy) also
    bounces with sharers: cost = wqe_under_lock_ns * n * (1 + factor *
    sharers).  Together with ``doorbell_share_ns`` this reconciles the
    paper's data: batch-8 posts collapse to ~55% at 96 threads (Fig 3)
    while single-WQE rings still sustain ~16 M rings/s (Fig 12's
    Sherman+ w/ SL), because the batched post holds the contended lock
    8x longer."""

    doorbell_bounce_cap: int = 16

    # -- WQE cache -------------------------------------------------------------
    wqe_cache_capacity: int = 896
    """Outstanding WRs that fit on chip; beyond this, WQE fetches start
    missing to host DRAM over PCIe."""

    wqe_miss_shape: float = 2.5
    """Exponent of the miss curve: miss = (1 - cap/owr)^shape for
    owr > cap.  Calibrated so 1152 OWRs lose ~5% and 3072 lose ~50%."""

    wqe_miss_penalty: float = 2.4
    """Service-time multiplier coefficient per unit miss rate."""

    wr_base_dma_bytes: float = 93.0
    """Host DRAM traffic per WR with a warm cache (Fig 4b floor)."""

    wqe_miss_dma_bytes: float = 123.0
    """Extra DRAM bytes per WR at miss rate 1.0 (Fig 4b: 180 B at 96x32)."""

    # -- MTT/MPT cache -----------------------------------------------------------
    mtt_shared_hit: float = 0.95
    mtt_hit_floor: float = 0.70
    mtt_hit_decay_per_context: float = 0.03
    """Each extra device context registers its own MRs and dilutes the
    translation cache: hit = max(floor, shared_hit - decay*(contexts-1))."""

    mtt_miss_penalty: float = 3.6
    """Service multiplier coefficient applied to miss rate in excess of the
    shared-context baseline (so one shared context runs at max_iops)."""

    # -- QP sharing --------------------------------------------------------------
    qp_lock_hold_ns: float = 60.0
    """Driver work under the QP lock when a QP is shared between threads."""

    # -- CPU cost model -----------------------------------------------------------
    wqe_build_ns: float = 30.0
    """CPU time to build and enqueue one WQE."""

    wqe_under_lock_ns: float = 20.0
    """Per-WQE driver work done while holding the doorbell spinlock
    (write-combining buffer copy, producer-index update)."""

    cqe_poll_ns: float = 40.0
    """CPU time to poll one CQE."""

    cpu_ghz: float = 2.4
    """Xeon Gold 6240R nominal frequency; converts the paper's
    cycle-denominated backoff constants to nanoseconds."""

    # -- fabric / memory ----------------------------------------------------------
    one_way_latency_ns: float = 1000.0
    """Half of the ~2 us small-op RTT."""

    nvm_write_extra_ns: float = 300.0
    """Extra responder latency for writes landing in Optane-backed regions."""

    blade_capacity_bytes: int = 64 << 20

    # -- fault handling / recovery -------------------------------------------------
    retransmit_timeout_ns: float = 16_000.0
    """RC transport ack timeout before a lost message is retransmitted
    (hardware retry; order of the IB local-ack-timeout at small scale)."""

    transport_retry_limit: int = 7
    """RC retry_count: retransmissions before the QP gives up, completes
    the WR with error and transitions to the ERROR state."""

    crash_detect_ns: float = 50_000.0
    """Latency from a remote blade dying to the requester surfacing
    completion-with-error for WRs targeting it (timeout + CM notification)."""

    reconnect_probe_ns: float = 20_000.0
    """Cost of one reconnect attempt (CM handshake probe) during recovery."""

    reconnect_retry_limit: int = 64
    """Reconnect attempts before a client gives the remote node up."""

    enforce_protection: bool = False
    """When on, responders check every one-sided access against the
    blade's registered regions (the MPT's security-check role, §2.2);
    out-of-region accesses complete with an access error instead of
    executing.  Off by default: the paper's workloads are all
    well-formed, and raw-offset access keeps small experiments terse."""

    # -- ODP / non-pinned memory (NP-RDMA) ------------------------------------
    pinned_ratio: float = 1.0
    """Fraction of 4 KiB pages in ``pinned=None`` regions that behave as
    pinned.  1.0 (the default) reproduces the paper's fully pinned setup
    and never creates ODP state; below 1.0, a deterministic per-page hash
    marks ``1 - pinned_ratio`` of the pages on-demand-paged.  Regions
    registered with an explicit ``pinned=False`` are always ODP-backed
    regardless of this knob."""

    odp_fault_ns: float = 20_000.0
    """Responder-side service of one ODP page fault (first touch of a
    non-resident page, or re-touch after an invalidation): MMU-notifier
    round trip + host page-table walk + MTT update.  NP-RDMA measures
    tens of microseconds for the slow path on commodity NICs."""

    odp_fault_jitter_ns: float = 8_000.0
    """Uniform jitter added on top of ``odp_fault_ns`` per fault, drawn
    from the seeded ODP RNG (host scheduling noise on the fault path)."""

    odp_resident_pages: int = 4096
    """Resident-set capacity, in 4 KiB pages, per device (16 MiB).  LRU
    eviction beyond this; an evicted page faults again on next touch."""

    odp_seed: int = 0
    """Seed of the per-device ODP RNG (fault jitter).  Page pinned-ness
    under ``pinned_ratio`` is a pure hash of (page, seed) so it is stable
    across runs and independent of access order."""

    # -- near-memory offload (active messages) ---------------------------------
    offload_slowdown: float = 3.0
    """Compute slowdown of the blade-side handler core relative to a host
    core: the wimpy ARM core (or SmartNIC datapath processor) executing an
    active-message handler runs its compute this many times slower.  Only
    AM_SEND work requests pay it; one-sided runs never touch the knob."""

    offload_dispatch_ns: float = 400.0
    """Fixed per-active-message dispatch latency at the responder:
    request parse, handler-table lookup and argument marshalling before
    the handler body starts."""

    offload_queue_depth: int = 64
    """Bound of the blade-side handler queue.  An active message arriving
    with this many already admitted-but-unexecuted is bounced back with
    ``STATUS_HANDLER_BUSY`` (an RNR-NAK-style backpressure completion the
    client retries with backoff) instead of queueing unboundedly."""

    # -- doorbell batching / adaptive polling (RDMAbox) ------------------------
    merge_wrs: bool = False
    """RDMAbox-style request merging: consecutive READ/WRITE WRs in one
    post to contiguous remote addresses fuse into a single wire message
    (one WQE, one header, one transit).  Off by default; off-runs are
    byte-identical to the unmerged model."""

    adaptive_poll: bool = False
    """RDMAbox-style adaptive CQ polling: spin up to ``poll_spin_ns``,
    then yield and reap the whole completion batch in one wakeup instead
    of paying ``cqe_poll_ns`` per CQE.  Off by default."""

    poll_spin_ns: float = 200.0
    """Spin budget before the adaptive poller yields the core."""

    poll_yield_ns: float = 150.0
    """Wakeup cost (context switch back onto the CQ) after a yield."""

    poll_drain_factor: float = 0.25
    """Per-extra-CQE cost of a batched drain, as a fraction of
    ``cqe_poll_ns``: draining n CQEs in one wakeup costs
    ``cqe_poll_ns * (1 + factor * (n - 1))``."""

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.cpu_ghz

    @property
    def iops_service_ns(self) -> float:
        return 1e9 / self.max_iops

    @property
    def responder_service_ns(self) -> float:
        return 1e9 / self.responder_iops

    @property
    def network_bytes_per_ns(self) -> float:
        return self.network_bandwidth_gbps / 8.0

    @property
    def pcie_bytes_per_ns(self) -> float:
        return self.pcie_bandwidth_gbps / 8.0

    def with_overrides(self, **kwargs) -> "RnicConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


def connectx6() -> RnicConfig:
    """The paper's testbed NIC."""
    return RnicConfig()


def small_scale() -> RnicConfig:
    """A reduced-rate profile for fast unit tests (not used by benches)."""
    return RnicConfig(max_iops=10e6, responder_iops=10.5e6, wqe_cache_capacity=64)


def apply_feature_overrides(
    config: "RnicConfig | None",
    pinned_ratio: "float | None" = None,
    merge_wrs: "bool | None" = None,
    adaptive_poll: "bool | None" = None,
    offload_slowdown: "float | None" = None,
    offload_dispatch_ns: "float | None" = None,
    offload_queue_depth: "int | None" = None,
) -> "RnicConfig | None":
    """Fold the per-runner feature kwargs into ``config``.

    Every bench runner exposes ``pinned_ratio`` / ``merge_wrs`` /
    ``adaptive_poll`` (and the offload cost knobs) as plain keyword
    arguments so sweeps don't have to construct configs; ``None`` means
    "leave the config's value alone".  Returns ``config`` unchanged
    (possibly ``None``) when nothing is overridden, so default runs build
    the identical default config.
    """
    overrides = {}
    if pinned_ratio is not None:
        overrides["pinned_ratio"] = pinned_ratio
    if merge_wrs is not None:
        overrides["merge_wrs"] = merge_wrs
    if adaptive_poll is not None:
        overrides["adaptive_poll"] = adaptive_poll
    if offload_slowdown is not None:
        overrides["offload_slowdown"] = offload_slowdown
    if offload_dispatch_ns is not None:
        overrides["offload_dispatch_ns"] = offload_dispatch_ns
    if offload_queue_depth is not None:
        overrides["offload_queue_depth"] = offload_queue_depth
    if not overrides:
        return config
    return (config or RnicConfig()).with_overrides(**overrides)
