"""Neo-Host-style performance counters.

The paper measures PCIe inbound bandwidth (RNIC -> host DRAM traffic) with
Mellanox Neo-Host to expose WQE cache thrashing (Fig 4b).  The simulated
device maintains the equivalent counters so benches can report the same
metric.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PerfCounters:
    """Monotonic counters; snapshot-and-subtract to measure a window."""

    wqe_processed: int = 0
    doorbell_rings: int = 0
    dram_bytes: float = 0.0
    wqe_cache_miss_wrs: float = 0.0
    mtt_lookups: int = 0
    mtt_miss_wrs: float = 0.0
    responder_ops: int = 0
    cqe_delivered: int = 0
    requester_busy_ns: float = 0.0
    responder_busy_ns: float = 0.0
    protection_faults: int = 0

    # -- fault-injection accounting (the wasted-IOPS ledger) ------------------
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    retransmissions: int = 0
    wasted_wire_bytes: float = 0.0
    """Wire bytes spent on messages that were dropped, duplicated or
    retransmitted — IOPS/bandwidth the fabric burned without making
    application progress."""

    error_completions: int = 0
    """WRs completed with a non-OK status (remote abort, retry exceeded)."""

    flushed_wrs: int = 0
    """WRs posted on an ERROR-state QP and flushed without execution."""

    qp_errors: int = 0
    """QP transitions into the ERROR state."""

    # -- ODP / request-merging accounting -------------------------------------
    odp_faults: int = 0
    """Responder-side page faults on on-demand-paged MRs (first touch or
    re-touch after an invalidation)."""

    odp_fault_ns: float = 0.0
    """Total responder time spent servicing ODP faults."""

    odp_invalidations: int = 0
    """Resident translations shot down by MMU-notifier storms."""

    merged_wrs: int = 0
    """WRs absorbed into a neighbour's wire message by RDMAbox-style
    request merging (posted WRs minus wire messages)."""

    # -- near-memory offload accounting ----------------------------------------
    am_handled: int = 0
    """Active messages whose handler body executed at this blade."""

    am_rejected: int = 0
    """Active messages bounced off the full handler queue (backpressure;
    completed with STATUS_HANDLER_BUSY, retried by the client)."""

    am_aborted: int = 0
    """Active messages aborted by a blade crash before their handler ran
    (the exactly-once-visible crash-mid-handler path)."""

    handler_busy_ns: float = 0.0
    """Total time the blade-side handler core spent dispatching and
    executing active messages (occupancy of the wimpy core)."""

    am_queue_peak: int = 0
    """High-water mark of the handler queue (admitted but unexecuted
    messages); a gauge, so window deltas are not meaningful."""

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(**vars(self))

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since ``earlier``."""
        return PerfCounters(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )

    @property
    def dram_bytes_per_wr(self) -> float:
        """Average RNIC->DRAM traffic per processed work request."""
        if self.wqe_processed == 0:
            return 0.0
        return self.dram_bytes / self.wqe_processed

    @property
    def wqe_miss_rate(self) -> float:
        if self.wqe_processed == 0:
            return 0.0
        return self.wqe_cache_miss_wrs / self.wqe_processed

    @property
    def wasted_wrs(self) -> float:
        """WRs whose processing made no application progress."""
        return self.retransmissions + self.error_completions + self.flushed_wrs

    def requester_utilization(self, window_ns: float) -> float:
        """Fraction of a window the requester pipeline was busy.  ~1.0
        means the device ceiling (IOPS or bandwidth) is the bottleneck."""
        return self.requester_busy_ns / window_ns if window_ns > 0 else 0.0

    def responder_utilization(self, window_ns: float) -> float:
        return self.responder_busy_ns / window_ns if window_ns > 0 else 0.0
