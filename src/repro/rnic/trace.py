"""Per-batch lifecycle tracing for latency breakdowns.

Attach a :class:`Tracer` to a device (``device.tracer = Tracer(...)``)
and every work batch passing through records its pipeline timestamps:

    posted -> issued -> remote_start -> executed -> completed

``summary()`` then reports where the time went — queueing at the
requester (a sign of an IOPS/bandwidth ceiling), flight time, responder
queueing (a remote-side ceiling) or return flight.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

STAGES = ("posted", "issued", "remote_start", "executed", "completed")


class Tracer:
    """Bounded trace of batch lifecycles (oldest evicted first)."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._batches: "OrderedDict[int, Dict[str, int]]" = OrderedDict()
        self.dropped = 0

    def record(self, batch_id: int, stage: str, now: int) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}")
        timestamps = self._batches.get(batch_id)
        if timestamps is None:
            if stage != "posted":
                return  # batch predates the tracer; ignore its tail
            timestamps = {}
            self._batches[batch_id] = timestamps
            if len(self._batches) > self.capacity:
                self._batches.popitem(last=False)
                self.dropped += 1
        timestamps[stage] = now

    def complete_batches(self) -> List[Dict[str, int]]:
        return [t for t in self._batches.values() if len(t) == len(STAGES)]

    def summary(self) -> Optional[Dict[str, float]]:
        """Mean nanoseconds per pipeline segment over complete batches."""
        complete = self.complete_batches()
        if not complete:
            return None
        segments = {
            "post_to_issue": ("posted", "issued"),
            "issue_to_remote": ("issued", "remote_start"),
            "remote_queue_and_exec": ("remote_start", "executed"),
            "return_flight": ("executed", "completed"),
            "total": ("posted", "completed"),
        }
        result = {}
        for name, (start, end) in segments.items():
            result[name] = sum(t[end] - t[start] for t in complete) / len(complete)
        result["batches"] = float(len(complete))
        return result
