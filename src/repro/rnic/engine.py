"""Requester and responder processing pipelines.

Both pipelines are deterministic single-server queues tracked by a
``busy_until`` watermark: a submitted batch starts when the pipeline frees
up and occupies it for ``max(iops-limited, bandwidth-limited)`` time.
This reproduces the two ceilings the paper reports: 110 MOPS for 8-byte
ops (IOPS-bound) and the PCIe-3.0 bandwidth wall for ~1 KB Sherman leaf
reads (bandwidth-bound).
"""

from __future__ import annotations

import struct

from repro.memory.address import blade_of, offset_of
from repro.rnic import qp as qpmod
from repro.rnic.qp import WorkBatch

_U64 = struct.Struct("<Q")


class RequesterEngine:
    """WQE fetch/issue pipeline of a compute blade's RNIC."""

    def __init__(self, device):
        self.device = device
        self.busy_until = 0.0

    def submit(self, batch: WorkBatch) -> None:
        """Accept a rung-in batch; schedules remote handling and completion."""
        device = self.device
        sim = device.sim
        config = device.config
        n = len(batch)

        device.outstanding += n
        outstanding = device.outstanding
        context_count = len(device.contexts)
        if device.tracer is not None:
            device.tracer.record(batch.batch_id, "posted", sim.now)

        qp = batch.qp
        if qp.state == qpmod.QueuePair.STATE_ERROR:
            # Driver-level flush: WRs posted on an ERROR QP never reach
            # the wire; they complete immediately with a flush status.
            device.fail_batch(batch, qpmod.WorkRequest.STATUS_FLUSH)
            return
        if not qp.remote_node.device.online:
            # Remote blade is down: no ack will ever arrive.  Surface
            # completion-with-error after the detection timeout.
            device.fail_batch(
                batch,
                qpmod.WorkRequest.STATUS_REMOTE_ABORT,
                delay_ns=config.crash_detect_ns,
            )
            return

        # One memoized evaluation per cache model: service multiplier,
        # miss rate and DMA cost all derive from the same miss curve.
        wqe_miss, wqe_multiplier, wqe_dma_per_wr = device.wqe_cache.lookup(outstanding)
        mtt_hit, mtt_multiplier = device.mtt_cache.lookup(context_count)
        per_wr_ns = config.iops_service_ns * (wqe_multiplier * mtt_multiplier)
        bandwidth_ns = batch.wire_bytes / min(
            config.network_bytes_per_ns, config.pcie_bytes_per_ns
        )
        # Request merging fuses adjacent WRs into fewer wire messages:
        # the issue pipeline processes one WQE per *wire* message
        # (wire_wrs == n unless RnicConfig.merge_wrs fused some).
        wire_n = batch.wire_wrs
        start = max(sim.now, self.busy_until)
        finish = start + max(wire_n * per_wr_ns, bandwidth_ns)
        self.busy_until = finish

        counters = device.counters
        counters.requester_busy_ns += finish - start
        counters.wqe_processed += n
        if wire_n != n:
            counters.merged_wrs += n - wire_n
        counters.mtt_lookups += n
        counters.wqe_cache_miss_wrs += n * wqe_miss
        counters.mtt_miss_wrs += n * (1.0 - mtt_hit)
        # WRITE payloads are DMA-read from host DRAM before transmission.
        counters.dram_bytes += n * wqe_dma_per_wr + batch.write_bytes

        if device.recorder is not None and wqe_miss > 0.0:
            device.recorder.instant(
                device.name, "requester", "wqe_cache_miss", sim.now,
                {"batch": batch.batch_id, "miss_rate": round(wqe_miss, 4),
                 "outstanding": outstanding},
            )
        if device.tracer is not None:
            # Every other stage records sim.now, which the event loop
            # quantizes with round() — truncating here instead skewed the
            # post_to_issue/issue_to_remote split by up to 1 ns per batch.
            device.tracer.record(batch.batch_id, "issued", int(round(finish)))
        self._transmit(batch, finish, 0)

    def _transmit(self, batch: WorkBatch, ready_ns: float, attempt: int) -> None:
        """Put a batch on the wire at ``ready_ns``; handles loss/retransmit.

        With a perfect fabric this reduces to the original single
        ``call_at`` of the responder.  Under injected loss the RC
        transport retransmits after the ack timeout, up to
        ``transport_retry_limit`` times, then completes with error and
        moves the QP to ERROR.  Duplicated messages are filtered by PSN
        at the receiver and only waste wire bytes.
        """
        device = self.device
        sim = device.sim
        config = device.config
        remote = batch.qp.remote_node.device
        if not remote.online:
            device.fail_batch(
                batch,
                qpmod.WorkRequest.STATUS_REMOTE_ABORT,
                delay_ns=(ready_ns - sim.now) + config.crash_detect_ns,
            )
            return
        delay, dropped, duplicated = device.fabric.transit(
            batch.wire_bytes, ready_ns, device.node_id, remote.node_id
        )
        counters = device.counters
        if duplicated:
            counters.wasted_wire_bytes += batch.wire_bytes
        if dropped:
            counters.wasted_wire_bytes += batch.wire_bytes
            if attempt >= config.transport_retry_limit:
                device.fail_batch(
                    batch,
                    qpmod.WorkRequest.STATUS_RETRY_EXCEEDED,
                    delay_ns=(ready_ns - sim.now) + config.retransmit_timeout_ns,
                )
                return
            counters.retransmissions += len(batch)
            if device.recorder is not None:
                device.recorder.instant(
                    device.name, "wire-out", "retransmit", ready_ns,
                    {"batch": batch.batch_id, "attempt": attempt + 1},
                )
            sim.call_at(
                ready_ns + config.retransmit_timeout_ns,
                self._retransmit,
                (batch, attempt + 1),
            )
            return
        sim.call_at(ready_ns + delay, remote.responder.handle, batch)

    def _retransmit(self, pair) -> None:
        batch, attempt = pair
        self._transmit(batch, self.device.sim.now, attempt)


class ResponderEngine:
    """Inbound execution pipeline of a (memory) blade's RNIC.

    The paper confirms the outbound/responder path does not degrade with
    QP count (§4.1 "Resource Allocation in Memory Blades"), so this engine
    has no cache model — just a flat rate and the bandwidth ceiling, plus
    the Optane write penalty for persistent regions.
    """

    def __init__(self, device):
        self.device = device
        self.busy_until = 0.0

    def handle(self, batch: WorkBatch) -> None:
        device = self.device
        sim = device.sim
        config = device.config
        n = len(batch)

        if not device.online:
            # The blade died while the request was in flight: blackhole.
            # The requester surfaces completion-with-error after its
            # detection timeout.
            origin = batch.qp.device
            origin.fail_batch(
                batch,
                qpmod.WorkRequest.STATUS_REMOTE_ABORT,
                delay_ns=origin.config.crash_detect_ns,
            )
            return

        if batch.wrs[0].opcode == qpmod.AM_SEND:
            # Active messages pay the same reception pipeline, then hand
            # off to the blade-side handler runtime (created on first AM;
            # one-sided runs never allocate it).
            self._handle_am(batch)
            return

        per_wr_ns = config.responder_service_ns
        bandwidth_ns = batch.wire_bytes / config.network_bytes_per_ns
        nvm_penalty = 0.0
        odp_penalty = 0.0
        storage = device.storage
        if storage is not None:
            for wr in batch.wrs:
                # The penalty applies when any part of the written span
                # lands in NVM, not just the first byte.
                if wr.opcode == qpmod.WRITE and storage.is_persistent(
                    offset_of(wr.remote_addr), wr.size
                ):
                    nvm_penalty += config.nvm_write_extra_ns
            odp = device.odp
            if odp is None and (
                storage.unpinned_regions or config.pinned_ratio < 1.0
            ):
                odp = device.ensure_odp()
            if odp is not None:
                odp_penalty = odp.charge(batch, sim.now)

        origin_tracer = batch.qp.device.tracer
        if origin_tracer is not None:
            origin_tracer.record(batch.batch_id, "remote_start", sim.now)
        start = max(sim.now, self.busy_until)
        finish = (
            start + max(batch.wire_wrs * per_wr_ns, bandwidth_ns)
            + nvm_penalty + odp_penalty
        )
        self.busy_until = finish
        device.counters.responder_busy_ns += finish - start
        sim.call_at(finish, self._execute_and_reply, batch)

    def _handle_am(self, batch: WorkBatch) -> None:
        """Receive an active-message batch and admit it to the handler
        runtime (see :mod:`repro.rnic.offload`)."""
        device = self.device
        sim = device.sim
        config = device.config
        origin_tracer = batch.qp.device.tracer
        if origin_tracer is not None:
            origin_tracer.record(batch.batch_id, "remote_start", sim.now)
        per_wr_ns = config.responder_service_ns
        bandwidth_ns = batch.wire_bytes / config.network_bytes_per_ns
        start = max(sim.now, self.busy_until)
        ready = start + max(batch.wire_wrs * per_wr_ns, bandwidth_ns)
        self.busy_until = ready
        device.counters.responder_busy_ns += ready - start
        runtime = device.offload
        if runtime is None:
            runtime = device.ensure_offload()
        runtime.admit(batch, ready)

    def _execute_and_reply(self, batch: WorkBatch) -> None:
        device = self.device
        if not device.online:
            # Crash landed between queueing and execution: nothing ran.
            origin = batch.qp.device
            origin.fail_batch(
                batch,
                qpmod.WorkRequest.STATUS_REMOTE_ABORT,
                delay_ns=origin.config.crash_detect_ns,
            )
            return
        storage = device.storage
        if storage is None:
            raise RuntimeError(f"{device.name}: one-sided op targets a blade without memory")
        enforce = device.config.enforce_protection
        for wr in batch.wrs:
            if enforce and not self._access_allowed(storage, wr):
                wr.status = wr.STATUS_ACCESS_ERROR
                device.counters.protection_faults += 1
                continue
            self._execute(storage, wr)
        device.counters.responder_ops += len(batch)
        origin = batch.qp.device
        if origin.tracer is not None:
            origin.tracer.record(batch.batch_id, "executed", device.sim.now)
        self.send_response(batch)

    def send_response(self, batch: WorkBatch) -> None:
        """Send a handled batch's response back to its origin (also the
        return path for active messages and handler-queue bounces)."""
        device = self.device
        origin = batch.qp.device
        sim = device.sim
        # The return direction carries the *response* payload (READ data /
        # atomic results, or just an ack for WRITEs) — not the
        # request-side wire bytes.
        send_ns = sim.now
        attempt = 0
        while True:
            delay, dropped, duplicated = device.fabric.transit(
                batch.response_bytes, send_ns, device.node_id, origin.node_id
            )
            if duplicated:
                origin.counters.wasted_wire_bytes += batch.response_bytes
            if not dropped:
                break
            # A lost ack/completion is recovered by a PSN-coordinated
            # retransmit: the operation is NOT re-executed (duplicate
            # requests are filtered by sequence number); the requester
            # pays the ack timeout plus the resent message's transit and
            # wire bytes.  Like the request direction, the transport
            # gives up after transport_retry_limit resends.
            origin.counters.wasted_wire_bytes += batch.response_bytes
            if attempt >= origin.config.transport_retry_limit:
                origin.fail_batch(
                    batch,
                    qpmod.WorkRequest.STATUS_RETRY_EXCEEDED,
                    delay_ns=(send_ns - sim.now)
                    + origin.config.retransmit_timeout_ns,
                )
                return
            origin.counters.retransmissions += len(batch)
            if origin.recorder is not None:
                origin.recorder.instant(
                    origin.name, "wire-back", "retransmit", send_ns,
                    {"batch": batch.batch_id, "lost": "ack",
                     "attempt": attempt + 1},
                )
            send_ns += origin.config.retransmit_timeout_ns
            attempt += 1
        sim.call_at(send_ns + delay, origin.complete, batch)

    @staticmethod
    def _access_allowed(storage, wr) -> bool:
        """The MPT security check: the access must land inside one
        registered remote-access region."""
        region = storage.find_region(offset_of(wr.remote_addr), wr.size)
        return region is not None and region.remote_access

    @staticmethod
    def _execute(storage, wr) -> None:
        offset = offset_of(wr.remote_addr)
        if blade_of(wr.remote_addr) != storage.blade_id:
            raise RuntimeError(
                f"WR routed to blade {storage.blade_id} but addressed to "
                f"blade {blade_of(wr.remote_addr)}"
            )
        if wr.opcode == qpmod.READ:
            wr.result = storage.read(offset, wr.size)
        elif wr.opcode == qpmod.WRITE:
            storage.write(offset, wr.payload)
            wr.result = len(wr.payload)
        elif wr.opcode == qpmod.CAS:
            wr.result = storage.compare_and_swap(offset, wr.compare, wr.swap)
        elif wr.opcode == qpmod.FAA:
            wr.result = storage.fetch_and_add(offset, wr.delta)
        else:  # pragma: no cover - guarded in WorkRequest
            raise ValueError(wr.opcode)
