"""QP allocation policies evaluated in §3.1 (Figure 3).

1. Shared QP        — all threads share a single QP per remote blade.
2. Multiplexed QP   — each QP is shared by ``q`` threads.
3. Per-thread QP    — each thread owns a QP per remote blade; the driver's
                      default round-robin doorbell mapping applies.
4. Per-thread ctx   — each thread opens a private device context (own
                      doorbells, but duplicated MRs → MTT/MPT thrashing).

SMART's per-thread-doorbell allocation is the fourth curve of Figure 3 and
lives in :mod:`repro.core.context` (it is part of the contribution, not a
baseline).
"""

from __future__ import annotations

import math
from typing import List

from repro.sim.resources import SpinLock
from repro.cluster import Node


class ConnectionPolicy:
    """Sets up ``thread.qps`` for every thread of a compute node."""

    name = "abstract"

    def connect(self, compute_node: Node, memory_nodes: List[Node]) -> None:
        raise NotImplementedError


class SharedQpPolicy(ConnectionPolicy):
    """One QP per remote blade, shared by every thread [Infiniswap]."""

    name = "shared-qp"

    def connect(self, compute_node: Node, memory_nodes: List[Node]) -> None:
        context = compute_node.device.open_context()
        context.register_mr()
        for remote in memory_nodes:
            lock = SpinLock(
                compute_node.sim,
                name=f"qp-shared-{remote.node_id}",
                bounce_ns=compute_node.config.doorbell_bounce_ns,
                bounce_cap=compute_node.config.doorbell_bounce_cap,
            )
            qp = context.create_qp(remote, share_lock=lock)
            for thread in compute_node.threads:
                thread.qps[remote.node_id] = qp


class MultiplexedQpPolicy(ConnectionPolicy):
    """Each QP shared by ``threads_per_qp`` threads [FaRM, LITE]."""

    def __init__(self, threads_per_qp: int = 4):
        if threads_per_qp < 1:
            raise ValueError("threads_per_qp must be >= 1")
        self.threads_per_qp = threads_per_qp
        self.name = f"multiplexed-qp(q={threads_per_qp})"

    def connect(self, compute_node: Node, memory_nodes: List[Node]) -> None:
        context = compute_node.device.open_context()
        context.register_mr()
        threads = compute_node.threads
        groups = math.ceil(len(threads) / self.threads_per_qp)
        for remote in memory_nodes:
            qps = []
            for g in range(groups):
                lock = SpinLock(
                    compute_node.sim,
                    name=f"qp-mux-{remote.node_id}-{g}",
                    bounce_ns=compute_node.config.doorbell_bounce_ns,
                    bounce_cap=compute_node.config.doorbell_bounce_cap,
                )
                qps.append(context.create_qp(remote, share_lock=lock))
            for index, thread in enumerate(threads):
                thread.qps[remote.node_id] = qps[index // self.threads_per_qp]


class PerThreadQpPolicy(ConnectionPolicy):
    """A dedicated QP per thread; default doorbell mapping [Sherman, FORD].

    This is the policy whose throughput collapses past ~32 threads: with
    16 default doorbells, threads beyond the 4 low-latency ones share the
    12 medium-latency doorbells round-robin.
    """

    name = "per-thread-qp"

    def connect(self, compute_node: Node, memory_nodes: List[Node]) -> None:
        context = compute_node.device.open_context()
        context.register_mr()
        for thread in compute_node.threads:
            for remote in memory_nodes:
                thread.qps[remote.node_id] = context.create_qp(remote)


class PerThreadContextPolicy(ConnectionPolicy):
    """A private device context (and doorbells) per thread [X-RDMA].

    Avoids doorbell sharing but registers MRs once per context, inflating
    the MTT/MPT tables and degrading the translation cache (§4.1).
    """

    name = "per-thread-context"

    def connect(self, compute_node: Node, memory_nodes: List[Node]) -> None:
        for thread in compute_node.threads:
            context = compute_node.device.open_context()
            context.register_mr()
            for remote in memory_nodes:
                thread.qps[remote.node_id] = context.create_qp(remote)
