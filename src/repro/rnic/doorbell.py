"""Doorbell registers (UARs) and their spinlocks.

Figure 2 of the paper: a default mlx5 context exposes 16 doorbells — 4
low-latency ones that are each *dedicated* to the first QPs created, and
12 medium-latency ones that later QPs share round-robin.  Every doorbell
update is protected by a pthread spinlock in the driver, so two threads
whose QPs landed on the same doorbell contend implicitly.
"""

from __future__ import annotations

from typing import List

from repro.sim import Simulator, SpinLock
from repro.rnic.config import RnicConfig

LOW_LATENCY = "low-latency"
MEDIUM_LATENCY = "medium-latency"

#: opcodes whose adjacent WRs RDMAbox-style merging may fuse (atomics
#: never merge — each needs its own execute-and-reply).  String literals
#: mirror ``repro.rnic.qp.READ``/``WRITE``; importing them here would
#: create an import cycle (qp imports this module's planner).
_MERGEABLE_OPCODES = ("read", "write")


def plan_merges(wrs) -> List[int]:
    """RDMAbox-style adjacent-WR merge plan for one posted batch.

    Returns the sizes of the wire-message groups, in post order: each
    maximal run of consecutive WRs with the same mergeable opcode whose
    remote addresses are contiguous (``next.remote_addr == prev end``)
    becomes one group — one WQE copied under the doorbell lock, one wire
    message, one header.  Non-mergeable WRs (atomics) and discontiguous
    neighbours each form a singleton group.  ``sum(plan) == len(wrs)``
    always holds; an unmergeable batch returns ``[1] * len(wrs)``.
    """
    groups: List[int] = []
    run = 1
    prev = wrs[0]
    for wr in wrs[1:]:
        if (
            wr.opcode == prev.opcode
            and wr.opcode in _MERGEABLE_OPCODES
            and wr.remote_addr == prev.remote_addr + prev.size
        ):
            run += 1
        else:
            groups.append(run)
            run = 1
        prev = wr
    groups.append(run)
    return groups


class Doorbell:
    """One UAR doorbell register."""

    def __init__(self, sim: Simulator, config: RnicConfig, index: int, kind: str):
        self.index = index
        self.kind = kind
        self.lock = SpinLock(
            sim,
            name=f"db{index}",
            bounce_ns=config.doorbell_bounce_ns,
            bounce_cap=config.doorbell_bounce_cap,
        )
        self.bound_qps = 0
        self.rings = 0
        #: distinct threads that have rung this doorbell; the spinlock's
        #: cache line is shared by all of them, so every acquisition pays
        #: a bounce per *sharer*, not just per queued waiter
        self.users = set()

    def note_user(self, thread_id: int) -> None:
        self.users.add(thread_id)

    def held_cost_ns(self, config, n_wrs: int) -> float:
        """Time spent holding this doorbell's spinlock for one ring of
        ``n_wrs`` work requests."""
        sharers = min(max(len(self.users) - 1, 0), config.doorbell_bounce_cap)
        per_wqe = config.wqe_under_lock_ns * (1.0 + config.wqe_share_factor * sharers)
        return config.doorbell_mmio_ns + config.doorbell_share_ns * sharers + per_wqe * n_wrs

    def __repr__(self) -> str:
        return f"Doorbell({self.index}, {self.kind}, qps={self.bound_qps})"


class DoorbellAllocator:
    """The driver's QP -> doorbell mapping for one device context.

    Default policy (``total_uuars`` = 16): the first ``low_latency_uars``
    QPs each get a dedicated low-latency doorbell; every later QP is
    assigned to a medium-latency doorbell round-robin.  The mapping is
    deterministic, which is precisely the property SMART exploits to bind
    each thread's QPs to its own doorbell (§4.1).
    """

    def __init__(self, sim: Simulator, config: RnicConfig, total_uuars: int):
        if total_uuars < config.low_latency_uars + 1:
            raise ValueError(
                f"total_uuars={total_uuars} below minimum "
                f"{config.low_latency_uars + 1}"
            )
        if total_uuars > config.max_uars:
            raise ValueError(
                f"total_uuars={total_uuars} exceeds device limit {config.max_uars}"
            )
        self.config = config
        self.doorbells: List[Doorbell] = []
        for i in range(total_uuars):
            kind = LOW_LATENCY if i < config.low_latency_uars else MEDIUM_LATENCY
            self.doorbells.append(Doorbell(sim, config, i, kind))
        self._next_medium = config.low_latency_uars
        self._created_qps = 0

    @property
    def medium_count(self) -> int:
        return len(self.doorbells) - self.config.low_latency_uars

    def peek_next(self) -> Doorbell:
        """The doorbell the *next* created QP will be bound to.

        SMART relies on this determinism: "before creating a QP, we can
        know which doorbell register it will be associated with" (§4.1).
        """
        if self._created_qps < self.config.low_latency_uars:
            return self.doorbells[self._created_qps]
        return self.doorbells[self._next_medium]

    def bind_next(self) -> Doorbell:
        """Assign a doorbell to a newly created QP (driver behaviour)."""
        doorbell = self.peek_next()
        if doorbell.kind == MEDIUM_LATENCY:
            self._advance_medium()
        self._created_qps += 1
        doorbell.bound_qps += 1
        return doorbell

    def _advance_medium(self) -> None:
        low = self.config.low_latency_uars
        self._next_medium += 1
        if self._next_medium >= len(self.doorbells):
            self._next_medium = low

    def skip_to_fresh_medium(self) -> Doorbell:
        """SMART's trick: advance the round-robin cursor until the upcoming
        medium-latency doorbell has no QPs bound, then return it.

        With ``total_uuars`` >= thread count + 4 this gives every thread an
        exclusive doorbell without any driver API for explicit binding.
        """
        for _ in range(self.medium_count):
            candidate = self.doorbells[self._next_medium]
            if candidate.bound_qps == 0:
                return candidate
            self._advance_medium()
        # All mediums occupied: fall back to plain round-robin sharing
        # (the paper's footnote 4: share when DBs are insufficient).
        return self.doorbells[self._next_medium]

    def bind_doorbell(self, doorbell: Doorbell) -> Doorbell:
        """Bind a QP to a specific doorbell (thread-aware allocation)."""
        self._created_qps += 1
        doorbell.bound_qps += 1
        return doorbell
