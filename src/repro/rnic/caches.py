"""On-chip cache models: WQE cache and MTT/MPT translation cache.

Vendors keep the actual sizes and replacement policies confidential
(§3.2), so both models are behavioural fits to the paper's measurements
rather than structural SRAM simulations:

* WQE cache — per-WR miss probability is a convex function of the number
  of outstanding work requests (OWRs) on the device.  Below capacity the
  working set fits and misses are negligible; above it, misses climb
  toward 1 with shape exponent ``wqe_miss_shape``.
* MTT/MPT cache — hit ratio depends on the number of device contexts
  (each context registers its own MRs); one shared context hits >95%,
  many contexts decay toward 70% (§2.2).

ODP interaction: a page fault on an on-demand-paged MR (see
:mod:`repro.rnic.odp`) means the NIC had no valid translation, so every
fault is *by definition* an MTT miss — the responder bumps the device's
``mtt_lookups``/``mtt_miss_wrs`` counters per fault on top of the curves
here, which stay responsible only for steady-state (pinned/resident)
translation behaviour.

Both models are pure functions of an integer operating point (the
outstanding-WR count / the context count), which the requester engine
re-evaluates on every submitted batch.  The evaluations are therefore
memoized per operating point: the memo can never change a result, it
only skips recomputing the same ``pow()``-based curve millions of times
per run (see docs/MODEL.md, "Performance of the simulator itself").
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.rnic.config import RnicConfig


class WqeCacheModel:
    """Miss-rate and cost model for the WQE cache."""

    def __init__(self, config: RnicConfig):
        self._config = config
        self._memo: Dict[int, Tuple[float, float, float]] = {}

    def lookup(self, outstanding: int) -> Tuple[float, float, float]:
        """Memoized ``(miss_rate, service_multiplier, dma_bytes_per_wr)``.

        The three curves share the same overflow fraction, so the hot
        path computes it once per distinct OWR count and derives all
        three values from it.
        """
        cached = self._memo.get(outstanding)
        if cached is None:
            cached = self._evaluate(outstanding)
            self._memo[outstanding] = cached
        return cached

    def _evaluate(self, outstanding: int) -> Tuple[float, float, float]:
        config = self._config
        capacity = config.wqe_cache_capacity
        base = config.wr_base_dma_bytes
        if outstanding <= capacity or outstanding <= 0:
            return (0.0, 1.0, base)
        overflow = 1.0 - capacity / outstanding
        miss = overflow ** config.wqe_miss_shape
        multiplier = 1.0 + config.wqe_miss_penalty * miss
        dma = base + config.wqe_miss_dma_bytes * overflow
        return (miss, multiplier, dma)

    def miss_rate(self, outstanding: int) -> float:
        """Per-WR probability of a WQE fetch missing to host DRAM."""
        return self.lookup(outstanding)[0]

    def service_multiplier(self, outstanding: int) -> float:
        """Inflation of per-WQE processing time due to PCIe DMA re-reads."""
        return self.lookup(outstanding)[1]

    def dma_bytes_per_wr(self, outstanding: int) -> float:
        """Host DRAM traffic per WR (the Fig-4b metric).

        Traffic grows with the *linear* overflow fraction: every WR whose
        WQE was evicted is re-fetched over PCIe exactly once.
        """
        return self.lookup(outstanding)[2]


class MttCacheModel:
    """Hit-ratio model for the MTT/MPT translation cache."""

    def __init__(self, config: RnicConfig):
        self._config = config
        self._memo: Dict[int, Tuple[float, float]] = {}

    def lookup(self, context_count: int) -> Tuple[float, float]:
        """Memoized ``(hit_ratio, service_multiplier)`` for one context count."""
        cached = self._memo.get(context_count)
        if cached is None:
            cached = self._evaluate(context_count)
            self._memo[context_count] = cached
        return cached

    def _evaluate(self, context_count: int) -> Tuple[float, float]:
        if context_count <= 0:
            raise ValueError("context_count must be >= 1")
        config = self._config
        decayed = config.mtt_shared_hit - config.mtt_hit_decay_per_context * (
            context_count - 1
        )
        hit = max(config.mtt_hit_floor, decayed)
        # The baseline (one context, 95% hit) is folded into ``max_iops``,
        # so only the *excess* miss rate costs extra.
        baseline_miss = 1.0 - config.mtt_shared_hit
        excess = max(0.0, (1.0 - hit) - baseline_miss)
        multiplier = 1.0 + config.mtt_miss_penalty * excess
        return (hit, multiplier)

    def hit_ratio(self, context_count: int) -> float:
        return self.lookup(context_count)[0]

    def service_multiplier(self, context_count: int) -> float:
        """Inflation relative to the shared-context baseline."""
        return self.lookup(context_count)[1]
