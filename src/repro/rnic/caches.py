"""On-chip cache models: WQE cache and MTT/MPT translation cache.

Vendors keep the actual sizes and replacement policies confidential
(§3.2), so both models are behavioural fits to the paper's measurements
rather than structural SRAM simulations:

* WQE cache — per-WR miss probability is a convex function of the number
  of outstanding work requests (OWRs) on the device.  Below capacity the
  working set fits and misses are negligible; above it, misses climb
  toward 1 with shape exponent ``wqe_miss_shape``.
* MTT/MPT cache — hit ratio depends on the number of device contexts
  (each context registers its own MRs); one shared context hits >95%,
  many contexts decay toward 70% (§2.2).
"""

from __future__ import annotations

from repro.rnic.config import RnicConfig


class WqeCacheModel:
    """Miss-rate and cost model for the WQE cache."""

    def __init__(self, config: RnicConfig):
        self._config = config

    def miss_rate(self, outstanding: int) -> float:
        """Per-WR probability of a WQE fetch missing to host DRAM."""
        capacity = self._config.wqe_cache_capacity
        if outstanding <= capacity or outstanding <= 0:
            return 0.0
        overflow = 1.0 - capacity / outstanding
        return overflow ** self._config.wqe_miss_shape

    def service_multiplier(self, outstanding: int) -> float:
        """Inflation of per-WQE processing time due to PCIe DMA re-reads."""
        return 1.0 + self._config.wqe_miss_penalty * self.miss_rate(outstanding)

    def dma_bytes_per_wr(self, outstanding: int) -> float:
        """Host DRAM traffic per WR (the Fig-4b metric).

        Traffic grows with the *linear* overflow fraction: every WR whose
        WQE was evicted is re-fetched over PCIe exactly once.
        """
        capacity = self._config.wqe_cache_capacity
        base = self._config.wr_base_dma_bytes
        if outstanding <= capacity or outstanding <= 0:
            return base
        overflow = 1.0 - capacity / outstanding
        return base + self._config.wqe_miss_dma_bytes * overflow


class MttCacheModel:
    """Hit-ratio model for the MTT/MPT translation cache."""

    def __init__(self, config: RnicConfig):
        self._config = config

    def hit_ratio(self, context_count: int) -> float:
        if context_count <= 0:
            raise ValueError("context_count must be >= 1")
        config = self._config
        decayed = config.mtt_shared_hit - config.mtt_hit_decay_per_context * (
            context_count - 1
        )
        return max(config.mtt_hit_floor, decayed)

    def service_multiplier(self, context_count: int) -> float:
        """Inflation relative to the shared-context baseline.

        The baseline (one context, 95% hit) is folded into ``max_iops``, so
        only the *excess* miss rate costs extra.
        """
        config = self._config
        baseline_miss = 1.0 - config.mtt_shared_hit
        miss = 1.0 - self.hit_ratio(context_count)
        excess = max(0.0, miss - baseline_miss)
        return 1.0 + config.mtt_miss_penalty * excess
