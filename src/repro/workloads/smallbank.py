"""SmallBank: the banking OLTP benchmark (85% read-write transactions).

Six transaction profiles over two tables (savings, checking), both keyed
by account id, with the H-Store mix the paper cites: Amalgamate 15%,
Balance 15%, DepositChecking 15%, SendPayment 25%, TransactSavings 15%,
WriteCheck 15% — i.e. 85% of transactions update at least one record.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.apps.ford.server import DtxServer, TableInfo
from repro.apps.ford.txn import Aborted, Transaction
from repro.sim.rng import ZipfianGenerator

_U64 = struct.Struct("<q")  # balances are signed

AMALGAMATE = "amalgamate"
BALANCE = "balance"
DEPOSIT_CHECKING = "deposit_checking"
SEND_PAYMENT = "send_payment"
TRANSACT_SAVINGS = "transact_savings"
WRITE_CHECK = "write_check"

MIX = (
    (AMALGAMATE, 0.15),
    (BALANCE, 0.15),
    (DEPOSIT_CHECKING, 0.15),
    (SEND_PAYMENT, 0.25),
    (TRANSACT_SAVINGS, 0.15),
    (WRITE_CHECK, 0.15),
)

INITIAL_BALANCE = 10_000


@dataclass
class SmallBankTables:
    savings: TableInfo
    checking: TableInfo


def setup(server: DtxServer, accounts: int = 100_000) -> SmallBankTables:
    """Create and populate both tables."""
    initial = _U64.pack(INITIAL_BALANCE)
    savings = server.create_table("savings", accounts, 8, initial_payload=initial)
    checking = server.create_table("checking", accounts, 8, initial_payload=initial)
    return SmallBankTables(savings, checking)


def _bal(payload: bytes) -> int:
    return _U64.unpack(payload)[0]


def transaction_stream(
    accounts: int, seed: int, theta: float = 0.9
) -> Iterator[Tuple[str, Tuple[int, ...], int]]:
    """Infinite stream of (profile, account ids, amount)."""
    rng = random.Random(seed)
    keygen = ZipfianGenerator(accounts, theta=theta, seed=seed)
    while True:
        draw = rng.random()
        cumulative = 0.0
        profile = MIX[-1][0]
        for name, weight in MIX:
            cumulative += weight
            if draw < cumulative:
                profile = name
                break
        a1 = keygen.next()
        a2 = keygen.next()
        while a2 == a1:
            a2 = keygen.next()
        amount = rng.randrange(1, 100)
        yield (profile, (a1, a2), amount)


def run_profile(
    txn: Transaction, tables: SmallBankTables, profile: str,
    accounts: Tuple[int, ...], amount: int,
):
    """Generator: execute one SmallBank transaction body on ``txn``."""
    a1, a2 = accounts
    savings, checking = tables.savings, tables.checking
    if profile == AMALGAMATE:
        sv = _bal((yield from txn.read_for_update(savings, a1)))
        ck = _bal((yield from txn.read_for_update(checking, a1)))
        ck2 = _bal((yield from txn.read_for_update(checking, a2)))
        txn.write(savings, a1, _U64.pack(0))
        txn.write(checking, a1, _U64.pack(0))
        txn.write(checking, a2, _U64.pack(ck2 + sv + ck))
        return sv + ck
    if profile == BALANCE:
        sv = _bal((yield from txn.read(savings, a1)))
        ck = _bal((yield from txn.read(checking, a1)))
        return sv + ck
    if profile == DEPOSIT_CHECKING:
        ck = _bal((yield from txn.read_for_update(checking, a1)))
        txn.write(checking, a1, _U64.pack(ck + amount))
        return ck + amount
    if profile == SEND_PAYMENT:
        ck1 = _bal((yield from txn.read_for_update(checking, a1)))
        if ck1 < amount:
            raise Aborted("insufficient funds", retry=False)
        ck2 = _bal((yield from txn.read_for_update(checking, a2)))
        txn.write(checking, a1, _U64.pack(ck1 - amount))
        txn.write(checking, a2, _U64.pack(ck2 + amount))
        return amount
    if profile == TRANSACT_SAVINGS:
        sv = _bal((yield from txn.read_for_update(savings, a1)))
        if sv + amount < 0:
            raise Aborted("negative savings", retry=False)
        txn.write(savings, a1, _U64.pack(sv + amount))
        return sv + amount
    if profile == WRITE_CHECK:
        sv = _bal((yield from txn.read(savings, a1)))
        ck = _bal((yield from txn.read_for_update(checking, a1)))
        fee = amount + (1 if sv + ck < amount else 0)
        txn.write(checking, a1, _U64.pack(ck - fee))
        return fee
    raise ValueError(f"unknown profile {profile!r}")


def total_money(server: DtxServer, tables: SmallBankTables, accounts: int) -> int:
    """Sum of all balances on the primary replicas (invariant checking).

    Only SendPayment-neutral flows preserve the total; Deposit/Transact/
    WriteCheck change it by their amounts, so tests use targeted mixes.
    """
    total = 0
    for table in (tables.savings, tables.checking):
        for key in range(accounts):
            addr = table.primary_addr(key)
            blade_id = (addr >> 48) - 1
            offset = (addr & ((1 << 48) - 1)) + 16
            storage = next(
                n.storage for n in server.memory_nodes if n.node_id == blade_id
            )
            total += _U64.unpack(storage.read(offset, 8))[0]
    return total
