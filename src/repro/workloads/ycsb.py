"""YCSB-style key-value workloads (§6.2.1).

The paper evaluates three read/update mixes over Zipfian-distributed keys
(θ = 0.99, "more common in production environments"), with 8-byte keys and
8-byte values:

* write-heavy — 50% updates, 50% lookups;
* read-heavy  —  5% updates, 95% lookups;
* read-only   — 100% lookups.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.sim.rng import ScrambledZipfianGenerator, UniformGenerator

READ = "read"
UPDATE = "update"
INSERT = "insert"

Op = Tuple[str, int, int]  # (op, key, value)

#: the suffix :meth:`YcsbWorkload.with_theta` appends to derived names
_THETA_SUFFIX = re.compile(r"\(theta=[^)]*\)$")


@dataclass(frozen=True)
class YcsbWorkload:
    """A read/update/insert mix over a Zipfian key popularity."""

    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float = 0.0
    theta: float = 0.99

    def __post_init__(self):
        total = self.read_fraction + self.update_fraction + self.insert_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions sum to {total}, expected 1.0")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")

    def stream(self, item_count: int, seed: int) -> Iterator[Op]:
        """An infinite per-coroutine operation stream."""
        rng = random.Random(seed)
        if self.theta > 0:
            keygen = ScrambledZipfianGenerator(item_count, self.theta, seed=seed)
        else:
            keygen = UniformGenerator(item_count, seed=seed)
        next_insert_key = item_count + (seed << 24)
        while True:
            draw = rng.random()
            if draw < self.read_fraction:
                yield (READ, keygen.next(), 0)
            elif draw < self.read_fraction + self.update_fraction:
                yield (UPDATE, keygen.next(), rng.getrandbits(32))
            else:
                yield (INSERT, next_insert_key, rng.getrandbits(32))
                next_insert_key += 1

    def with_theta(self, theta: float) -> "YcsbWorkload":
        # Strip an existing "(theta=x)" suffix so repeated calls derive
        # from the base name instead of nesting "name(theta=x)(theta=y)".
        base = _THETA_SUFFIX.sub("", self.name)
        return YcsbWorkload(
            f"{base}(theta={theta})",
            self.read_fraction,
            self.update_fraction,
            self.insert_fraction,
            theta,
        )

    @staticmethod
    def load_items(item_count: int, seed: int = 0):
        """The (key, value) pairs loaded before each experiment."""
        rng = random.Random(seed)
        return ((key, rng.getrandbits(32)) for key in range(item_count))


WRITE_HEAVY = YcsbWorkload("write-heavy", read_fraction=0.5, update_fraction=0.5)
READ_HEAVY = YcsbWorkload("read-heavy", read_fraction=0.95, update_fraction=0.05)
READ_ONLY = YcsbWorkload("read-only", read_fraction=1.0, update_fraction=0.0)
UPDATE_ONLY = YcsbWorkload("update-only", read_fraction=0.0, update_fraction=1.0)
