"""Seeded graph generators for the near-memory offload workload.

Two families, both deterministic functions of their spec:

* **uniform** — each directed edge picks its endpoints uniformly; degree
  distribution is tightly concentrated around the edge factor.
* **R-MAT** — the recursive-matrix generator (Chakrabarti et al.), the
  Graph500 kernel's skewed family: a ``skew`` knob in ``[0, 1)`` steers
  probability mass into the top-left quadrant, producing power-law-ish
  in-degrees whose hubs are what make one-sided CAS accumulation burn
  retries at high contention.

Invariants the generators guarantee (property-tested in
``tests/test_graph_properties.py``):

* no self-loops, no duplicate edges;
* adjacency lists sorted ascending;
* bit-identical output for a fixed spec (all randomness flows through
  one seeded ``random.Random``);
* generation is independent of any blade partitioning — layout is a
  pure function of the vertex id (see :func:`vertex_owner`), so the
  blade-resident bytes of a vertex do not depend on how many blades the
  graph is spread across.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, replace
from typing import List

_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class GraphSpec:
    """One reproducible graph instance."""

    name: str
    vertex_count: int
    degree: int
    """Edge factor: directed edge count targets ``vertex_count * degree``."""
    kind: str = "uniform"
    """``"uniform"`` or ``"rmat"``."""
    skew: float = 0.0
    """R-MAT skew in ``[0, 1)``; ignored by the uniform family."""
    seed: int = 0

    def __post_init__(self):
        if self.vertex_count < 2:
            raise ValueError("need at least 2 vertices")
        if self.degree < 1:
            raise ValueError("degree must be positive")
        if self.kind not in ("uniform", "rmat"):
            raise ValueError(f"kind must be uniform or rmat, got {self.kind!r}")
        if not 0.0 <= self.skew < 1.0:
            raise ValueError("skew must lie in [0, 1)")

    def with_skew(self, skew: float) -> "GraphSpec":
        kind = "rmat" if skew > 0.0 else "uniform"
        return replace(self, kind=kind, skew=skew)


def rmat_quadrants(skew: float):
    """The (a, b, c, d) quadrant probabilities for one skew setting.

    ``skew=0`` degenerates to the uniform matrix (0.25 each);
    increasing skew moves mass into quadrant ``a`` (hub-hub edges), the
    classic Graph500 parameterization direction (a=0.57 at skew≈0.64).
    """
    a = 0.25 + 0.5 * skew
    rest = 1.0 - a
    b = c = rest * 0.35
    d = rest * 0.30
    return a, b, c, d


def _rmat_endpoint_pair(rng: random.Random, scale: int, a: float, b: float, c: float):
    src = dst = 0
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        r = rng.random()
        if r < a:
            pass
        elif r < a + b:
            dst |= 1
        elif r < a + b + c:
            src |= 1
        else:
            src |= 1
            dst |= 1
    return src, dst


def generate(spec: GraphSpec) -> List[List[int]]:
    """Adjacency lists (sorted, deduplicated, loop-free) for ``spec``.

    The target edge count is ``vertex_count * degree``; dense or highly
    skewed specs may saturate below it (duplicates are discarded), so
    generation stops after a bounded number of attempts rather than
    looping forever on a small vertex set.
    """
    n = spec.vertex_count
    target = n * spec.degree
    rng = random.Random((spec.seed << 20) ^ (n << 4) ^ spec.degree)
    edges = set()
    if spec.kind == "uniform":
        attempts = 0
        while len(edges) < target and attempts < 12 * target:
            attempts += 1
            src = rng.randrange(n)
            dst = rng.randrange(n)
            if src != dst:
                edges.add((src, dst))
    else:
        a, b, c, _d = rmat_quadrants(spec.skew)
        scale = max(1, (n - 1).bit_length())
        side = 1 << scale
        attempts = 0
        # Oversampling bound: the recursive matrix lands outside [0, n)
        # for non-power-of-two n, and hub collisions discard duplicates.
        while len(edges) < target and attempts < 24 * target:
            attempts += 1
            src, dst = _rmat_endpoint_pair(rng, scale, a, b, c)
            if src >= n or dst >= n or src == dst:
                continue
            edges.add((src, dst))
        del side
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for src, dst in sorted(edges):
        adjacency[src].append(dst)
    return adjacency


def edge_count(adjacency: List[List[int]]) -> int:
    return sum(len(neighbors) for neighbors in adjacency)


def in_degrees(adjacency: List[List[int]]) -> List[int]:
    degrees = [0] * len(adjacency)
    for neighbors in adjacency:
        for dst in neighbors:
            degrees[dst] += 1
    return degrees


def top_share(degrees: List[int], fraction: float = 0.05) -> float:
    """Share of all edges owned by the top ``fraction`` of vertices —
    the skew statistic the property tests and the sweep report."""
    total = sum(degrees)
    if total == 0:
        return 0.0
    top = max(1, int(len(degrees) * fraction))
    return sum(sorted(degrees, reverse=True)[:top]) / total


def vertex_owner(vertex: int, memory_blades: int) -> int:
    """Blade index owning ``vertex`` (round-robin by id).

    A pure function of the vertex id so a vertex's blade-resident bytes
    are identical no matter how many blades share the graph."""
    return vertex % memory_blades


def vertex_bytes(vertex: int, adjacency: List[List[int]]) -> bytes:
    """The blade-resident encoding of one vertex's adjacency: an 8-byte
    degree followed by the sorted neighbor ids as u64s.  This is the
    partition-independence contract: the bytes depend only on the
    vertex and the graph, never on the blade layout."""
    neighbors = adjacency[vertex]
    return _U64.pack(len(neighbors)) + b"".join(_U64.pack(v) for v in neighbors)


def checksum_u64s(values) -> int:
    """FNV-1a over a sequence of ints — the bit-equality fingerprint the
    differential tests compare across execution modes."""
    acc = 0xCBF29CE484222325
    for value in values:
        for byte in _U64.pack(value & 0xFFFFFFFFFFFFFFFF):
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
