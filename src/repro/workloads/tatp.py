"""TATP: the telecom OLTP benchmark (80% read-only transactions).

Four tables keyed by subscriber id and the standard seven-profile mix:

* GetSubscriberData 35% (RO), GetNewDestination 10% (RO),
  GetAccessData 35% (RO) — 80% read-only;
* UpdateSubscriberData 2%, UpdateLocation 14%,
  InsertCallForwarding 2%, DeleteCallForwarding 2% — read-write.

Call-forwarding insert/delete toggle an ``active`` flag on preallocated
rows (the fixed-schema equivalent of row insertion, as in FORD's
artifact).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.apps.ford.server import DtxServer, TableInfo
from repro.apps.ford.txn import Aborted, Transaction

_U64 = struct.Struct("<Q")

GET_SUBSCRIBER_DATA = "get_subscriber_data"
GET_NEW_DESTINATION = "get_new_destination"
GET_ACCESS_DATA = "get_access_data"
UPDATE_SUBSCRIBER_DATA = "update_subscriber_data"
UPDATE_LOCATION = "update_location"
INSERT_CALL_FORWARDING = "insert_call_forwarding"
DELETE_CALL_FORWARDING = "delete_call_forwarding"

MIX = (
    (GET_SUBSCRIBER_DATA, 0.35),
    (GET_NEW_DESTINATION, 0.10),
    (GET_ACCESS_DATA, 0.35),
    (UPDATE_SUBSCRIBER_DATA, 0.02),
    (UPDATE_LOCATION, 0.14),
    (INSERT_CALL_FORWARDING, 0.02),
    (DELETE_CALL_FORWARDING, 0.02),
)

SUBSCRIBER_PAYLOAD = 40  # sub_nbr digits + bit/hex/byte fields (scaled)
ACCESS_INFO_PAYLOAD = 16
SPECIAL_FACILITY_PAYLOAD = 16
CALL_FORWARDING_PAYLOAD = 24


@dataclass
class TatpTables:
    subscriber: TableInfo
    access_info: TableInfo
    special_facility: TableInfo
    call_forwarding: TableInfo


def setup(server: DtxServer, subscribers: int = 100_000) -> TatpTables:
    return TatpTables(
        subscriber=server.create_table(
            "subscriber", subscribers, SUBSCRIBER_PAYLOAD,
            initial_payload=b"\x01" * SUBSCRIBER_PAYLOAD,
        ),
        access_info=server.create_table(
            "access_info", subscribers, ACCESS_INFO_PAYLOAD,
            initial_payload=b"\x02" * ACCESS_INFO_PAYLOAD,
        ),
        special_facility=server.create_table(
            "special_facility", subscribers, SPECIAL_FACILITY_PAYLOAD,
            initial_payload=b"\x03" * SPECIAL_FACILITY_PAYLOAD,
        ),
        call_forwarding=server.create_table(
            "call_forwarding", subscribers, CALL_FORWARDING_PAYLOAD,
            initial_payload=b"\x00" * CALL_FORWARDING_PAYLOAD,
        ),
    )


def transaction_stream(
    subscribers: int, seed: int
) -> Iterator[Tuple[str, int, int]]:
    """Infinite stream of (profile, subscriber id, auxiliary value).

    TATP accesses subscribers uniformly (the benchmark's non-uniform
    variant is rarely used and FORD evaluates the uniform one).
    """
    rng = random.Random(seed)
    while True:
        draw = rng.random()
        cumulative = 0.0
        profile = MIX[-1][0]
        for name, weight in MIX:
            cumulative += weight
            if draw < cumulative:
                profile = name
                break
        yield (profile, rng.randrange(subscribers), rng.getrandbits(16))


def run_profile(txn: Transaction, tables: TatpTables, profile: str,
                subscriber: int, aux: int):
    """Generator: execute one TATP transaction body."""
    if profile == GET_SUBSCRIBER_DATA:
        data = yield from txn.read(tables.subscriber, subscriber)
        return data
    if profile == GET_NEW_DESTINATION:
        sf = yield from txn.read(tables.special_facility, subscriber)
        if not sf[0]:
            raise Aborted("special facility inactive", retry=False)
        cf = yield from txn.read(tables.call_forwarding, subscriber)
        return cf
    if profile == GET_ACCESS_DATA:
        return (yield from txn.read(tables.access_info, subscriber))
    if profile == UPDATE_SUBSCRIBER_DATA:
        yield from txn.read_for_update(tables.subscriber, subscriber)
        yield from txn.read_for_update(tables.special_facility, subscriber)
        txn.write(
            tables.subscriber, subscriber,
            _U64.pack(aux) + b"\x01" * (SUBSCRIBER_PAYLOAD - 8),
        )
        txn.write(
            tables.special_facility, subscriber,
            _U64.pack(aux) + b"\x03" * (SPECIAL_FACILITY_PAYLOAD - 8),
        )
        return None
    if profile == UPDATE_LOCATION:
        yield from txn.read_for_update(tables.subscriber, subscriber)
        txn.write(
            tables.subscriber, subscriber,
            _U64.pack(aux) + b"\x01" * (SUBSCRIBER_PAYLOAD - 8),
        )
        return None
    if profile == INSERT_CALL_FORWARDING:
        row = yield from txn.read_for_update(tables.call_forwarding, subscriber)
        if row[0]:
            raise Aborted("call forwarding already present", retry=False)
        txn.write(
            tables.call_forwarding, subscriber,
            b"\x01" + b"\x00" * (CALL_FORWARDING_PAYLOAD - 1),
        )
        return None
    if profile == DELETE_CALL_FORWARDING:
        row = yield from txn.read_for_update(tables.call_forwarding, subscriber)
        if not row[0]:
            raise Aborted("no call forwarding row", retry=False)
        txn.write(
            tables.call_forwarding, subscriber,
            b"\x00" * CALL_FORWARDING_PAYLOAD,
        )
        return None
    raise ValueError(f"unknown profile {profile!r}")
