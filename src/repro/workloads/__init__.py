"""Workload generators: YCSB mixes, SmallBank and TATP."""

from repro.workloads.ycsb import (
    READ_HEAVY,
    READ_ONLY,
    UPDATE_ONLY,
    WRITE_HEAVY,
    YcsbWorkload,
)

__all__ = [
    "READ_HEAVY",
    "READ_ONLY",
    "UPDATE_ONLY",
    "WRITE_HEAVY",
    "YcsbWorkload",
]
