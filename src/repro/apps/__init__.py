"""Disaggregated applications: RACE / FORD / Sherman and their SMART
refactors (SMART-HT / SMART-DTX / SMART-BT)."""
