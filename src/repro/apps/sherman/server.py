"""Server-side setup of the Sherman B+Tree: region carving and bulk load."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.sherman import layout
from repro.cluster import Node
from repro.memory.address import blade_of, make_addr, offset_of
from repro.memory.shard import ShardMap


@dataclass
class TreeMeta:
    """Client bootstrap: where the root pointer and node heaps live."""

    meta_addr: int  # [root_addr u64][height u64][meta_lock u64]
    root_addr: int
    height: int
    #: blade id -> (heap head addr, heap base, heap end)
    heaps: Dict[int, Tuple[int, int, int]]


#: initial fill of bulk-loaded nodes (leaves room for inserts before splits)
BULK_FILL = 0.7


class BTreeServer:
    """Creates and bulk-loads the tree across memory blades."""

    def __init__(self, memory_nodes: Sequence[Node], heap_bytes_per_blade: int = 16 << 20,
                 shard_map: "ShardMap" = None):
        self.memory_nodes = list(memory_nodes)
        # With a shard map, node placement hashes the allocation ordinal
        # through the consistent-hash ring instead of round-robin, so the
        # tree spreads over whatever fleet the ring currently describes.
        self.shard_map = shard_map
        if shard_map is not None:
            known = {n.node_id for n in memory_nodes}
            missing = [b for b in shard_map.ring.members if b not in known]
            if missing:
                raise ValueError(f"shard map references unknown blades {missing}")
        primary = self.memory_nodes[0].storage
        self._meta_region = primary.alloc_region("bt_meta", 24)
        self.heaps: Dict[int, Tuple[int, int, int]] = {}
        for node in self.memory_nodes:
            head = node.storage.alloc_region("bt_heap_head", 8)
            heap = node.storage.alloc_region("bt_heap", heap_bytes_per_blade)
            node.storage.write_u64(head.base, heap.base)
            self.heaps[node.node_id] = (
                make_addr(node.node_id, head.base),
                heap.base,
                heap.end,
            )
        self.root_addr = 0
        self.height = 0
        self._next_blade = 0

    # -- node allocation (setup phase: direct, no RDMA) ------------------------

    def _alloc_node(self) -> int:
        """Place a node on a blade (round-robin, or via the shard map's
        consistent-hash ring when one is attached); returns its global
        address."""
        if self.shard_map is None:
            node = self.memory_nodes[self._next_blade % len(self.memory_nodes)]
        else:
            blade_id = self.shard_map.blade_for_key(self._next_blade)
            node = self.memory_nodes_by_id[blade_id]
        self._next_blade += 1
        storage = node.storage
        head_addr, _, end = self.heaps[node.node_id]
        head_offset = offset_of(head_addr)
        offset = storage.read_u64(head_offset)
        if offset + layout.NODE_BYTES > end:
            raise MemoryError(f"node heap exhausted on blade {node.node_id}")
        storage.write_u64(head_offset, offset + layout.NODE_BYTES)
        return make_addr(node.node_id, offset)

    def _write_node(self, addr: int, node: layout.Node) -> None:
        storage = self.memory_nodes_by_id[blade_of(addr)].storage
        storage.bulk_write(offset_of(addr), node.encode())

    @property
    def memory_nodes_by_id(self) -> Dict[int, Node]:
        return {n.node_id: n for n in self.memory_nodes}

    # -- bulk load ---------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[int, int]]) -> None:
        """Build a balanced tree bottom-up from sorted (key, value) pairs."""
        items = sorted(items)
        if not items:
            raise ValueError("bulk_load requires at least one item")
        per_node = max(2, int(layout.FANOUT * BULK_FILL))

        level_entries: List[Tuple[int, int]] = items
        level = layout.LEAF_LEVEL
        while True:
            chunks = [
                level_entries[i : i + per_node]
                for i in range(0, len(level_entries), per_node)
            ]
            addrs = [self._alloc_node() for _ in chunks]
            parent_entries = []
            for i, chunk in enumerate(chunks):
                node = layout.Node(
                    level=level,
                    fence_low=chunk[0][0] if i > 0 else layout.KEY_MIN,
                    fence_high=(
                        chunks[i + 1][0][0] if i + 1 < len(chunks) else layout.KEY_MAX
                    ),
                    sibling=addrs[i + 1] if i + 1 < len(chunks) else 0,
                    entries=list(chunk),
                )
                self._write_node(addrs[i], node)
                separator = layout.KEY_MIN if i == 0 else chunk[0][0]
                parent_entries.append((separator, addrs[i]))
            if len(chunks) == 1:
                self.root_addr = addrs[0]
                self.height = level
                break
            level_entries = parent_entries
            level += 1

        primary = self.memory_nodes[0].storage
        primary.write_u64(self._meta_region.base, self.root_addr)
        primary.write_u64(self._meta_region.base + 8, self.height)
        primary.write_u64(self._meta_region.base + 16, 0)

    def declare_sanitizer_regions(self, sanitizer) -> None:
        """Teach RDMASan Sherman's protocol.

        Node reads are lockless and version-validated (re-read on a torn
        level/fence), so the heaps and the meta block are
        ``optimistic-read``.  Node locks are NOT declared as a striped
        table: with HOPL the remote lock word's holder is whoever CASed
        it first, while handover passes the write right locally — a
        remote-holder discipline check would be wrong by design.  Writers
        are still serialized (write_sync completes before the release or
        the local handover), which the overlap detector verifies as-is."""
        primary = self.memory_nodes[0]
        sanitizer.set_region_policy(primary.node_id, "bt_meta", "optimistic-read")
        sanitizer.declare_lock_word(primary.node_id, self._meta_region.base + 16)
        for node in self.memory_nodes:
            sanitizer.set_region_policy(node.node_id, "bt_heap", "optimistic-read")

    # -- bootstrap -----------------------------------------------------------------

    def meta(self) -> TreeMeta:
        if not self.root_addr:
            raise RuntimeError("bulk_load the tree before taking meta()")
        return TreeMeta(
            meta_addr=make_addr(self.memory_nodes[0].node_id, self._meta_region.base),
            root_addr=self.root_addr,
            height=self.height,
            heaps=dict(self.heaps),
        )
