"""On-blade layout of Sherman's B+Tree nodes.

Node (1 KB, the size the paper quotes for leaves)::

    header (64 B):
        [lock u64][version u64][level u64][nkeys u64]
        [fence_low u64][fence_high u64][sibling u64][cacheline_versions u64]
    entries (60 x 16 B):
        internal: [separator_key u64][child_addr u64]
        leaf:     [key u64][value u64]

``cacheline_versions`` packs one version byte per 64-byte line of the
entry area (15 lines) — the FaRM-style per-cacheline mechanism Sherman+
retrofits; a writer bumps the lines it touches, so a reader can detect a
torn 1 KB read and retry.

``fence_low`` is inclusive, ``fence_high`` exclusive; a key >= fence_high
lives in the right sibling (B-link invariant).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

NODE_BYTES = 1024
HEADER_BYTES = 64
ENTRY_BYTES = 16
FANOUT = (NODE_BYTES - HEADER_BYTES) // ENTRY_BYTES  # 60
ENTRY_LINES = (NODE_BYTES - HEADER_BYTES) // 64  # 15

KEY_MIN = 0
KEY_MAX = (1 << 64) - 1

_HEADER = struct.Struct("<QQQQQQQQ")
_ENTRY = struct.Struct("<QQ")

LEAF_LEVEL = 0


@dataclass
class Node:
    """A decoded tree node."""

    lock: int = 0
    version: int = 0
    level: int = LEAF_LEVEL
    fence_low: int = KEY_MIN
    fence_high: int = KEY_MAX
    sibling: int = 0
    line_versions: int = 0
    entries: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == LEAF_LEVEL

    @property
    def nkeys(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= FANOUT

    def covers(self, key: int) -> bool:
        return self.fence_low <= key < self.fence_high

    # -- entry access -------------------------------------------------------

    def find_leaf_entry(self, key: int) -> Optional[int]:
        """Index of ``key`` in a leaf, or None."""
        index = self._lower_bound(key)
        if index < len(self.entries) and self.entries[index][0] == key:
            return index
        return None

    def child_for(self, key: int) -> int:
        """Internal node: address of the child covering ``key``."""
        if not self.entries:
            raise ValueError("internal node with no entries")
        index = self._lower_bound(key)
        if index == len(self.entries) or self.entries[index][0] > key:
            index -= 1
        if index < 0:
            raise KeyError(f"key {key} below this node's first separator")
        return self.entries[index][1]

    def insert_sorted(self, key: int, value: int) -> int:
        """Insert (or overwrite) keeping entries sorted; returns the index."""
        index = self._lower_bound(key)
        if index < len(self.entries) and self.entries[index][0] == key:
            self.entries[index] = (key, value)
        else:
            self.entries.insert(index, (key, value))
        return index

    def _lower_bound(self, key: int) -> int:
        lo, hi = 0, len(self.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- versions -------------------------------------------------------------

    def bump_lines(self, first_entry: int, last_entry: int) -> None:
        """Increment the per-cacheline version of touched entry lines."""
        first_line = (first_entry * ENTRY_BYTES) // 64
        last_line = (last_entry * ENTRY_BYTES) // 64
        for line in range(first_line, min(last_line, ENTRY_LINES - 1) + 1):
            shift = line * 4  # 4-bit version per line (15 lines -> 60 bits)
            current = (self.line_versions >> shift) & 0xF
            self.line_versions &= ~(0xF << shift)
            self.line_versions |= ((current + 1) & 0xF) << shift

    # -- wire format --------------------------------------------------------------

    def encode(self) -> bytes:
        if len(self.entries) > FANOUT:
            raise ValueError(f"node over-full: {len(self.entries)} > {FANOUT}")
        buffer = bytearray(NODE_BYTES)
        _HEADER.pack_into(
            buffer,
            0,
            self.lock,
            self.version,
            self.level,
            len(self.entries),
            self.fence_low,
            self.fence_high,
            self.sibling,
            self.line_versions,
        )
        for i, (key, value) in enumerate(self.entries):
            _ENTRY.pack_into(buffer, HEADER_BYTES + i * ENTRY_BYTES, key, value)
        return bytes(buffer)


def decode(data: bytes) -> Node:
    if len(data) != NODE_BYTES:
        raise ValueError(f"expected {NODE_BYTES} bytes, got {len(data)}")
    (lock, version, level, nkeys, low, high, sibling, lines) = _HEADER.unpack_from(
        data, 0
    )
    if nkeys > FANOUT:
        raise ValueError(f"corrupt node: nkeys={nkeys}")
    entries = [
        _ENTRY.unpack_from(data, HEADER_BYTES + i * ENTRY_BYTES) for i in range(nkeys)
    ]
    return Node(lock, version, level, low, high, sibling, lines, entries)


def entry_offset(index: int) -> int:
    """Byte offset of entry ``index`` within its node."""
    return HEADER_BYTES + index * ENTRY_BYTES


def pack_entry(key: int, value: int) -> bytes:
    return _ENTRY.pack(key, value)


def unpack_entry(data: bytes) -> Tuple[int, int]:
    return _ENTRY.unpack(data)
