"""Client-side B+Tree operations over one-sided verbs.

One implementation serves the whole Fig-12 matrix:

* **Sherman+**      — baseline features, no speculative cache;
* **Sherman+ w/SL** — baseline features + speculative lookup;
* **SMART-BT**      — full SMART features + speculative lookup.

Writers synchronize with HOPL (hierarchical on-chip locks): the first
thread of a compute blade acquires the remote lock word with CAS; local
threads queue in blade DRAM and receive the lock by hand-over without any
network traffic (Sherman's key write optimization).  Readers never lock:
B-link sibling pointers plus fence keys make traversals safe against
concurrent splits and stale caches.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

from repro.apps.common import RemoteAllocator
from repro.apps.sherman import layout
from repro.apps.sherman.server import TreeMeta
from repro.core.api import SmartHandle
from repro.memory.address import blade_of


class _LockState:
    __slots__ = ("waiters", "handovers")

    def __init__(self):
        self.waiters = deque()
        self.handovers = 0


class LocalLockTable:
    """HOPL: per-compute-blade local queues in front of remote lock words."""

    def __init__(self, sim, max_handover: int = 64, use_local_queues: bool = True):
        self._sim = sim
        self.max_handover = max_handover
        #: disable to get the naive remote spinlock of §3.3 (ablation)
        self.use_local_queues = use_local_queues
        self._locks: Dict[int, _LockState] = {}
        self.local_handovers = 0
        self.remote_acquires = 0

    def acquire(self, handle: SmartHandle, lock_addr: int):
        """Generator; returns once this coroutine holds the node lock."""
        while True:
            if self.use_local_queues:
                state = self._locks.get(lock_addr)
                if state is not None:
                    # A local thread holds it: queue in DRAM, no network.
                    ticket = self._sim.event()
                    state.waiters.append(ticket)
                    outcome = yield ticket
                    if outcome == "reacquire":
                        continue  # holder released remotely; start over
                    return  # local hand-over: we own the lock now
                self._locks[lock_addr] = _LockState()
            self.remote_acquires += 1
            while True:
                old = yield from handle.backoff_cas_sync(lock_addr, 0, 1)
                if old == 0:
                    return

    def release(self, handle: SmartHandle, lock_addr: int):
        """Generator; hands over locally when possible, else unlocks remote."""
        if self.use_local_queues:
            state = self._locks.get(lock_addr)
            if state is None:
                raise RuntimeError(f"release of unheld lock {lock_addr:#x}")
            if state.waiters and state.handovers < self.max_handover:
                state.handovers += 1
                self.local_handovers += 1
                state.waiters.popleft().fire()
                return
            # Pass any remaining waiters back through the remote path so
            # other compute blades are not starved.
            pending = state.waiters
            del self._locks[lock_addr]
            yield from handle.write_sync(lock_addr, layout.pack_entry(0, 0)[:8])
            for ticket in pending:
                # Losers must re-acquire from scratch.
                ticket.fire("reacquire")
        else:
            yield from handle.write_sync(lock_addr, layout.pack_entry(0, 0)[:8])


class SpeculativeCache:
    """Key -> (leaf address, entry index) cache backing speculative lookup."""

    def __init__(self, capacity: int = 1 << 20):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: int) -> Optional[Tuple[int, int]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        return entry

    def put(self, key: int, leaf_addr: int, index: int) -> None:
        self._entries[key] = (leaf_addr, index)
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def drop(self, key: int) -> None:
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1


class BTreeClient:
    """One client coroutine's view of the tree."""

    MAX_ATTEMPTS = 256

    def __init__(
        self,
        handle: SmartHandle,
        meta: TreeMeta,
        index_cache: Dict[int, layout.Node],
        lock_table: LocalLockTable,
        spec_cache: Optional[SpeculativeCache] = None,
        client_cpu_ns: float = 2000.0,
    ):
        self.handle = handle
        self.meta = meta
        #: compute-blade-shared cache of *internal* nodes
        self.index_cache = index_cache
        self.locks = lock_table
        self.spec_cache = spec_cache
        self.client_cpu_ns = client_cpu_ns
        self._allocators: Dict[int, RemoteAllocator] = {}

    # -- public API -------------------------------------------------------------

    def lookup(self, key: int):
        handle = self.handle
        yield from handle.begin_op()
        yield from handle.thread.compute(self.client_cpu_ns)
        value = yield from self._lookup_inner(key)
        handle.end_op(failed=value is None)
        return value

    def insert(self, key: int, value: int):
        """Upsert (Sherman's insert overwrites an existing key)."""
        handle = self.handle
        yield from handle.begin_op()
        yield from handle.thread.compute(self.client_cpu_ns)
        yield from self._upsert_inner(key, value)
        handle.end_op()
        return True

    update = insert

    def delete(self, key: int):
        handle = self.handle
        yield from handle.begin_op()
        yield from handle.thread.compute(self.client_cpu_ns)
        removed = yield from self._delete_inner(key)
        handle.end_op(failed=not removed)
        return removed

    def range_scan(self, first_key: int, count: int):
        """Read up to ``count`` items with keys >= first_key (leaf chain)."""
        handle = self.handle
        yield from handle.begin_op()
        results: List[Tuple[int, int]] = []
        leaf_addr, leaf = yield from self._find_leaf(first_key)
        while leaf is not None and len(results) < count:
            for k, v in leaf.entries:
                if k >= first_key and len(results) < count:
                    results.append((k, v))
            if not leaf.sibling:
                break
            leaf_addr = leaf.sibling
            leaf = yield from self._fetch_node(leaf_addr)
        handle.end_op()
        return results

    # -- traversal -----------------------------------------------------------------

    def _fetch_node(self, addr: int):
        data = yield from self.handle.read_sync(addr, layout.NODE_BYTES)
        return layout.decode(data)

    def _load_internal(self, addr: int):
        node = self.index_cache.get(addr)
        if node is None:
            node = yield from self._fetch_node(addr)
            if not node.is_leaf:
                self.index_cache[addr] = node
        return node

    def _find_leaf(self, key: int):
        """Descend to the leaf covering ``key``; returns (addr, fresh node).

        Cached internals may be stale after splits; the B-link invariant
        (splits only move keys right) means a rightward sibling walk at
        each level always converges.
        """
        for _attempt in range(self.MAX_ATTEMPTS):
            addr = self.meta.root_addr
            node = yield from self._load_internal(addr)
            while True:
                hops = 0
                while not node.covers(key):
                    self.index_cache.pop(addr, None)  # stale: refetch later
                    if key >= node.fence_high and node.sibling:
                        addr = node.sibling
                        node = (
                            (yield from self._load_internal(addr))
                            if not node.is_leaf
                            else (yield from self._fetch_node(addr))
                        )
                        hops += 1
                        if hops > self.MAX_ATTEMPTS:
                            raise RuntimeError("sibling chain does not converge")
                    else:
                        # key below this subtree: root moved; refresh it.
                        yield from self._refresh_root()
                        node = None
                        break
                if node is None:
                    break  # restart from the (new) root
                if node.is_leaf:
                    return addr, node
                child = node.child_for(key)
                addr = child
                node = yield from self._load_internal(addr)
                if node.is_leaf:
                    # Leaves must be read fresh (the cache never stores
                    # them, _load_internal already fetched remotely).
                    pass
        raise RuntimeError(f"traverse({key}) did not converge")

    def _refresh_root(self):
        data = yield from self.handle.read_sync(self.meta.meta_addr, 16)
        self.meta.root_addr = layout.unpack_entry(data)[0]
        self.meta.height = layout.unpack_entry(data)[1]
        self.index_cache.clear()

    # -- lookup ---------------------------------------------------------------------

    def _lookup_inner(self, key: int):
        if self.spec_cache is not None:
            cached = self.spec_cache.get(key)
            if cached is not None:
                leaf_addr, index = cached
                # Fast path: one small READ instead of the whole leaf.
                data = yield from self.handle.read_sync(
                    leaf_addr + layout.entry_offset(index), layout.ENTRY_BYTES
                )
                stored_key, value = layout.unpack_entry(data)
                if stored_key == key:
                    self.spec_cache.hits += 1
                    return value
                self.spec_cache.drop(key)  # moved by an insert/split
        leaf_addr, leaf = yield from self._find_leaf(key)
        index = leaf.find_leaf_entry(key)
        if index is None:
            return None
        if self.spec_cache is not None:
            self.spec_cache.put(key, leaf_addr, index)
        return leaf.entries[index][1]

    # -- writes --------------------------------------------------------------------------

    def _allocator(self, blade_id: int) -> RemoteAllocator:
        allocator = self._allocators.get(blade_id)
        if allocator is None:
            head_addr, base, end = self.meta.heaps[blade_id]
            allocator = RemoteAllocator(
                self.handle, blade_id, head_addr, base, end,
                chunk_bytes=4 * layout.NODE_BYTES,
            )
            self._allocators[blade_id] = allocator
        return allocator

    def _upsert_inner(self, key: int, value: int):
        handle = self.handle
        for _attempt in range(self.MAX_ATTEMPTS):
            leaf_addr, _ = yield from self._find_leaf(key)
            yield from self.locks.acquire(handle, leaf_addr)
            leaf = yield from self._fetch_node(leaf_addr)  # fresh, under lock
            if not leaf.covers(key):
                yield from self.locks.release(handle, leaf_addr)
                continue  # split raced us; re-traverse
            index = leaf.find_leaf_entry(key)
            if index is not None:
                # In-place update: write just the entry's 16 bytes.
                yield from handle.write_sync(
                    leaf_addr + layout.entry_offset(index),
                    layout.pack_entry(key, value),
                )
                yield from self.locks.release(handle, leaf_addr)
                if self.spec_cache is not None:
                    self.spec_cache.put(key, leaf_addr, index)
                return
            if not leaf.full:
                index = leaf.insert_sorted(key, value)
                leaf.bump_lines(index, leaf.nkeys - 1)
                yield from handle.write_sync(leaf_addr, leaf.encode())
                yield from self.locks.release(handle, leaf_addr)
                if self.spec_cache is not None:
                    self.spec_cache.put(key, leaf_addr, index)
                return
            yield from self._split_and_insert(leaf_addr, leaf, key, value)
            return
        raise RuntimeError(f"upsert({key}): too many retries")

    def _delete_inner(self, key: int):
        handle = self.handle
        for _attempt in range(self.MAX_ATTEMPTS):
            leaf_addr, _ = yield from self._find_leaf(key)
            yield from self.locks.acquire(handle, leaf_addr)
            leaf = yield from self._fetch_node(leaf_addr)
            if not leaf.covers(key):
                yield from self.locks.release(handle, leaf_addr)
                continue
            index = leaf.find_leaf_entry(key)
            if index is None:
                yield from self.locks.release(handle, leaf_addr)
                return False
            del leaf.entries[index]
            leaf.bump_lines(index, max(leaf.nkeys - 1, index))
            yield from handle.write_sync(leaf_addr, leaf.encode())
            yield from self.locks.release(handle, leaf_addr)
            if self.spec_cache is not None:
                self.spec_cache.drop(key)
            return True
        raise RuntimeError(f"delete({key}): too many retries")

    # -- splits -----------------------------------------------------------------------------

    def _split_and_insert(self, node_addr: int, node: layout.Node, key: int, value: int):
        """Split a locked, full node, then insert (key, value) into the
        correct half; propagates a separator into the parent."""
        handle = self.handle
        mid = node.nkeys // 2
        split_key = node.entries[mid][0]
        right = layout.Node(
            level=node.level,
            fence_low=split_key,
            fence_high=node.fence_high,
            sibling=node.sibling,
            entries=node.entries[mid:],
        )
        right.version = node.version + 1
        right_addr = yield from self._allocator(blade_of(node_addr)).alloc_addr(
            layout.NODE_BYTES
        )
        node.entries = node.entries[:mid]
        node.fence_high = split_key
        node.sibling = right_addr
        node.version += 1
        node.bump_lines(0, layout.FANOUT - 1)

        target, target_addr = (right, right_addr) if key >= split_key else (node, node_addr)
        index = target.insert_sorted(key, value)

        # Write right first: a reader chasing the old sibling pointer must
        # always find a consistent node (B-link publication order).
        yield from handle.write_sync(right_addr, right.encode())
        yield from handle.write_sync(node_addr, node.encode())
        yield from self.locks.release(handle, node_addr)
        if self.spec_cache is not None and target.is_leaf:
            self.spec_cache.put(key, target_addr, index)
        if not node.is_leaf:
            self.index_cache[node_addr] = node
            self.index_cache[right_addr] = right

        yield from self._insert_separator(node.level + 1, split_key, right_addr, node_addr)

    def _insert_separator(self, level: int, sep_key: int, child_addr: int, left_addr: int):
        """Insert (sep_key -> child_addr) into the parent level."""
        handle = self.handle
        if level > self.meta.height:
            yield from self._grow_root(level, sep_key, child_addr, left_addr)
            return
        for _attempt in range(self.MAX_ATTEMPTS):
            parent_addr = yield from self._find_parent(level, sep_key)
            if parent_addr is None:
                yield from self._grow_root(level, sep_key, child_addr, left_addr)
                return
            yield from self.locks.acquire(handle, parent_addr)
            parent = yield from self._fetch_node(parent_addr)
            if not parent.covers(sep_key):
                yield from self.locks.release(handle, parent_addr)
                self.index_cache.pop(parent_addr, None)
                continue
            if parent.find_leaf_entry(sep_key) is not None or any(
                v == child_addr for _, v in parent.entries
            ):
                # Another coroutine (same blade, handover chain) already
                # inserted this separator.
                yield from self.locks.release(handle, parent_addr)
                return
            if not parent.full:
                parent.insert_sorted(sep_key, child_addr)
                parent.version += 1
                yield from handle.write_sync(parent_addr, parent.encode())
                yield from self.locks.release(handle, parent_addr)
                self.index_cache[parent_addr] = parent
                return
            yield from self._split_and_insert(parent_addr, parent, sep_key, child_addr)
            return
        raise RuntimeError("separator insert did not converge")

    def _find_parent(self, level: int, key: int):
        """Address of the level-``level`` node covering ``key`` (fresh walk)."""
        if level > self.meta.height:
            return None
        addr = self.meta.root_addr
        node = yield from self._load_internal(addr)
        if node.level < level:
            yield from self._refresh_root()
            addr = self.meta.root_addr
            node = yield from self._load_internal(addr)
            if node.level < level:
                return None
        while node.level > level:
            addr = node.child_for(key)
            node = yield from self._load_internal(addr)
        while not node.covers(key):
            if key >= node.fence_high and node.sibling:
                self.index_cache.pop(addr, None)
                addr = node.sibling
                node = yield from self._load_internal(addr)
            else:
                return None
        return addr

    def _grow_root(self, level: int, sep_key: int, child_addr: int, left_addr: int):
        """Install a new root above ``left_addr``/``child_addr``."""
        handle = self.handle
        meta_lock = self.meta.meta_addr + 16
        yield from self.locks.acquire(handle, meta_lock)
        raced = False
        try:
            data = yield from handle.read_sync(self.meta.meta_addr, 16)
            root_addr, height = layout.unpack_entry(data)
            if height >= level:
                # Someone grew the tree first; insert normally instead
                # (after the lock is released below).
                self.meta.root_addr, self.meta.height = root_addr, height
                raced = True
            else:
                new_root = layout.Node(
                    level=level,
                    entries=[(layout.KEY_MIN, left_addr), (sep_key, child_addr)],
                )
                new_addr = yield from self._allocator(
                    blade_of(root_addr)
                ).alloc_addr(layout.NODE_BYTES)
                yield from handle.write_sync(new_addr, new_root.encode())
                self.handle.write(
                    self.meta.meta_addr, layout.pack_entry(new_addr, level)
                )
                yield from handle.post_send()
                yield from handle.sync()
                self.meta.root_addr, self.meta.height = new_addr, level
                self.index_cache[new_addr] = new_root
        finally:
            yield from self.locks.release(handle, meta_lock)
        if raced:
            yield from self._insert_separator(level, sep_key, child_addr, left_addr)
