"""Sherman: a write-optimized disaggregated B+Tree [Wang et al., SIGMOD'22].

The reproduction follows the paper's *modified* baseline, Sherman+: the
two-level version mechanism is replaced by FaRM-style per-cacheline
versions (§5.2 — the authors found their RNIC does not guarantee
increasing-address-order writes, and the open-source tree crashes with
many threads).  Structure:

* 1 KB tree nodes in remote memory; internal nodes cached on each compute
  blade; leaves fetched with one big READ (the read-amplification that
  makes stock Sherman bandwidth-bound);
* hierarchical on-chip locks (HOPL): one remote CAS acquires a node lock
  per compute blade, local threads queue in DRAM and hand the lock over
  without extra network traffic;
* B-link sibling pointers + fence keys so readers survive concurrent
  splits and stale caches.

SMART-BT (``repro.apps.smart_bt``) adds speculative lookup and runs the
same client on the full SMART feature set.
"""

from repro.apps.sherman.client import BTreeClient, LocalLockTable, SpeculativeCache
from repro.apps.sherman.server import BTreeServer

__all__ = ["BTreeClient", "BTreeServer", "LocalLockTable", "SpeculativeCache"]
