"""Active-message handlers for the graph workload.

Registered process-globally at import time (the offload runtime looks
handlers up by name).  Every handler is a deterministic pure function of
``(storage, args)``; argument layouts are flat tuples of ints so the AM
wire-size accounting (8 B per argument) tracks the real payload.

Idempotence: the BFS handlers are test-and-set claims, so a client
retry after a crash-abort (or a duplicated message) re-observes the
already-claimed word and changes nothing — the exactly-once-visible
contract the chaos tests check.  The PageRank accumulate handlers are
*not* idempotent; fault schedules therefore exercise the BFS path.

Cost callables charge per edge scanned / per word touched on a
full-speed host core; the runtime multiplies by the configured
wimpy-core slowdown.
"""

from __future__ import annotations

from repro.apps.graph.server import PR_DAMP_DEN, PR_DAMP_NUM, UNVISITED
from repro.rnic.offload import register_handler

#: host-core cost of one claim / accumulate word operation
HOST_NS_PER_WORD = 5.0
#: host-core cost of scanning one edge inside a chunk handler
HOST_NS_PER_EDGE = 2.0
#: host-core fixed cost per frontier vertex expanded in a chunk handler
HOST_NS_PER_VERTEX = 10.0

_MASK = 0xFFFFFFFFFFFFFFFF


def _claim(storage, level_base: int, local: int, depth: int) -> bool:
    """Test-and-set one level word; True iff this call claimed it."""
    offset = level_base + 8 * local
    if storage.read_u64(offset) != UNVISITED:
        return False
    storage.write_u64(offset, depth)
    return True


# -- fine-grained RPC handlers (one message per edge) -------------------------


def _visit(storage, args):
    """args = (level_base, local, depth) -> 1 if claimed else 0."""
    level_base, local, depth = args
    return 1 if _claim(storage, level_base, local, depth) else 0


def _visit_regions(storage, args):
    return ((args[0] + 8 * args[1], 8, "A"),)


def _add(storage, args):
    """args = (next_base, local, delta) -> the accumulated value."""
    next_base, local, delta = args
    offset = next_base + 8 * local
    value = (storage.read_u64(offset) + delta) & _MASK
    storage.write_u64(offset, value)
    return value


def _add_regions(storage, args):
    return ((args[0] + 8 * args[1], 8, "A"),)


# -- batched claim / accumulate (the offload escape path) ---------------------


def _visit_batch(storage, args):
    """args = (level_base, nblades, ordinal, depth, *locals) -> tuple of
    claimed *global* vertex ids."""
    level_base, nblades, ordinal, depth = args[:4]
    claimed = []
    for local in args[4:]:
        if _claim(storage, level_base, local, depth):
            claimed.append(local * nblades + ordinal)
    return tuple(claimed)


def _visit_batch_regions(storage, args):
    level_base = args[0]
    return tuple((level_base + 8 * local, 8, "A") for local in args[4:])


def _visit_batch_cost(storage, args, config):
    return HOST_NS_PER_WORD * len(args[4:])


def _add_batch(storage, args):
    """args = (next_base, local0, delta0, local1, delta1, ...) -> count."""
    next_base = args[0]
    pairs = args[1:]
    for i in range(0, len(pairs), 2):
        offset = next_base + 8 * pairs[i]
        storage.write_u64(offset, (storage.read_u64(offset) + pairs[i + 1]) & _MASK)
    return len(pairs) // 2


def _add_batch_regions(storage, args):
    next_base = args[0]
    pairs = args[1:]
    return tuple(
        (next_base + 8 * pairs[i], 8, "A") for i in range(0, len(pairs), 2)
    )


def _add_batch_cost(storage, args, config):
    return HOST_NS_PER_WORD * (len(args[1:]) // 2)


# -- near-memory chunk handlers (whole frontier slices at the blade) ----------


def _scan_chunk(storage, index_base, locals_):
    """Yield (local, degree, neighbors) for each frontier slot."""
    for local in locals_:
        degree = storage.read_u64(index_base + 16 * local)
        offset = storage.read_u64(index_base + 16 * local + 8)
        neighbors = [
            storage.read_u64(offset + 8 * j) for j in range(degree)
        ]
        yield local, degree, neighbors


def _chunk_degrees(storage, index_base, locals_):
    return sum(storage.read_u64(index_base + 16 * local) for local in locals_)


def _bfs_step(storage, args):
    """Expand one frontier chunk next to the data.

    args = (index_base, level_base, nblades, ordinal, depth, *locals).
    Claims same-blade neighbors locally; returns
    ``(claimed_globals, escape_globals)`` where escapes are the
    cross-blade neighbors the client must forward (deduplicated and
    sorted, so the result is order-independent).
    """
    index_base, level_base, nblades, ordinal, depth = args[:5]
    claimed = []
    escapes = set()
    for _local, _degree, neighbors in _scan_chunk(storage, index_base, args[5:]):
        for v in neighbors:
            if v % nblades == ordinal:
                if _claim(storage, level_base, v // nblades, depth):
                    claimed.append(v)
            else:
                escapes.add(v)
    return tuple(sorted(claimed)), tuple(sorted(escapes))


def _bfs_step_cost(storage, args, config):
    locals_ = args[5:]
    return HOST_NS_PER_VERTEX * len(locals_) + HOST_NS_PER_EDGE * _chunk_degrees(
        storage, args[0], locals_
    )


def _bfs_step_regions(storage, args):
    index_base, level_base, nblades, ordinal, _depth = args[:5]
    touched = []
    for local in args[5:]:
        touched.append((index_base + 16 * local, 16, "R"))
        degree = storage.read_u64(index_base + 16 * local)
        offset = storage.read_u64(index_base + 16 * local + 8)
        if degree:
            touched.append((offset, 8 * degree, "R"))
        for j in range(degree):
            v = storage.read_u64(offset + 8 * j)
            if v % nblades == ordinal:
                touched.append((level_base + 8 * (v // nblades), 8, "A"))
    return tuple(touched)


def _rank_step(storage, args):
    """Distribute one chunk's rank mass next to the data.

    args = (index_base, rank_base, next_base, nblades, ordinal, *locals).
    Same-blade contributions are accumulated locally; cross-blade ones
    come back as a flat ``(v0, delta0, v1, delta1, ...)`` escape tuple
    (merged per target, sorted — order-independent).
    """
    index_base, rank_base, next_base, nblades, ordinal = args[:5]
    escapes = {}
    for local, degree, neighbors in _scan_chunk(storage, index_base, args[5:]):
        if degree == 0:
            continue
        rank = storage.read_u64(rank_base + 8 * local)
        contribution = (PR_DAMP_NUM * rank) // (PR_DAMP_DEN * degree)
        if contribution == 0:
            continue
        for v in neighbors:
            if v % nblades == ordinal:
                offset = next_base + 8 * (v // nblades)
                storage.write_u64(
                    offset, (storage.read_u64(offset) + contribution) & _MASK
                )
            else:
                escapes[v] = escapes.get(v, 0) + contribution
    flat = []
    for v in sorted(escapes):
        flat.append(v)
        flat.append(escapes[v])
    return tuple(flat)


def _rank_step_cost(storage, args, config):
    locals_ = args[5:]
    return HOST_NS_PER_VERTEX * len(locals_) + HOST_NS_PER_EDGE * _chunk_degrees(
        storage, args[0], locals_
    )


def _rank_step_regions(storage, args):
    index_base, rank_base, next_base, nblades, ordinal = args[:5]
    touched = []
    for local in args[5:]:
        touched.append((index_base + 16 * local, 16, "R"))
        touched.append((rank_base + 8 * local, 8, "R"))
        degree = storage.read_u64(index_base + 16 * local)
        offset = storage.read_u64(index_base + 16 * local + 8)
        if degree:
            touched.append((offset, 8 * degree, "R"))
        for j in range(degree):
            v = storage.read_u64(offset + 8 * j)
            if v % nblades == ordinal:
                touched.append((next_base + 8 * (v // nblades), 8, "A"))
    return tuple(touched)


def _commit(storage, args):
    """End-of-round swap: rank := next, next := base.

    args = (rank_base, next_base, count, base_value) -> count."""
    rank_base, next_base, count, base_value = args
    for i in range(count):
        storage.write_u64(rank_base + 8 * i, storage.read_u64(next_base + 8 * i))
        storage.write_u64(next_base + 8 * i, base_value)
    return count


def _commit_cost(storage, args, config):
    return HOST_NS_PER_WORD * args[2]


def _commit_regions(storage, args):
    rank_base, next_base, count, _base = args
    span = max(8, 8 * count)
    return ((rank_base, span, "W"), (next_base, span, "W"))


register_handler("graph/visit", _visit, cost=HOST_NS_PER_WORD,
                 regions=_visit_regions)
register_handler("graph/add", _add, cost=HOST_NS_PER_WORD,
                 regions=_add_regions)
register_handler("graph/visit_batch", _visit_batch, cost=_visit_batch_cost,
                 regions=_visit_batch_regions)
register_handler("graph/add_batch", _add_batch, cost=_add_batch_cost,
                 regions=_add_batch_regions)
register_handler("graph/bfs_step", _bfs_step, cost=_bfs_step_cost,
                 regions=_bfs_step_regions)
register_handler("graph/rank_step", _rank_step, cost=_rank_step_cost,
                 regions=_rank_step_regions)
register_handler("graph/commit", _commit, cost=_commit_cost,
                 regions=_commit_regions)
