"""Graph workload on disaggregated memory (BFS + PageRank, three ways).

Adjacency lists live on the memory blades; clients traverse them with
one of three execution strategies sharing identical semantics:

* ``onesided`` — pure one-sided verbs: READ the adjacency, claim /
  accumulate with remote CAS (failed CASes are the RACE-style wasted
  IOPS this workload is built to expose);
* ``rpc`` — one-sided adjacency fetch, but every claim/accumulate is a
  fine-grained active message (one RPC per edge);
* ``offload`` — near-memory compute: coarse per-blade active messages
  run whole frontier chunks next to the data and return only the
  cross-blade escape edges.

All three produce bit-identical levels/ranks on a fixed seed (the
differential harness in ``tests/`` checks exactly that).
"""

from repro.apps.graph.client import GraphClient, GraphStats
from repro.apps.graph.server import (
    GraphMeta,
    GraphServer,
    PR_BASE,
    PR_DAMP_DEN,
    PR_DAMP_NUM,
    PR_SCALE,
    UNVISITED,
)

__all__ = [
    "GraphClient",
    "GraphStats",
    "GraphMeta",
    "GraphServer",
    "UNVISITED",
    "PR_SCALE",
    "PR_BASE",
    "PR_DAMP_NUM",
    "PR_DAMP_DEN",
]
