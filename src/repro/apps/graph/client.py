"""Client-side graph traversals: BFS and PageRank, three ways.

One :class:`GraphClient` drives a whole run.  It owns a pool of
:class:`~repro.core.api.SmartHandle` objects (one per client coroutine)
and runs each algorithm level-/round-synchronously: every phase fans the
work out over the pool as spawned worker processes and joins them at a
barrier, so all three execution modes compute identical results on a
fixed seed:

* ``onesided`` — READ adjacency, claim/accumulate with remote CAS.
  Every CAS that loses (an already-claimed hub, a contended
  accumulator) is a round trip that made no progress: the RACE-style
  wasted IOPS ledger (``GraphStats.wasted_cas``).
* ``rpc``      — READ adjacency one-sided, but claims/accumulates are
  fine-grained active messages (one per edge).
* ``offload``  — coarse active messages expand whole per-blade frontier
  chunks next to the data and return only cross-blade escape edges.

Fault tolerance: every remote primitive goes through a reliable wrapper
that, on a fault completion (remote abort / flush), reconnects to the
blade and retries.  The BFS claim primitives are idempotent test-and-set
operations, so a replayed message is exactly-once-visible; PageRank's
accumulates are not, and fault schedules therefore target BFS runs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps.graph import handlers  # registers the AM handlers
from repro.apps.graph.server import (
    GraphMeta,
    PR_BASE,
    PR_DAMP_DEN,
    PR_DAMP_NUM,
    UNVISITED,
)
from repro.memory.address import make_addr
from repro.rnic.qp import WorkRequest

_U64 = struct.Struct("<Q")
_MASK = 0xFFFFFFFFFFFFFFFF

MODES = ("onesided", "rpc", "offload")

del handlers  # imported for its registration side effect only


@dataclass
class GraphStats:
    """Client-side ledger of one run (device counters tell the rest)."""

    expanded: int = 0
    """Frontier vertices (BFS) / source vertices (PageRank) processed."""
    edges_scanned: int = 0
    wasted_cas: int = 0
    """CAS completions that made no progress (lost claims + retries)."""
    cas_retries: int = 0
    """Retries of the PageRank CAS-accumulate loop specifically."""
    am_messages: int = 0
    """Active messages that completed OK."""
    by_depth: Dict[int, int] = field(default_factory=dict)
    """BFS: vertices claimed per depth."""


class GraphClient:
    """Drives one graph algorithm over a handle pool in one mode."""

    def __init__(
        self,
        meta: GraphMeta,
        handles: List,
        mode: str = "onesided",
        chunk: int = 32,
        stats: GraphStats = None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if not handles:
            raise ValueError("need at least one SmartHandle")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        self.meta = meta
        self.handles = list(handles)
        self.mode = mode
        self.chunk = chunk
        self.stats = stats if stats is not None else GraphStats()
        self.sim = handles[0].sim

    # -- reliable remote primitives (reconnect-and-retry on faults) ---------

    def _complete_reliable(self, handle, node_id, make_wr):
        """Issue ``make_wr(handle)`` until it completes OK; returns the WR."""
        while True:
            wr = make_wr(handle)
            yield from handle.post_send()
            yield from handle.sync()
            if wr.status == WorkRequest.STATUS_OK:
                return wr
            handle.note_fault_abort()
            ok = yield from handle.reconnect(node_id)
            if not ok:
                raise RuntimeError(f"blade {node_id} did not come back")

    def _read_reliable(self, handle, node_id, addr, size):
        wr = yield from self._complete_reliable(
            handle, node_id, lambda h: h.read(addr, size)
        )
        return wr.result

    def _write_reliable(self, handle, node_id, addr, payload):
        yield from self._complete_reliable(
            handle, node_id, lambda h: h.write(addr, payload)
        )

    def _cas_reliable(self, handle, node_id, addr, compare, swap):
        wr = yield from self._complete_reliable(
            handle, node_id, lambda h: h.cas(addr, compare, swap)
        )
        return wr.result

    def _am_reliable(self, handle, node_id, addr, name, args, resp_size=8):
        while True:
            wr = yield from handle.am_sync(addr, name, args, resp_size=resp_size)
            if wr.status == WorkRequest.STATUS_OK:
                self.stats.am_messages += 1
                return wr.result
            handle.note_fault_abort()
            ok = yield from handle.reconnect(node_id)
            if not ok:
                raise RuntimeError(f"blade {node_id} did not come back")

    def _read_index(self, handle, vertex):
        """(degree, absolute edge-list offset) of one vertex."""
        meta = self.meta
        data = yield from self._read_reliable(
            handle, meta.node_id(vertex), meta.index_addr(vertex), 16
        )
        return _U64.unpack_from(data, 0)[0], _U64.unpack_from(data, 8)[0]

    def _read_neighbors(self, handle, vertex, degree, offset):
        meta = self.meta
        node_id = meta.node_id(vertex)
        data = yield from self._read_reliable(
            handle, node_id, make_addr(node_id, offset), 8 * degree
        )
        self.stats.edges_scanned += degree
        return [_U64.unpack_from(data, 8 * j)[0] for j in range(degree)]

    # -- barrier fan-out ------------------------------------------------------

    def _join(self, procs):
        for proc in procs:
            if not proc.triggered:
                yield proc
            if proc.error is not None:
                raise proc.error

    def _fanout(self, worker, items, *extra):
        """Run ``worker(handle, slice, *extra, out)`` over the pool; the
        merged, sorted outputs come back after the barrier."""
        outs = [[] for _ in self.handles]
        procs = []
        for w, handle in enumerate(self.handles):
            part = items[w :: len(self.handles)]
            if part:
                procs.append(
                    self.sim.spawn(worker(handle, part, *extra, outs[w]))
                )
        yield from self._join(procs)
        merged = [v for out in outs for v in out]
        merged.sort()
        return merged

    # -- claims (the mode-specific visit primitive) ---------------------------

    def _claim_cas(self, handle, vertex, depth):
        meta = self.meta
        old = yield from self._cas_reliable(
            handle, meta.node_id(vertex), meta.level_addr(vertex),
            UNVISITED, depth,
        )
        if old == UNVISITED:
            return True
        self.stats.wasted_cas += 1
        return False

    def _claim_rpc(self, handle, vertex, depth):
        meta = self.meta
        o = meta.owner(vertex)
        got = yield from self._am_reliable(
            handle, meta.blade_ids[o], meta.level_addr(vertex),
            "graph/visit", (meta.level_bases[o], meta.local(vertex), depth),
        )
        return got == 1

    # -- BFS ------------------------------------------------------------------

    def bfs(self, source: int = 0):
        """Level-synchronous BFS from ``source``; returns the finish time.

        Levels are deterministic whatever the claim interleaving: every
        vertex is claimed in the round of its minimal depth, so all
        three modes land bit-identical ``level`` arrays."""
        meta = self.meta
        if not 0 <= source < meta.vertex_count:
            raise ValueError(f"source {source} out of range")
        claim = self._claim_cas if self.mode == "onesided" else self._claim_rpc
        claimed = yield from claim(self.handles[0], source, 0)
        frontier = [source] if claimed else []
        self.stats.by_depth[0] = len(frontier)
        depth = 1
        while frontier:
            if self.mode == "offload":
                jobs = self._chunk_frontier(frontier)
                frontier = yield from self._fanout(
                    self._bfs_offload_worker, jobs, depth
                )
            else:
                frontier = yield from self._fanout(
                    self._bfs_fine_worker, frontier, depth, claim
                )
            self.stats.by_depth[depth] = len(frontier)
            depth += 1
        return self.sim.now

    def _bfs_fine_worker(self, handle, items, depth, claim, out):
        for u in items:
            yield from handle.begin_op()
            degree, offset = yield from self._read_index(handle, u)
            self.stats.expanded += 1
            if degree:
                neighbors = yield from self._read_neighbors(
                    handle, u, degree, offset
                )
                for v in neighbors:
                    won = yield from claim(handle, v, depth)
                    if won:
                        out.append(v)
            handle.end_op()

    def _chunk_frontier(self, frontier):
        """Group a frontier by owner blade and slice into AM chunks."""
        meta = self.meta
        by_owner: Dict[int, List[int]] = {}
        for v in frontier:
            by_owner.setdefault(meta.owner(v), []).append(meta.local(v))
        jobs = []
        for ordinal in sorted(by_owner):
            locals_ = by_owner[ordinal]
            for i in range(0, len(locals_), self.chunk):
                jobs.append((ordinal, tuple(locals_[i : i + self.chunk])))
        return jobs

    def _bfs_offload_worker(self, handle, jobs, depth, out):
        meta = self.meta
        for ordinal, chunk in jobs:
            yield from handle.begin_op()
            node_id = meta.blade_ids[ordinal]
            args = (
                meta.index_bases[ordinal], meta.level_bases[ordinal],
                meta.memory_blades, ordinal, depth,
            ) + chunk
            claimed, escapes = yield from self._am_reliable(
                handle, node_id, make_addr(node_id, meta.index_bases[ordinal]),
                "graph/bfs_step", args, resp_size=16 + 16 * len(chunk),
            )
            self.stats.expanded += len(chunk)
            out.extend(claimed)
            groups: Dict[int, List[int]] = {}
            for v in escapes:
                groups.setdefault(meta.owner(v), []).append(meta.local(v))
            for other in sorted(groups):
                locals_ = groups[other]
                target = meta.blade_ids[other]
                got = yield from self._am_reliable(
                    handle, target, make_addr(target, meta.level_bases[other]),
                    "graph/visit_batch",
                    (meta.level_bases[other], meta.memory_blades, other, depth)
                    + tuple(locals_),
                    resp_size=8 + 8 * len(locals_),
                )
                out.extend(got)
            handle.end_op()

    # -- PageRank -------------------------------------------------------------

    def pagerank(self, rounds: int = 2):
        """Fixed-point PageRank for ``rounds`` iterations; returns the
        finish time.  Integer contributions commute, so the final ranks
        are bit-identical across modes and claim interleavings."""
        if rounds < 1:
            raise ValueError("rounds must be positive")
        meta = self.meta
        blades = list(range(meta.memory_blades))
        for _ in range(rounds):
            if self.mode == "offload":
                jobs = []
                for ordinal in blades:
                    count = meta.local_counts[ordinal]
                    for i in range(0, count, self.chunk):
                        jobs.append(
                            (ordinal,
                             tuple(range(i, min(i + self.chunk, count))))
                        )
                yield from self._fanout(self._rank_offload_worker, jobs)
            else:
                vertices = list(range(meta.vertex_count))
                worker = (
                    self._rank_onesided_worker
                    if self.mode == "onesided"
                    else self._rank_rpc_worker
                )
                yield from self._fanout(worker, vertices)
            yield from self._fanout(self._commit_worker, blades)
        return self.sim.now

    def _contribution(self, handle, u):
        """(degree, neighbors offset, this round's per-edge share of u)."""
        meta = self.meta
        degree, offset = yield from self._read_index(handle, u)
        if degree == 0:
            return 0, offset, 0
        rank = yield from self._read_reliable(
            handle, meta.node_id(u), meta.rank_addr(u), 8
        )
        rank = _U64.unpack(rank)[0]
        return degree, offset, (PR_DAMP_NUM * rank) // (PR_DAMP_DEN * degree)

    def _rank_onesided_worker(self, handle, items, out):
        meta = self.meta
        for u in items:
            yield from handle.begin_op()
            self.stats.expanded += 1
            degree, offset, share = yield from self._contribution(handle, u)
            if share:
                neighbors = yield from self._read_neighbors(
                    handle, u, degree, offset
                )
                for v in neighbors:
                    yield from self._accumulate_cas(handle, v, share)
            handle.end_op()

    def _accumulate_cas(self, handle, vertex, delta):
        """READ + CAS retry loop: the contended accumulate that burns
        wasted IOPS on hub vertices at high skew."""
        meta = self.meta
        addr = meta.next_addr(vertex)
        node_id = meta.node_id(vertex)
        old = yield from self._read_reliable(handle, node_id, addr, 8)
        old = _U64.unpack(old)[0]
        while True:
            got = yield from self._cas_reliable(
                handle, node_id, addr, old, (old + delta) & _MASK
            )
            if got == old:
                return
            self.stats.wasted_cas += 1
            self.stats.cas_retries += 1
            old = got
            yield from handle.backoff_delay()

    def _rank_rpc_worker(self, handle, items, out):
        meta = self.meta
        for u in items:
            yield from handle.begin_op()
            self.stats.expanded += 1
            degree, offset, share = yield from self._contribution(handle, u)
            if share:
                neighbors = yield from self._read_neighbors(
                    handle, u, degree, offset
                )
                for v in neighbors:
                    o = meta.owner(v)
                    yield from self._am_reliable(
                        handle, meta.blade_ids[o], meta.next_addr(v),
                        "graph/add", (meta.next_bases[o], meta.local(v), share),
                    )
            handle.end_op()

    def _rank_offload_worker(self, handle, jobs, out):
        meta = self.meta
        for ordinal, chunk in jobs:
            yield from handle.begin_op()
            node_id = meta.blade_ids[ordinal]
            args = (
                meta.index_bases[ordinal], meta.rank_bases[ordinal],
                meta.next_bases[ordinal], meta.memory_blades, ordinal,
            ) + chunk
            flat = yield from self._am_reliable(
                handle, node_id, make_addr(node_id, meta.index_bases[ordinal]),
                "graph/rank_step", args, resp_size=16 + 16 * len(chunk),
            )
            self.stats.expanded += len(chunk)
            groups: Dict[int, List[int]] = {}
            for i in range(0, len(flat), 2):
                v, delta = flat[i], flat[i + 1]
                groups.setdefault(meta.owner(v), []).extend(
                    (meta.local(v), delta)
                )
            for other in sorted(groups):
                pairs = groups[other]
                target = meta.blade_ids[other]
                yield from self._am_reliable(
                    handle, target, make_addr(target, meta.next_bases[other]),
                    "graph/add_batch",
                    (meta.next_bases[other],) + tuple(pairs),
                    resp_size=8,
                )
            handle.end_op()

    def _commit_worker(self, handle, ordinals, out):
        """End-of-round swap on each blade: rank := next, next := base."""
        meta = self.meta
        for ordinal in ordinals:
            yield from handle.begin_op()
            node_id = meta.blade_ids[ordinal]
            count = meta.local_counts[ordinal]
            if self.mode == "onesided":
                data = yield from self._read_reliable(
                    handle, node_id,
                    make_addr(node_id, meta.next_bases[ordinal]), 8 * count,
                )
                yield from self._write_reliable(
                    handle, node_id,
                    make_addr(node_id, meta.rank_bases[ordinal]), data,
                )
                yield from self._write_reliable(
                    handle, node_id,
                    make_addr(node_id, meta.next_bases[ordinal]),
                    _U64.pack(PR_BASE) * count,
                )
            else:
                yield from self._am_reliable(
                    handle, node_id,
                    make_addr(node_id, meta.rank_bases[ordinal]),
                    "graph/commit",
                    (meta.rank_bases[ordinal], meta.next_bases[ordinal],
                     count, PR_BASE),
                )
            handle.end_op()
