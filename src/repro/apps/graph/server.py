"""Server-side layout of the blade-resident graph.

Deployment-time work only: region carving and bulk loading, before any
client issues a verb.  The layout is a pure function of the vertex id
(owner = ``v % blades``, local slot = ``v // blades``), so a vertex's
blade-resident bytes never depend on how many blades share the graph —
the partition-independence contract the property tests pin down.

Per blade, five regions (all names share one prefix so several graphs
can coexist):

* ``index``  — 16 B per local vertex: degree (u64) + the absolute
  blade-local byte offset of its edge list (u64);
* ``edges``  — the concatenated neighbor ids as u64s;
* ``level``  — 8 B per local vertex: BFS level, ``UNVISITED`` initially;
* ``rank``   — 8 B per local vertex: fixed-point PageRank value;
* ``next``   — 8 B per local vertex: next-iteration rank accumulator.

PageRank is computed in fixed-point integers (``PR_SCALE``) so the sum
of edge contributions is order-independent — the property that makes
ranks bit-equal across the three execution modes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence

from repro.cluster import Node
from repro.memory.address import make_addr
from repro.workloads.graph import GraphSpec, generate

_U64 = struct.Struct("<Q")

#: BFS level of a vertex no traversal has reached.
UNVISITED = 0xFFFFFFFFFFFFFFFF

#: Fixed-point scale: a rank of 1.0 is stored as PR_SCALE.
PR_SCALE = 1_000_000
#: Damping factor 0.85 as the integer ratio PR_DAMP_NUM / PR_DAMP_DEN.
PR_DAMP_NUM = 85
PR_DAMP_DEN = 100
#: The (1 - d) teleport term every vertex restarts each round from.
PR_BASE = (PR_SCALE * (PR_DAMP_DEN - PR_DAMP_NUM)) // PR_DAMP_DEN


@dataclass
class GraphMeta:
    """Bootstrap information clients receive out of band."""

    vertex_count: int
    memory_blades: int
    #: owner ordinal -> node id
    blade_ids: List[int]
    #: owner ordinal -> region base offsets on that blade
    index_bases: List[int]
    level_bases: List[int]
    rank_bases: List[int]
    next_bases: List[int]
    #: owner ordinal -> local vertices resident there
    local_counts: List[int]

    def owner(self, vertex: int) -> int:
        return vertex % self.memory_blades

    def local(self, vertex: int) -> int:
        return vertex // self.memory_blades

    def node_id(self, vertex: int) -> int:
        return self.blade_ids[self.owner(vertex)]

    def index_addr(self, vertex: int) -> int:
        o = self.owner(vertex)
        return make_addr(self.blade_ids[o], self.index_bases[o] + 16 * self.local(vertex))

    def level_addr(self, vertex: int) -> int:
        o = self.owner(vertex)
        return make_addr(self.blade_ids[o], self.level_bases[o] + 8 * self.local(vertex))

    def rank_addr(self, vertex: int) -> int:
        o = self.owner(vertex)
        return make_addr(self.blade_ids[o], self.rank_bases[o] + 8 * self.local(vertex))

    def next_addr(self, vertex: int) -> int:
        o = self.owner(vertex)
        return make_addr(self.blade_ids[o], self.next_bases[o] + 8 * self.local(vertex))


class GraphServer:
    """Carves and bulk-loads a partitioned graph across memory blades."""

    def __init__(
        self,
        memory_nodes: Sequence[Node],
        spec: GraphSpec = None,
        adjacency: List[List[int]] = None,
        region_prefix: str = "graph_",
        persistent: bool = True,
    ):
        """``persistent=True`` (default) places every region in NVM so a
        blade crash loses no graph state — fault schedules then exercise
        the message-layer crash semantics (aborted active messages,
        client retries) rather than data loss."""
        if adjacency is None:
            if spec is None:
                raise ValueError("need a GraphSpec or an explicit adjacency")
            adjacency = generate(spec)
        self.memory_nodes = list(memory_nodes)
        self.adjacency = adjacency
        self.vertex_count = len(adjacency)
        self.region_prefix = region_prefix
        blades = len(self.memory_nodes)
        if blades < 1:
            raise ValueError("need at least one memory blade")

        self._index_regions = []
        self._edges_regions = []
        self._level_regions = []
        self._rank_regions = []
        self._next_regions = []
        self.local_counts: List[int] = []
        for ordinal, node in enumerate(self.memory_nodes):
            locals_here = list(range(ordinal, self.vertex_count, blades))
            count = len(locals_here)
            self.local_counts.append(count)
            edge_words = sum(len(adjacency[v]) for v in locals_here)
            storage = node.storage
            index = storage.alloc_region(
                f"{region_prefix}index", max(16, 16 * count),
                persistent=persistent,
            )
            edges = storage.alloc_region(
                f"{region_prefix}edges", max(8, 8 * edge_words),
                persistent=persistent,
            )
            level = storage.alloc_region(
                f"{region_prefix}level", max(8, 8 * count),
                persistent=persistent,
            )
            rank = storage.alloc_region(
                f"{region_prefix}rank", max(8, 8 * count), persistent=persistent
            )
            nxt = storage.alloc_region(
                f"{region_prefix}next", max(8, 8 * count), persistent=persistent
            )
            self._index_regions.append(index)
            self._edges_regions.append(edges)
            self._level_regions.append(level)
            self._rank_regions.append(rank)
            self._next_regions.append(nxt)

            # Bulk-load index + edge list in two writes per blade.  The
            # index stores each vertex's *absolute* edge-list offset so
            # handlers and clients never need the edges base.
            index_buf = bytearray()
            edges_buf = bytearray()
            cursor = edges.base
            for v in locals_here:
                neighbors = adjacency[v]
                index_buf += _U64.pack(len(neighbors))
                index_buf += _U64.pack(cursor)
                for dst in neighbors:
                    edges_buf += _U64.pack(dst)
                cursor += 8 * len(neighbors)
            if index_buf:
                storage.bulk_write(index.base, bytes(index_buf))
            if edges_buf:
                storage.bulk_write(edges.base, bytes(edges_buf))

        self.reset_bfs()
        self.reset_pagerank()

    # -- state resets (deterministic, deployment-side) ----------------------

    def reset_bfs(self) -> None:
        """Every level back to UNVISITED."""
        for region, node, count in zip(
            self._level_regions, self.memory_nodes, self.local_counts
        ):
            node.storage.bulk_write(
                region.base, _U64.pack(UNVISITED) * max(1, count)
            )

    def reset_pagerank(self) -> None:
        """rank := 1.0 (fixed point), next := the teleport base."""
        for rank, nxt, node, count in zip(
            self._rank_regions, self._next_regions,
            self.memory_nodes, self.local_counts,
        ):
            words = max(1, count)
            node.storage.bulk_write(rank.base, _U64.pack(PR_SCALE) * words)
            node.storage.bulk_write(nxt.base, _U64.pack(PR_BASE) * words)

    # -- bootstrap -----------------------------------------------------------

    def meta(self) -> GraphMeta:
        return GraphMeta(
            vertex_count=self.vertex_count,
            memory_blades=len(self.memory_nodes),
            blade_ids=[n.node_id for n in self.memory_nodes],
            index_bases=[r.base for r in self._index_regions],
            level_bases=[r.base for r in self._level_regions],
            rank_bases=[r.base for r in self._rank_regions],
            next_bases=[r.base for r in self._next_regions],
            local_counts=list(self.local_counts),
        )

    def declare_sanitizer_regions(self, sanitizer) -> None:
        """Teach RDMASan this workload's protocol: the level and next
        words are single-word atomics validated by compare (claims and
        CAS-accumulates), so concurrent readers are the optimistic
        pattern, not races."""
        for node in self.memory_nodes:
            sanitizer.set_region_policy(
                node.node_id, f"{self.region_prefix}level", "optimistic-read"
            )
            sanitizer.set_region_policy(
                node.node_id, f"{self.region_prefix}next", "optimistic-read"
            )

    # -- teardown ------------------------------------------------------------

    def free_regions(self) -> int:
        """Release every region this graph carved; returns bytes freed."""
        freed = 0
        for node in self.memory_nodes:
            for suffix in ("index", "edges", "level", "rank", "next"):
                name = f"{self.region_prefix}{suffix}"
                freed += node.storage.region(name).size
                node.storage.free_region(name)
        return freed

    # -- result collection (post-run, non-simulated) -------------------------

    def read_levels(self) -> List[int]:
        """Final BFS levels, vertex order (pull-based; never simulated)."""
        blades = len(self.memory_nodes)
        levels = [UNVISITED] * self.vertex_count
        for ordinal, (region, node) in enumerate(
            zip(self._level_regions, self.memory_nodes)
        ):
            for li in range(self.local_counts[ordinal]):
                levels[ordinal + li * blades] = node.storage.read_u64(
                    region.base + 8 * li
                )
        return levels

    def read_ranks(self) -> List[int]:
        """Final fixed-point ranks, vertex order."""
        blades = len(self.memory_nodes)
        ranks = [0] * self.vertex_count
        for ordinal, (region, node) in enumerate(
            zip(self._rank_regions, self.memory_nodes)
        ):
            for li in range(self.local_counts[ordinal]):
                ranks[ordinal + li * blades] = node.storage.read_u64(
                    region.base + 8 * li
                )
        return ranks

    def visited_count(self) -> int:
        return sum(1 for level in self.read_levels() if level != UNVISITED)
