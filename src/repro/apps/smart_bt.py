"""SMART-BT: Sherman refactored onto SMART + speculative lookup (§5.2).

The 48-line refactor of the paper corresponds here to configuration:

* run the shared :class:`~repro.apps.sherman.client.BTreeClient` on a
  :class:`~repro.core.SmartThread` built with the full feature set, and
* give it a :class:`~repro.apps.sherman.client.SpeculativeCache`, turning
  each hot lookup from a 1 KB leaf fetch (bandwidth-bound) into a 16-byte
  entry READ (IOPS-bound).

``sherman_plus_features`` / ``smart_bt_features`` are the two framework
configurations compared in Figure 12; "Sherman+ w/ SL" is Sherman+
features plus a speculative cache.
"""

from __future__ import annotations

from repro.apps.sherman.client import BTreeClient, SpeculativeCache
from repro.core.features import SmartFeatures, baseline, full


class SmartBTree(BTreeClient):
    """Alias emphasising the SMART configuration."""


def sherman_plus_features() -> SmartFeatures:
    """Framework configuration of Sherman+ (per-thread QPs, no SMART)."""
    return baseline()


def smart_bt_features() -> SmartFeatures:
    """Framework configuration of SMART-BT."""
    return full()
