"""SMART-HT: the RACE hash table refactored onto SMART (§5.2).

The protocol code is shared with :mod:`repro.apps.race.client`; the
refactor — like the paper's 44-line diff — is entirely a change of the
framework configuration:

* the client's :class:`~repro.core.SmartThread` is built with the full
  :class:`~repro.core.SmartFeatures` (thread-aware allocation, adaptive
  work-request throttling, conflict avoidance), and
* slot publication goes through ``backoff_cas_sync`` instead of a bare
  CAS + immediate retry (which is what the same call degenerates to with
  the features off).
"""

from __future__ import annotations

from repro.apps.race.client import HashTableClient
from repro.core.features import SmartFeatures, baseline, full


class SmartHashTable(HashTableClient):
    """Alias emphasising the SMART configuration; construct its handles
    from SmartThreads carrying :func:`repro.core.features.full`."""


def race_features() -> SmartFeatures:
    """Framework configuration matching the published RACE client."""
    return baseline()


def smart_ht_features() -> SmartFeatures:
    """Framework configuration of SMART-HT."""
    return full()
