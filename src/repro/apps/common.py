"""Helpers shared by the disaggregated applications."""

from __future__ import annotations

from repro.memory.address import make_addr


class RemoteAllocator:
    """Client-side bump allocator over a remote heap.

    A heap-head counter lives at a fixed offset on the blade; clients
    reserve chunks with one FAA and then sub-allocate locally — the usual
    disaggregated-memory allocation scheme (1 RDMA op per chunk, not per
    object).
    """

    def __init__(self, handle, blade_id: int, head_addr: int, heap_base: int,
                 heap_end: int, chunk_bytes: int = 2048):
        self.handle = handle
        self.blade_id = blade_id
        self.head_addr = head_addr
        self.heap_base = heap_base
        self.heap_end = heap_end
        self.chunk_bytes = chunk_bytes
        self._cursor = 0
        self._limit = 0

    def alloc(self, size: int):
        """Allocate ``size`` bytes; returns the blade-local offset.

        Generator: may issue one FAA when the local chunk is exhausted.
        """
        if size > self.chunk_bytes:
            raise ValueError(f"allocation {size} exceeds chunk {self.chunk_bytes}")
        size = (size + 7) & ~7  # 8-byte alignment
        if self._cursor + size > self._limit:
            old = yield from self.handle.faa_sync(self.head_addr, self.chunk_bytes)
            if old + self.chunk_bytes > self.heap_end:
                raise MemoryError(
                    f"remote heap on blade {self.blade_id} exhausted "
                    f"(head={old}, end={self.heap_end})"
                )
            self._cursor, self._limit = old, old + self.chunk_bytes
        offset = self._cursor
        self._cursor += size
        return offset

    def alloc_large(self, size: int):
        """Allocate an arbitrarily large block with one dedicated FAA
        (segment splits, node allocations)."""
        size = (size + 63) & ~63
        old = yield from self.handle.faa_sync(self.head_addr, size)
        if old + size > self.heap_end:
            raise MemoryError(
                f"remote heap on blade {self.blade_id} exhausted "
                f"(head={old}, end={self.heap_end})"
            )
        return old

    def alloc_addr(self, size: int):
        """Like :meth:`alloc` but returns a packed global address."""
        offset = yield from self.alloc(size)
        return make_addr(self.blade_id, offset)
