"""FORD: one-sided RDMA distributed transactions on disaggregated
persistent memory [Zhang et al., FAST'22].

The protocol reproduced here is FORD's one-sided OCC pipeline:

1. **Execution** — READ records (header: lock + version, then payload);
2. **Lock**      — CAS the lock word of every write-set record (batched
   in one doorbell); any failure aborts;
3. **Validation**— re-READ the versions of read-only records;
4. **Undo log**  — WRITE old images to the client's log ring in NVM;
5. **Write-back**— WRITE new payload + bumped version + cleared lock to
   primary and backup replicas in one batched doorbell (FORD's combined
   write+unlock).

The baseline configuration matches the paper's FORD+ (per-thread QPs, no
asynchronous-log QPs); SMART-DTX is the same client on full SMART
features — the paper's 16-changed-lines refactor.
"""

from repro.apps.ford.server import DtxServer, TableInfo
from repro.apps.ford.txn import Aborted, Transaction, TxnClient

__all__ = ["Aborted", "DtxServer", "TableInfo", "Transaction", "TxnClient"]
