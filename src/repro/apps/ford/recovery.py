"""Crash recovery from the NVM undo logs.

FORD's reason for logging to persistent memory: if a compute blade dies
mid-commit, its write-set records are left locked (and possibly
half-written).  The recovery manager — run by whichever node adopts the
dead client's log ring — scans the ring and, for every record still
locked by one of the dead client's transactions, restores the logged old
image and clears the lock.  Records the dead client had already unlocked
committed normally and are left alone.

Recovery runs against blade memory directly (the recovery manager is
co-located with the memory pool's control plane), mirroring FORD's
design where logs live on the memory nodes themselves.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.apps.ford.server import DtxServer
from repro.apps.ford.txn import unpack_log_records
from repro.memory.address import blade_of, offset_of

_U64 = struct.Struct("<Q")


class RecoveryManager:
    """Rolls back in-doubt transactions of dead clients."""

    def __init__(self, server: DtxServer):
        self.server = server
        self._storage = {n.node_id: n.storage for n in server.memory_nodes}
        self.rolled_back = 0
        self.already_committed = 0

    def recover_all(self, rings) -> int:
        """Scan every ``(log_addr, log_size)`` ring; returns total records
        rolled back.  This is the entry point a fault injector wires to
        blade restart: after a crash, every client's ring is scanned and
        in-doubt records (still locked by a dead/interrupted transaction)
        are rolled back before traffic resumes.
        """
        rolled = 0
        for log_addr, log_size in rings:
            rolled += self.recover_log_ring(log_addr, log_size)
        return rolled

    def recover_log_ring(self, log_addr: int, log_size: int) -> int:
        """Scan one dead client's ring; returns records rolled back."""
        storage = self._storage[blade_of(log_addr)]
        image = storage.read(offset_of(log_addr), log_size)
        rolled = 0
        # Later records supersede earlier ones for the same address, so
        # replay newest-first and skip already-visited addresses.
        seen = set()
        for txn_id, addr, version, payload in reversed(unpack_log_records(image)):
            if addr in seen:
                continue
            seen.add(addr)
            if self._rollback_record(txn_id, addr, version, payload):
                rolled += 1
        self.rolled_back += rolled
        return rolled

    def _rollback_record(self, txn_id: int, addr: int, version: int,
                         payload: bytes) -> bool:
        storage = self._storage.get(blade_of(addr))
        if storage is None:
            raise RuntimeError(f"log names unknown blade {blade_of(addr)}")
        offset = offset_of(addr)
        lock = storage.read_u64(offset)
        if lock != txn_id:
            # The client finished (or never reached) write-back for this
            # record: lock already released, nothing in doubt.
            self.already_committed += 1
            return False
        record = _U64.pack(0) + _U64.pack(version) + payload
        storage.write(offset, record)
        # Repair the backup replica to match (it may hold either image).
        backup = self._find_backup(addr, len(payload))
        if backup is not None:
            backup_storage, backup_offset = backup
            backup_storage.write(backup_offset, record)
        return True

    def _find_backup(self, primary_addr: int, payload_len: int):
        """Locate the backup replica of a primary record, if any."""
        for table in self.server.tables.values():
            if table.payload_bytes != payload_len or table.replicas < 2:
                continue
            for part, (blade_id, base) in enumerate(table.primary_bases):
                if blade_id != blade_of(primary_addr):
                    continue
                relative = offset_of(primary_addr) - base
                if relative < 0 or relative % table.record_bytes:
                    continue
                row = relative // table.record_bytes
                key = row * len(table.primary_bases) + part
                if 0 <= key < table.item_count:
                    backup_addr = table.backup_addr(key)
                    return (
                        self._storage[blade_of(backup_addr)],
                        offset_of(backup_addr),
                    )
        return None
