"""The FORD transaction client: one-sided OCC over the SMART API."""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from repro.apps.ford.server import RECORD_HEADER_BYTES, TableInfo
from repro.core.api import SmartHandle
from repro.rnic.qp import WorkRequest

_U64 = struct.Struct("<Q")


LOG_RECORD_HEADER = struct.Struct("<QQQQ")  # txn_id, record_addr, version, len


def pack_log_record(txn_id: int, record_addr: int, old_version: int,
                    old_payload: bytes) -> bytes:
    """An undo-log record: enough to roll a record back after a crash."""
    return LOG_RECORD_HEADER.pack(
        txn_id, record_addr, old_version, len(old_payload)
    ) + old_payload


def unpack_log_records(data: bytes):
    """Parse a log-ring image into (txn_id, addr, version, payload) tuples."""
    records = []
    cursor = 0
    while cursor + LOG_RECORD_HEADER.size <= len(data):
        txn_id, addr, version, length = LOG_RECORD_HEADER.unpack_from(data, cursor)
        if txn_id == 0:
            break  # unwritten tail of the ring
        cursor += LOG_RECORD_HEADER.size
        if cursor + length > len(data):
            break  # torn tail
        records.append((txn_id, addr, version, data[cursor : cursor + length]))
        cursor += length
    return records


class Aborted(Exception):
    """Raised inside a transaction body to abort it.

    ``retry=True`` (default) marks a concurrency abort that OCC should
    retry; ``retry=False`` marks a logical failure (insufficient funds,
    row already present) that terminates the transaction.
    """

    def __init__(self, reason: str, retry: bool = True):
        super().__init__(reason)
        self.reason = reason
        self.retry = retry


class FaultAbort(Exception):
    """A pipeline stage completed with fault CQEs (blade crash, retry
    exhaustion, flushed QP).

    Unlike :class:`Aborted` this is infrastructure, not concurrency: the
    attempt is wasted, the connections to ``fault_nodes`` must be
    re-established and any locks the attempt still holds on *surviving*
    blades must be CAS-released before OCC can retry.
    """

    def __init__(self, fault_nodes):
        super().__init__(f"fault completions from nodes {sorted(fault_nodes)}")
        self.fault_nodes = frozenset(fault_nodes)


class _Entry:
    """One record in the read or write set."""

    __slots__ = ("table", "key", "version", "payload", "new_payload", "locked")

    def __init__(self, table: TableInfo, key: int, version: int, payload: bytes):
        self.table = table
        self.key = key
        self.version = version
        self.payload = payload
        self.new_payload: Optional[bytes] = None
        self.locked = False


class Transaction:
    """One transaction attempt; created by :meth:`TxnClient.begin`."""

    def __init__(self, client: "TxnClient", txn_id: int):
        self.client = client
        self.handle = client.handle
        self.txn_id = txn_id
        self._read_set: Dict[Tuple[str, int], _Entry] = {}
        self._write_set: Dict[Tuple[str, int], _Entry] = {}
        self.committed = False

    # -- execution phase ---------------------------------------------------

    def read(self, table: TableInfo, key: int):
        """READ a record; returns its payload bytes (read-set member)."""
        entry = yield from self._fetch(table, key)
        self._read_set.setdefault((table.name, key), entry)
        return entry.payload

    def read_for_update(self, table: TableInfo, key: int):
        """READ a record, marking it for write-back."""
        ident = (table.name, key)
        entry = self._write_set.get(ident)
        if entry is None:
            entry = yield from self._fetch(table, key)
            self._write_set[ident] = entry
            self._read_set.pop(ident, None)
        return entry.payload

    def write(self, table: TableInfo, key: int, payload: bytes) -> None:
        """Stage a new payload for a record previously read_for_update,
        or a blind write."""
        if len(payload) != table.payload_bytes:
            raise ValueError(
                f"{table.name}: payload {len(payload)}B != {table.payload_bytes}B"
            )
        ident = (table.name, key)
        entry = self._write_set.get(ident)
        if entry is None:
            entry = _Entry(table, key, 0, b"")
            entry.version = None  # blind write: no version to validate
            self._write_set[ident] = entry
        entry.new_payload = payload

    def _fetch(self, table: TableInfo, key: int):
        handle = self.handle
        data = yield from handle.read_sync(
            table.primary_addr(key), table.record_bytes
        )
        self._check_faults(handle.last_errors)
        version = _U64.unpack_from(data, 8)[0]
        return _Entry(table, key, version, data[RECORD_HEADER_BYTES:])

    @staticmethod
    def _check_faults(failed_batches) -> None:
        """Escalate error completions to a :class:`FaultAbort`."""
        if failed_batches:
            raise FaultAbort(
                {batch.qp.remote_node.node_id for batch in failed_batches}
            )

    # -- commit pipeline ------------------------------------------------------

    CRASH_AFTER_LOCK = "after-lock"
    CRASH_AFTER_LOG = "after-log"

    def commit(self, crash_point: Optional[str] = None):
        """Run lock -> validate -> log -> write-back; returns True on
        commit, False on abort (locks released).

        ``crash_point`` injects a client failure for recovery testing:
        the coroutine stops at the named pipeline stage, leaving locks
        held (and, after-log, old images persisted) exactly as a dead
        compute blade would — :mod:`repro.apps.ford.recovery` must then
        repair the tables.
        """
        handle = self.handle
        pending = [e for e in self._write_set.values() if e.new_payload is not None]
        if not pending:
            self.committed = True
            return True  # read-only: OCC needs no validation round

        # 1. Lock the write set (one doorbell for all CAS ops).
        lock_wrs = []
        for entry in pending:
            addr = entry.table.primary_addr(entry.key)
            lock_wrs.append((entry, handle.cas(addr, 0, self.txn_id)))
        yield from handle.post_send()
        fault_batches = yield from handle.sync()
        # Record which locks actually landed before escalating any fault:
        # the recovery path releases exactly the locks this attempt holds.
        for entry, wr in lock_wrs:
            entry.locked = wr.status == WorkRequest.STATUS_OK and wr.result == 0
        self._check_faults(fault_batches)
        failed = [e for e, wr in lock_wrs if wr.result != 0]
        if failed:
            yield from self._release_locks()
            handle.note_retry()
            return False
        if crash_point == self.CRASH_AFTER_LOCK:
            return "crashed"

        # 2. Validate: blind writes re-check their version under the lock;
        #    read-set members are re-read.
        validate_wrs = []
        for entry in pending:
            if entry.version is None:
                continue
            addr = entry.table.primary_addr(entry.key) + 8
            validate_wrs.append((entry, handle.read(addr, 8)))
        for entry in self._read_set.values():
            addr = entry.table.primary_addr(entry.key) + 8
            validate_wrs.append((entry, handle.read(addr, 8)))
        if validate_wrs:
            yield from handle.post_send()
            fault_batches = yield from handle.sync()
            self._check_faults(fault_batches)
            for entry, wr in validate_wrs:
                if _U64.unpack(wr.result)[0] != entry.version:
                    yield from self._release_locks()
                    handle.note_retry()
                    return False

        # 3. Undo log: old images to the NVM log ring (one doorbell).
        for entry in pending:
            self.client.log_append(
                handle,
                pack_log_record(
                    self.txn_id,
                    entry.table.primary_addr(entry.key),
                    entry.version if entry.version is not None else 0,
                    entry.payload if entry.payload else b"\x00" * entry.table.payload_bytes,
                ),
            )
        yield from handle.post_send()
        fault_batches = yield from handle.sync()
        self._check_faults(fault_batches)
        if crash_point == self.CRASH_AFTER_LOG:
            return "crashed"

        # 4. Write-back + unlock in one WRITE per replica (lock=0,
        #    version+1, payload), batched in one doorbell.
        for entry in pending:
            new_version = (entry.version or 0) + 1
            record = _U64.pack(0) + _U64.pack(new_version) + entry.new_payload
            for addr in entry.table.replica_addrs(entry.key):
                handle.write(addr, record)
        yield from handle.post_send()
        fault_batches = yield from handle.sync()
        self._check_faults(fault_batches)
        self.committed = True
        return True

    def _release_locks(self):
        handle = self.handle
        released = False
        for entry in self._write_set.values():
            if entry.locked:
                handle.write(entry.table.primary_addr(entry.key), _U64.pack(0))
                entry.locked = False
                released = True
        if released:
            yield from handle.post_send()
            yield from handle.sync()


class TxnClient:
    """Per-coroutine transaction client (FORD / SMART-DTX)."""

    MAX_ATTEMPTS = 512

    _next_client_id = 0

    def __init__(self, handle: SmartHandle, log_ring: Tuple[int, int]):
        TxnClient._next_client_id += 1
        self.client_id = TxnClient._next_client_id
        self.handle = handle
        self._log_addr, self._log_size = log_ring
        self._log_cursor = 0
        self._txn_seq = 0
        self.commits = 0
        self.aborts = 0
        #: attempts thrown away because a stage completed with fault CQEs
        self.fault_aborts = 0

    def begin(self) -> Transaction:
        self._txn_seq += 1
        txn_id = (self.client_id << 24) | self._txn_seq
        return Transaction(self, txn_id)

    def log_append(self, handle: SmartHandle, image: bytes) -> None:
        """Buffer an undo-log WRITE into the client's NVM ring."""
        if self._log_cursor + len(image) > self._log_size:
            self._log_cursor = 0  # ring wrap (old entries are obsolete)
        handle.write(self._log_addr + self._log_cursor, image)
        self._log_cursor += len(image)

    def run(self, body: Callable[[Transaction], "object"]):
        """Execute ``body`` with OCC retries until commit.

        ``body(txn)`` is a generator performing reads/writes; it may raise
        :class:`Aborted`.  Failed commits retry after the SMART backoff
        (which collapses to an immediate retry with backoff disabled —
        the FORD baseline behaviour).  Returns the body's return value.
        """
        handle = self.handle
        yield from handle.begin_op()
        for _attempt in range(self.MAX_ATTEMPTS):
            txn = self.begin()
            try:
                result = yield from body(txn)
                ok = yield from txn.commit()
            except FaultAbort as fault:
                self.aborts += 1
                self.fault_aborts += 1
                handle.note_retry()
                yield from self._recover_from_fault(txn, fault)
                yield from handle.backoff_delay()
                continue
            except Aborted as abort:
                yield from txn._release_locks()
                if not abort.retry:
                    handle.end_op(failed=True)
                    return None
                handle.note_retry()
                yield from handle.backoff_delay()
                self.aborts += 1
                continue
            if ok:
                self.commits += 1
                handle.end_op()
                return result
            self.aborts += 1
            yield from handle.backoff_delay()
        handle.end_op(failed=True)
        raise RuntimeError("transaction retried too many times")

    def _recover_from_fault(self, txn: Transaction, fault: FaultAbort):
        """Repair the client after a :class:`FaultAbort`.

        Reconnects the failed QPs (jittered probing until the blade
        answers), then CAS-releases the locks the dead attempt still
        holds (``txn_id -> 0`` can never release another transaction's
        lock; locks on blades that lost the race to a second crash are
        swept by :mod:`repro.apps.ford.recovery` at restart instead).
        """
        handle = self.handle
        handle.note_fault_abort()
        pending_nodes = set(fault.fault_nodes)
        stuck = [e for e in txn._write_set.values() if e.locked]
        for entry in stuck:
            entry.locked = False
        for _round in range(3):
            for node_id in sorted(pending_nodes):
                recovered = yield from handle.reconnect(node_id)
                if not recovered:
                    raise RuntimeError(
                        f"client {self.client_id}: node {node_id} still down "
                        "after the reconnect budget"
                    )
            pending_nodes.clear()
            if not stuck:
                return
            # CAS is idempotent under replay: once released (or rolled
            # back by the recovery manager) the compare fails harmlessly.
            for entry in stuck:
                handle.cas(entry.table.primary_addr(entry.key), txn.txn_id, 0)
            yield from handle.post_send()
            failed = yield from handle.sync()
            if not failed:
                return
            pending_nodes = {b.qp.remote_node.node_id for b in failed}
        # Out of rounds: leave the remainder to crash recovery.
