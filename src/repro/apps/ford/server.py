"""Server-side setup for FORD: tables, replicas and undo-log rings.

Record layout (primary and backup identical)::

    [lock u64][version u64][payload ...]

Records of a table are range-partitioned across memory blades; each
record also has one backup replica on the next blade (primary-backup,
as in FORD).  All table and log regions are NVM (persistent), which the
responder model charges with the Optane write penalty.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster import Node
from repro.memory.address import make_addr
from repro.memory.shard import ShardMap

RECORD_HEADER_BYTES = 16
_U64 = struct.Struct("<Q")

#: per-client undo-log ring size
LOG_RING_BYTES = 64 << 10


@dataclass(frozen=True)
class TableInfo:
    """Client-side description of one table."""

    name: str
    payload_bytes: int
    item_count: int
    #: blade id -> region base offset, in blade order (primary parts)
    primary_bases: Tuple[Tuple[int, int], ...]
    #: blade id -> region base offset (backup parts, same partitioning,
    #: hosted on the *next* blade)
    backup_bases: Tuple[Tuple[int, int], ...]
    replicas: int = 2

    @property
    def record_bytes(self) -> int:
        return RECORD_HEADER_BYTES + self.payload_bytes

    def _partition(self, key: int) -> Tuple[int, int]:
        """(partition index, row within partition) for a key."""
        if not 0 <= key < self.item_count:
            raise KeyError(f"{self.name}: key {key} out of range")
        parts = len(self.primary_bases)
        return key % parts, key // parts

    def primary_addr(self, key: int) -> int:
        part, row = self._partition(key)
        blade_id, base = self.primary_bases[part]
        return make_addr(blade_id, base + row * self.record_bytes)

    def backup_addr(self, key: int) -> int:
        part, row = self._partition(key)
        blade_id, base = self.backup_bases[part]
        return make_addr(blade_id, base + row * self.record_bytes)

    def replica_addrs(self, key: int) -> List[int]:
        addrs = [self.primary_addr(key)]
        if self.replicas > 1:
            addrs.append(self.backup_addr(key))
        return addrs


class DtxServer:
    """Creates tables and log rings across the memory blades."""

    def __init__(self, memory_nodes: Sequence[Node], replicas: int = 2,
                 shard_map: "ShardMap" = None):
        if replicas not in (1, 2):
            raise ValueError("replicas must be 1 or 2")
        if replicas == 2 and len(memory_nodes) < 2:
            raise ValueError("backup replicas require at least 2 memory blades")
        self.memory_nodes = list(memory_nodes)
        self.replicas = replicas
        self.tables: Dict[str, TableInfo] = {}
        self._log_count = 0
        # With a shard map, partition -> blade placement comes off the
        # consistent-hash ring instead of list order, so tables created
        # after a scale-out land on the rebalanced fleet.
        self.shard_map = shard_map
        if shard_map is not None:
            known = {n.node_id for n in memory_nodes}
            missing = [b for b in shard_map.ring.members if b not in known]
            if missing:
                raise ValueError(f"shard map references unknown blades {missing}")

    def _host_for_partition(self, index: int) -> Node:
        """Blade hosting partition ``index`` (ring placement when sharded)."""
        if self.shard_map is None:
            return self.memory_nodes[index % len(self.memory_nodes)]
        blade_id = self.shard_map.blade_for_shard(index % self.shard_map.num_shards)
        return next(n for n in self.memory_nodes if n.node_id == blade_id)

    def create_table(
        self, name: str, item_count: int, payload_bytes: int,
        initial_payload: bytes = b"",
    ) -> TableInfo:
        """Create a partitioned, replicated table; rows zero-initialized
        (or filled with ``initial_payload``)."""
        if name in self.tables:
            raise ValueError(f"table {name!r} exists")
        record_bytes = RECORD_HEADER_BYTES + payload_bytes
        parts = len(self.memory_nodes)
        rows_per_part = (item_count + parts - 1) // parts
        part_bytes = rows_per_part * record_bytes

        primary, backup = [], []
        for i in range(parts):
            node = self._host_for_partition(i)
            region = node.storage.alloc_region(
                f"tbl_{name}_p{i}", part_bytes, persistent=True
            )
            primary.append((node.node_id, region.base))
            if self.replicas > 1:
                # Backup on the next blade in fleet order — guaranteed to
                # differ from the primary host.
                bnode = self.memory_nodes[
                    (self.memory_nodes.index(node) + 1) % len(self.memory_nodes)
                ]
                bregion = bnode.storage.alloc_region(
                    f"tbl_{name}_b{i}", part_bytes, persistent=True
                )
                backup.append((bnode.node_id, bregion.base))
        info = TableInfo(
            name, payload_bytes, item_count, tuple(primary), tuple(backup),
            replicas=self.replicas,
        )
        self.tables[name] = info
        if initial_payload:
            if len(initial_payload) != payload_bytes:
                raise ValueError("initial_payload size mismatch")
            for key in range(item_count):
                self.fill_row(info, key, initial_payload)
        return info

    def fill_row(self, info: TableInfo, key: int, payload: bytes) -> None:
        """Setup-phase write of one row (version 0, unlocked) to all
        replicas."""
        record = b"\x00" * RECORD_HEADER_BYTES + payload
        for addr in info.replica_addrs(key):
            blade_id = (addr >> 48) - 1
            offset = addr & ((1 << 48) - 1)
            self._node(blade_id).storage.bulk_write(offset, record)

    def _node(self, blade_id: int) -> Node:
        for node in self.memory_nodes:
            if node.node_id == blade_id:
                return node
        raise KeyError(blade_id)

    def declare_sanitizer_regions(self, sanitizer) -> None:
        """Teach RDMASan FORD's protocol.

        Every record is ``[lock u64][version u64][payload]``; reads are
        version-validated (optimistic), so all table partitions are
        ``optimistic-read``.  Primaries carry a striped lock table — a
        record write must hold that record's lock word — while backups
        have no covering lock: the primary lock serializes their writers,
        which the overlap detector verifies directly.  Log rings keep the
        default exclusive policy (one writer per ring)."""
        for info in self.tables.values():
            for i, (blade_id, base) in enumerate(info.primary_bases):
                sanitizer.set_region_policy(blade_id, f"tbl_{info.name}_p{i}",
                                            "optimistic-read")
                region = self._node(blade_id).storage.region(f"tbl_{info.name}_p{i}")
                sanitizer.declare_striped_locks(
                    blade_id, region.base, region.end, info.record_bytes,
                    lock_offset=0, span=info.record_bytes,
                )
            for i, (blade_id, base) in enumerate(info.backup_bases):
                sanitizer.set_region_policy(blade_id, f"tbl_{info.name}_b{i}",
                                            "optimistic-read")

    def alloc_log_ring(self) -> Tuple[int, int]:
        """A per-client undo-log ring in NVM; returns (global addr, size)."""
        node = self.memory_nodes[self._log_count % len(self.memory_nodes)]
        region = node.storage.alloc_region(
            f"dtx_log_{self._log_count}", LOG_RING_BYTES, persistent=True
        )
        self._log_count += 1
        return make_addr(node.node_id, region.base), LOG_RING_BYTES
