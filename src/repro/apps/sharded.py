"""Sharded RACE hash table with online shard migration.

The single-table deployments place one RACE instance across a fixed
blade set at setup time.  This module lifts that into an *elastic*
service:

* the key space is split into shards by an independent hash
  (:func:`repro.memory.shard.shard_of`);
* each shard is its own small RACE table instance living on exactly one
  blade, placed by a consistent-hash ring (:class:`ShardMap`);
* shards move between blades **online** — under live traffic — with a
  dual-write protocol (below), and the source instance's regions are
  freed back to the blade allocator afterwards, which is what makes
  scale-in/drain possible at all.

Migration protocol (one shard, src → dst):

1. control plane builds a fresh table instance on dst (region carving is
   charged a deterministic control-plane latency, recorded as the
   allocation-latency metric);
2. the shard enters *migrating* state: every client write now applies to
   src (authoritative) **and** mirrors to dst; deletes additionally
   record a tombstone;
3. the migrator scans src over one-sided verbs (directory → segments →
   KV blocks) and inserts each live pair into dst; ``insert`` refuses
   duplicates, so pairs freshly mirrored by concurrent writers win over
   the scan's possibly-stale copy;
4. a reconciliation pass deletes every tombstoned key from dst (covers
   the scan-races-delete window);
5. flip: the router serves the shard from dst, mirrors stop;
6. after a grace period (lets straggler reads drain) the src instance's
   regions are freed — and zeroed — on the source blade.

Everything is driven by simulated time and seeded state only, so a
migration run replays bit-identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.apps.race import layout
from repro.apps.race.client import HashTableClient
from repro.apps.race.server import HashTableServer, TableMeta
from repro.cluster import Node
from repro.memory.address import blade_of, make_addr, offset_of
from repro.memory.lease import LeaseManager
from repro.memory.shard import ShardMap, ShardMove

#: modeled control-plane cost of carving one region (RPC + bookkeeping)
CONTROL_ALLOC_BASE_NS = 3000.0
#: per-KiB cost of region setup (zeroing/registration at the blade)
CONTROL_ALLOC_PER_KIB_NS = 2.0
#: how long the router keeps a flipped-away source instance alive so
#: straggler reads drain before its regions are freed
DEFAULT_GRACE_NS = 100_000.0

#: shard states
SERVING = "serving"
MIGRATING = "migrating"

_MIRROR_ATTEMPTS = 8


class ShardedHashTableService:
    """Control plane of the sharded table: placement, state, metadata."""

    def __init__(
        self,
        memory_nodes: List[Node],
        num_shards: int = 8,
        segments_per_shard: int = 16,
        buckets_per_segment: int = 64,
        heap_bytes_per_shard: int = 1 << 20,
        vnodes: int = 16,
        lease_term_ns: float = 50_000_000,
    ):
        if not memory_nodes:
            raise ValueError("need at least one memory blade")
        self.memory_nodes: Dict[int, Node] = {n.node_id: n for n in memory_nodes}
        self.shard_map = ShardMap(
            [n.node_id for n in memory_nodes], num_shards, vnodes
        )
        self.num_shards = num_shards
        self.segments_per_shard = segments_per_shard
        self.buckets_per_segment = buckets_per_segment
        self.heap_bytes_per_shard = heap_bytes_per_shard
        self.leases = LeaseManager(term_ns=int(lease_term_ns))

        self._servers: Dict[int, HashTableServer] = {}
        self._metas: Dict[int, TableMeta] = {}
        #: per-shard incarnation — bumped at every (re)placement, part of
        #: the region prefix so old and new instances never collide
        self.incarnation: Dict[int, int] = {s: 0 for s in range(num_shards)}
        self.state: Dict[int, str] = {s: SERVING for s in range(num_shards)}
        #: during migration: shard -> (dst table meta, dst server)
        self._mirror: Dict[int, Tuple[TableMeta, HashTableServer]] = {}
        #: during migration: keys deleted on src and not re-inserted
        self._tombstones: Dict[int, Set[int]] = {}
        # Statistics
        self.migrations_started = 0
        self.migrations_completed = 0
        self.bytes_freed = 0
        self.mirror_writes = 0

        for shard in range(num_shards):
            self._build_shard(shard, self.shard_map.blade_for_shard(shard))

    # -- shard instances ---------------------------------------------------

    def _region_prefix(self, shard: int, incarnation: int) -> str:
        return f"ht_s{shard}_i{incarnation}_"

    def _build_shard(self, shard: int, blade_id: int,
                     incarnation: Optional[int] = None) -> HashTableServer:
        node = self.memory_nodes[blade_id]
        inc = self.incarnation[shard] if incarnation is None else incarnation
        server = HashTableServer(
            [node],
            segments=self.segments_per_shard,
            buckets_per_segment=self.buckets_per_segment,
            heap_bytes_per_blade=self.heap_bytes_per_shard,
            region_prefix=self._region_prefix(shard, inc),
        )
        if incarnation is None:
            self._servers[shard] = server
            self._metas[shard] = server.meta()
        return server

    def server_for_shard(self, shard: int) -> HashTableServer:
        return self._servers[shard]

    def meta_for_shard(self, shard: int) -> TableMeta:
        return self._metas[shard]

    def shard_of(self, key: int) -> int:
        return self.shard_map.shard_of(key)

    def add_blade(self, node: Node) -> List[ShardMove]:
        """Join a blade to the ring; returns the moves that rebalance onto
        it (the caller runs them through a :class:`ShardMigrator`)."""
        self.memory_nodes[node.node_id] = node
        return self.shard_map.plan_add(node.node_id)

    def drain_blade(self, node: Node) -> List[ShardMove]:
        """Take a blade off the ring; returns the moves that empty it."""
        return self.shard_map.plan_remove(node.node_id)

    # -- bulk loading ------------------------------------------------------

    def bulk_load(self, items: Iterable[Tuple[int, int]]) -> int:
        per_shard: Dict[int, List[Tuple[int, int]]] = {}
        for key, value in items:
            per_shard.setdefault(self.shard_of(key), []).append((key, value))
        loaded = 0
        for shard in sorted(per_shard):
            loaded += self._servers[shard].bulk_load(per_shard[shard])
        return loaded

    # -- migration state transitions (called by the migrator) --------------

    def begin_migration(self, move: ShardMove, dst_server: HashTableServer,
                        client_name: str, now: int) -> None:
        shard = move.shard
        if self.state[shard] != SERVING:
            raise RuntimeError(f"shard {shard} is already {self.state[shard]}")
        self.leases.grant(f"shard{shard}", client_name, now)
        self._mirror[shard] = (dst_server.meta(), dst_server)
        self._tombstones[shard] = set()
        self.state[shard] = MIGRATING
        self.migrations_started += 1

    def commit_migration(self, move: ShardMove, client_name: str) -> HashTableServer:
        """Flip the shard to dst; returns the old (src) server so the
        caller can free its regions after the grace period."""
        shard = move.shard
        if self.state[shard] != MIGRATING:
            raise RuntimeError(f"shard {shard} is not migrating")
        old_server = self._servers[shard]
        dst_meta, dst_server = self._mirror.pop(shard)
        self._tombstones.pop(shard)
        self.shard_map.commit(move)
        self._servers[shard] = dst_server
        self._metas[shard] = dst_meta
        self.incarnation[shard] += 1
        self.state[shard] = SERVING
        self.leases.release(f"shard{shard}", client_name)
        self.migrations_completed += 1
        return old_server

    def free_source(self, old_server: HashTableServer) -> int:
        freed = old_server.free_regions()
        self.bytes_freed += freed
        return freed

    # -- mirror bookkeeping (called by client wrappers) --------------------

    def mirror_meta(self, shard: int) -> Optional[TableMeta]:
        entry = self._mirror.get(shard)
        return entry[0] if entry else None

    def note_insert(self, shard: int, key: int) -> None:
        tombs = self._tombstones.get(shard)
        if tombs is not None:
            tombs.discard(key)

    def note_delete(self, shard: int, key: int) -> None:
        tombs = self._tombstones.get(shard)
        if tombs is not None:
            tombs.add(key)

    def tombstones(self, shard: int) -> Set[int]:
        return self._tombstones.get(shard, set())

    def stats(self) -> Dict[str, float]:
        return {
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "bytes_freed": self.bytes_freed,
            "mirror_writes": self.mirror_writes,
            **{f"lease_{k}": v for k, v in self.leases.stats().items()},
        }


class ShardedHashTableClient:
    """One worker coroutine's routed view of the sharded table.

    Wraps per-shard :class:`HashTableClient` instances, rebuilt lazily
    whenever the shard's incarnation changes (i.e. after a flip).  While
    a shard is migrating, writes dual-apply: src first (authoritative
    result), then the dst mirror.
    """

    def __init__(self, service: ShardedHashTableService, handle):
        self.service = service
        self.handle = handle
        #: shard -> (incarnation, client)
        self._clients: Dict[int, Tuple[int, HashTableClient]] = {}
        #: shard -> (incarnation, mirror client)
        self._mirrors: Dict[int, Tuple[int, HashTableClient]] = {}

    def _client(self, shard: int) -> HashTableClient:
        inc = self.service.incarnation[shard]
        cached = self._clients.get(shard)
        if cached is None or cached[0] != inc:
            client = HashTableClient(self.handle, self.service.meta_for_shard(shard))
            self._clients[shard] = (inc, client)
            return client
        return cached[1]

    def _mirror_client(self, shard: int) -> Optional[HashTableClient]:
        meta = self.service.mirror_meta(shard)
        if meta is None:
            return None
        inc = self.service.incarnation[shard]
        cached = self._mirrors.get(shard)
        if cached is None or cached[0] != inc or cached[1].meta is not meta:
            client = HashTableClient(self.handle, meta)
            self._mirrors[shard] = (inc, client)
            return client
        return cached[1]

    # -- dual-write helpers ------------------------------------------------

    def _mirror_put(self, shard: int, key: int, value: int):
        mirror = self._mirror_client(shard)
        if mirror is None:
            return
        self.service.mirror_writes += 1
        # update→insert loop: whichever of (concurrent copy insert,
        # concurrent mirror) got there first, the *newer* value lands.
        for _ in range(_MIRROR_ATTEMPTS):
            ok = yield from mirror.update(key, value)
            if ok:
                return
            ok = yield from mirror.insert(key, value)
            if ok:
                return
        raise RuntimeError(f"mirror put({key}) did not converge")

    def _mirror_delete(self, shard: int, key: int):
        mirror = self._mirror_client(shard)
        if mirror is None:
            return
        self.service.mirror_writes += 1
        yield from mirror.delete(key)

    # -- public operations -------------------------------------------------

    def search(self, key: int):
        shard = self.service.shard_of(key)
        return (yield from self._client(shard).search(key))

    def insert(self, key: int, value: int):
        shard = self.service.shard_of(key)
        ok = yield from self._client(shard).insert(key, value)
        if ok and self.service.state[shard] == MIGRATING:
            self.service.note_insert(shard, key)
            yield from self._mirror_put(shard, key, value)
        return ok

    def update(self, key: int, value: int):
        shard = self.service.shard_of(key)
        ok = yield from self._client(shard).update(key, value)
        if ok and self.service.state[shard] == MIGRATING:
            yield from self._mirror_put(shard, key, value)
        return ok

    def delete(self, key: int):
        shard = self.service.shard_of(key)
        ok = yield from self._client(shard).delete(key)
        if ok and self.service.state[shard] == MIGRATING:
            self.service.note_delete(shard, key)
            yield from self._mirror_delete(shard, key)
        return ok


class ShardMigrator:
    """Executes shard moves online, over one-sided verbs.

    ``handle`` is a normal :class:`SmartHandle` — the migrator contends
    for the same RNIC/fabric resources as the tenants, which is exactly
    the interference the resharding experiment measures.
    """

    def __init__(self, service: ShardedHashTableService, handle, sim,
                 grace_ns: float = DEFAULT_GRACE_NS, name: str = "migrator",
                 alloc_latency_hist=None):
        self.service = service
        self.handle = handle
        self.sim = sim
        self.grace_ns = grace_ns
        self.name = name
        #: optional LogHistogram fed with modeled control-plane
        #: allocation latencies (the obs "allocation latency" metric)
        self.alloc_latency_hist = alloc_latency_hist
        # Statistics
        self.keys_copied = 0
        self.keys_skipped = 0
        self.moves_done: List[ShardMove] = []

    # -- control-plane cost model ------------------------------------------

    def _charge_region_allocs(self, server: HashTableServer):
        """Charge the modeled control-plane latency for every region the
        new instance carved, recording each into the latency metric."""
        for node in server.memory_nodes:
            for region in node.storage.regions():
                if not region.name.startswith(server.region_prefix):
                    continue
                cost = CONTROL_ALLOC_BASE_NS + (
                    region.size / 1024.0
                ) * CONTROL_ALLOC_PER_KIB_NS
                if self.alloc_latency_hist is not None:
                    self.alloc_latency_hist.record(cost)
                yield self.sim.timeout(cost)

    # -- the migration ------------------------------------------------------

    def migrate(self, move: ShardMove):
        """Generator: move one shard; returns keys copied."""
        service = self.service
        shard = move.shard
        if service.shard_map.blade_for_shard(shard) != move.src:
            raise RuntimeError(f"shard {shard} is not on blade {move.src}")

        # 1. build the destination instance (charged control-plane time)
        dst_server = service._build_shard(
            shard, move.dst, incarnation=service.incarnation[shard] + 1
        )
        yield from self._charge_region_allocs(dst_server)

        # 2. dual-write begins
        service.begin_migration(move, dst_server, self.name, int(self.sim.now))
        dst_client = HashTableClient(self.handle, dst_server.meta())

        # 3. copy scan over one-sided verbs
        copied = 0
        for key, value in (yield from self._scan_src(shard)):
            if key in service.tombstones(shard):
                self.keys_skipped += 1
                continue
            ok = yield from dst_client.insert(key, value)
            if ok:
                copied += 1
            else:
                self.keys_skipped += 1  # a fresher mirror write won
        self.keys_copied += copied

        # 4. reconcile tombstones (scan may have raced a delete)
        for key in sorted(service.tombstones(shard)):
            yield from dst_client.delete(key)

        # 5. flip
        old_server = service.commit_migration(move, self.name)

        # 6. grace period, then free + scrub the source regions
        yield self.sim.timeout(self.grace_ns)
        service.free_source(old_server)
        self.moves_done.append(move)
        return copied

    def migrate_all(self, moves: List[ShardMove]):
        """Generator: run a whole rebalance plan sequentially."""
        total = 0
        for move in moves:
            total += yield from self.migrate(move)
        return total

    # -- source scan -------------------------------------------------------

    def _scan_src(self, shard: int):
        """READ the source shard's directory, segments and KV blocks;
        returns the live (key, value) pairs."""
        handle = self.handle
        meta = self.service.meta_for_shard(shard)
        header = yield from handle.read_sync(meta.dir_addr, layout.DIR_HEADER_BYTES)
        count = layout.unpack_u64(header[8:16])
        entries = yield from handle.read_sync(
            meta.dir_addr + layout.DIR_HEADER_BYTES, count * 8
        )
        seg_addrs = []
        for i in range(count):
            addr = layout.unpack_u64(entries[i * 8 : i * 8 + 8])
            if addr not in seg_addrs:
                seg_addrs.append(addr)

        seg_bytes = layout.segment_bytes(meta.buckets_per_segment)
        pairs: List[Tuple[int, int]] = []
        seen: Set[int] = set()
        for seg_addr in seg_addrs:
            blade_id = blade_of(seg_addr)
            data = yield from handle.read_sync(seg_addr, seg_bytes)
            for b in range(meta.buckets_per_segment):
                base = layout.bucket_offset(b)
                for s in range(layout.SLOTS_PER_BUCKET):
                    raw = layout.unpack_u64(data[base + s * 8 : base + s * 8 + 8])
                    if raw == layout.EMPTY_SLOT:
                        continue
                    slot = layout.decode_slot(raw)
                    kv = yield from handle.read_sync(
                        make_addr(blade_id, slot.addr), layout.KV_BLOCK_BYTES
                    )
                    key, value = layout.unpack_kv(kv)
                    if key not in seen:
                        seen.add(key)
                        pairs.append((key, value))
        return pairs
