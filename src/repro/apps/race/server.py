"""Server-side setup of the RACE hash table.

Memory blades are passive: everything here happens during deployment
(region carving, directory initialization, bulk loading), before clients
start issuing one-sided verbs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.race import layout
from repro.cluster import Node
from repro.memory.address import blade_of, make_addr, offset_of


@dataclass
class TableMeta:
    """Bootstrap information clients receive out of band (one TCP exchange
    in real deployments)."""

    dir_addr: int
    global_depth: int
    buckets_per_segment: int
    #: directory cache: directory index -> global segment address
    segment_addrs: List[int]
    #: per-segment local depths (client cache, refreshed with the directory)
    local_depths: List[int]
    #: blade id -> (heap head addr, heap base offset, heap end offset)
    heaps: Dict[int, Tuple[int, int, int]]


class HashTableServer:
    """Creates and bulk-loads a RACE table across memory blades."""

    def __init__(
        self,
        memory_nodes: Sequence[Node],
        segments: int = 64,
        buckets_per_segment: int = 512,
        heap_bytes_per_blade: int = 8 << 20,
        region_prefix: str = "race_",
    ):
        if segments & (segments - 1):
            raise ValueError("segments must be a power of two")
        self.memory_nodes = list(memory_nodes)
        self.segments = segments
        self.buckets_per_segment = buckets_per_segment
        self.global_depth = int(math.log2(segments))
        self._segment_bytes = layout.segment_bytes(buckets_per_segment)
        # Region names are prefixed so many table instances (one per
        # shard in the sharded service) can coexist on the same blades.
        self.region_prefix = region_prefix

        primary = self.memory_nodes[0].storage
        dir_capacity = segments * 16  # room for a few doublings
        self._dir_region = primary.alloc_region(
            f"{region_prefix}dir", layout.DIR_HEADER_BYTES + dir_capacity * 8
        )
        self.segment_addrs: List[int] = []
        self._segment_regions = {}
        for node in self.memory_nodes:
            count = self._segments_on(node)
            region = node.storage.alloc_region(
                f"{region_prefix}segments", count * self._segment_bytes
            )
            self._segment_regions[node.node_id] = region

        self.heaps: Dict[int, Tuple[int, int, int]] = {}
        for node in self.memory_nodes:
            head = node.storage.alloc_region(f"{region_prefix}heap_head", 8)
            heap = node.storage.alloc_region(
                f"{region_prefix}heap", heap_bytes_per_blade
            )
            node.storage.write_u64(head.base, heap.base)
            self.heaps[node.node_id] = (
                make_addr(node.node_id, head.base),
                heap.base,
                heap.end,
            )

        self._init_directory()

    def free_regions(self) -> int:
        """Release every region this table carved — the teardown side of
        shard migration.  Returns the number of bytes returned to the
        blade allocators (which zero and make them reusable)."""
        freed = 0
        primary = self.memory_nodes[0].storage
        freed += self._dir_region.size
        primary.free_region(self._dir_region.name)
        for node in self.memory_nodes:
            region = self._segment_regions[node.node_id]
            freed += region.size
            node.storage.free_region(region.name)
            for suffix in ("heap_head", "heap"):
                name = f"{self.region_prefix}{suffix}"
                freed += node.storage.region(name).size
                node.storage.free_region(name)
        return freed

    def _segments_on(self, node: Node) -> int:
        """Segments hosted by ``node`` (round-robin placement)."""
        index = self.memory_nodes.index(node)
        base, extra = divmod(self.segments, len(self.memory_nodes))
        return base + (1 if index < extra else 0)

    def _init_directory(self) -> None:
        primary = self.memory_nodes[0].storage
        cursors = {
            node.node_id: self._segment_regions[node.node_id].base
            for node in self.memory_nodes
        }
        for i in range(self.segments):
            node = self.memory_nodes[i % len(self.memory_nodes)]
            offset = cursors[node.node_id]
            cursors[node.node_id] = offset + self._segment_bytes
            node.storage.write_u64(offset, self.global_depth)  # local depth
            node.storage.write_u64(offset + 8, 0)  # lock word
            self.segment_addrs.append(make_addr(node.node_id, offset))
        primary.write_u64(self._dir_region.base, self.global_depth)
        primary.write_u64(self._dir_region.base + 8, self.segments)
        for i, addr in enumerate(self.segment_addrs):
            primary.write_u64(
                self._dir_region.base + layout.DIR_HEADER_BYTES + i * 8, addr
            )

    # -- bootstrap --------------------------------------------------------------

    def meta(self) -> TableMeta:
        return TableMeta(
            dir_addr=make_addr(self.memory_nodes[0].node_id, self._dir_region.base),
            global_depth=self.global_depth,
            buckets_per_segment=self.buckets_per_segment,
            segment_addrs=list(self.segment_addrs),
            local_depths=[self.global_depth] * len(self.segment_addrs),
            heaps=dict(self.heaps),
        )

    def declare_sanitizer_regions(self, sanitizer) -> None:
        """Teach RDMASan this table's protocol: the directory and segment
        lock words.  Everything else keeps the default exclusive policy —
        RACE publishes fresh KV blocks with a slot CAS only after their
        writes complete, so no data bytes are ever concurrently written."""
        primary = self.memory_nodes[0]
        sanitizer.declare_lock_word(primary.node_id, self._dir_region.base + 16)
        for seg_addr in self.segment_addrs:
            sanitizer.declare_lock_word(blade_of(seg_addr), offset_of(seg_addr) + 8)

    # -- bulk loading -----------------------------------------------------------------

    def bulk_load(self, items) -> int:
        """Load (key, value) pairs directly into blade memory.

        Uses the same placement as client inserts, so clients can find
        every loaded key.  Returns the number of items loaded.
        """
        node_by_id = {n.node_id: n for n in self.memory_nodes}
        loaded = 0
        for key, value in items:
            dir_index = layout.directory_index(key, self.global_depth)
            seg_addr = self.segment_addrs[dir_index]
            blade_id = blade_of(seg_addr)
            seg_offset = offset_of(seg_addr)
            storage = node_by_id[blade_id].storage
            # Allocate the KV block by bumping the blade's heap head.
            head_addr, _, heap_end = self.heaps[blade_id]
            head_offset = offset_of(head_addr)
            kv_offset = storage.read_u64(head_offset)
            if kv_offset + layout.KV_BLOCK_BYTES > heap_end:
                raise MemoryError(f"heap exhausted on blade {blade_id}")
            storage.write_u64(head_offset, kv_offset + layout.KV_BLOCK_BYTES)
            storage.bulk_write(kv_offset, layout.pack_kv(key, value))

            b1, b2 = layout.bucket_indices(key, self.buckets_per_segment)
            slot_value = layout.make_slot(key, kv_offset)
            if not self._place(storage, seg_offset, (b1, b2), slot_value):
                raise MemoryError(
                    f"bulk load: both buckets full for key {key}; "
                    "increase segments or buckets_per_segment"
                )
            loaded += 1
        return loaded

    def _place(self, storage, seg_offset: int, buckets, slot_value: int) -> bool:
        for bucket in buckets:
            base = seg_offset + layout.bucket_offset(bucket)
            for slot in range(layout.SLOTS_PER_BUCKET):
                if storage.read_u64(base + slot * 8) == layout.EMPTY_SLOT:
                    storage.write_u64(base + slot * 8, slot_value)
                    return True
        return False
