"""Client-side RACE hash table operations over one-sided verbs.

One implementation serves both systems under study:

* **RACE** (baseline) — construct with ``SmartFeatures`` all off: per-thread
  QPs on a stock 16-doorbell context, no throttling, and failed CAS
  retried immediately (§3.3's wasted-IOPS behaviour).
* **SMART-HT** — the same code with the full feature set: thread-aware
  allocation, adaptive throttling and ``backoff_cas_sync``.

This mirrors the paper's 44-changed-lines refactor: the protocol is
identical, only the framework underneath changes.

Operation op-counts (what drives the scalability story):

* lookup  = 1 doorbell (2 bucket READs) + 1 KV READ  → 3 READs
* update  = 1 doorbell (KV WRITE + 2 bucket READs) + 1 KV READ + 1 CAS;
  every failed CAS costs 3 more ops (re-read, re-write, CAS)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.common import RemoteAllocator
from repro.apps.race import layout
from repro.apps.race.server import TableMeta
from repro.core.api import SmartHandle
from repro.memory.address import blade_of, make_addr


class HashTableClient:
    """One client coroutine's view of the table."""

    MAX_ATTEMPTS = 512

    def __init__(self, handle: SmartHandle, meta: TableMeta):
        self.handle = handle
        #: shared, mutable directory cache (all coroutines of a process
        #: share one directory in the real system too)
        self.meta = meta
        self._allocators: Dict[int, RemoteAllocator] = {}

    # -- public operations ----------------------------------------------------

    def search(self, key: int):
        """Generator; returns the value or None."""
        handle = self.handle
        yield from handle.begin_op()
        found = yield from self._search_inner(key, may_refresh=True)
        handle.end_op(failed=found is None)
        return found[1] if found else None

    def insert(self, key: int, value: int):
        """Generator; returns True unless the key already exists."""
        handle = self.handle
        yield from handle.begin_op()
        ok = yield from self._insert_inner(key, value)
        handle.end_op(failed=not ok)
        return ok

    def update(self, key: int, value: int):
        """Generator; returns True unless the key is absent."""
        handle = self.handle
        yield from handle.begin_op()
        ok = yield from self._update_inner(key, value)
        handle.end_op(failed=not ok)
        return ok

    def delete(self, key: int):
        """Generator; returns True unless the key is absent."""
        handle = self.handle
        yield from handle.begin_op()
        ok = yield from self._delete_inner(key)
        handle.end_op(failed=not ok)
        return ok

    # -- placement ---------------------------------------------------------------

    def _locate(self, key: int) -> Tuple[int, int, int]:
        """(dir_index, segment global addr, blade id) for a key."""
        dir_index = layout.directory_index(key, self.meta.global_depth)
        seg_addr = self.meta.segment_addrs[dir_index]
        return dir_index, seg_addr, blade_of(seg_addr)

    def _allocator(self, blade_id: int) -> RemoteAllocator:
        allocator = self._allocators.get(blade_id)
        if allocator is None:
            head_addr, base, end = self.meta.heaps[blade_id]
            allocator = RemoteAllocator(self.handle, blade_id, head_addr, base, end)
            self._allocators[blade_id] = allocator
        return allocator

    def _bucket_addrs(self, key: int, seg_addr: int) -> Tuple[int, int]:
        b1, b2 = layout.bucket_indices(key, self.meta.buckets_per_segment)
        return (
            seg_addr + layout.bucket_offset(b1),
            seg_addr + layout.bucket_offset(b2),
        )

    # -- lookups ---------------------------------------------------------------------

    def _read_buckets(self, key: int, seg_addr: int, extra_write=None):
        """One doorbell: optional KV write + both candidate bucket READs.

        Returns [(slot global addr, raw slot value), ...] across both
        buckets.
        """
        handle = self.handle
        addr1, addr2 = self._bucket_addrs(key, seg_addr)
        if extra_write is not None:
            handle.write(*extra_write)
        wr1 = handle.read(addr1, layout.BUCKET_BYTES)
        wr2 = handle.read(addr2, layout.BUCKET_BYTES)
        yield from handle.post_send()
        yield from handle.sync()
        slots = []
        for base_addr, wr in ((addr1, wr1), (addr2, wr2)):
            data = wr.result
            for i in range(layout.SLOTS_PER_BUCKET):
                raw = layout.unpack_u64(data[i * 8 : i * 8 + 8])
                slots.append((base_addr + i * 8, raw))
        return slots

    def _match_candidates(self, key: int, slots, blade_id: int):
        """Slots whose fingerprint matches ``key``."""
        fp = layout.fingerprint(key)
        return [
            (slot_addr, raw)
            for slot_addr, raw in slots
            if raw != layout.EMPTY_SLOT and layout.decode_slot(raw).fingerprint == fp
        ]

    def _verify(self, key: int, raw: int, blade_id: int):
        """READ the KV block behind a slot; returns value or None."""
        slot = layout.decode_slot(raw)
        kv = yield from self.handle.read_sync(
            make_addr(blade_id, slot.addr), layout.KV_BLOCK_BYTES
        )
        stored_key, value = layout.unpack_kv(kv)
        return value if stored_key == key else None

    def _search_inner(self, key: int, may_refresh: bool):
        _, seg_addr, blade_id = self._locate(key)
        slots = yield from self._read_buckets(key, seg_addr)
        for slot_addr, raw in self._match_candidates(key, slots, blade_id):
            value = yield from self._verify(key, raw, blade_id)
            if value is not None:
                return (slot_addr, value, raw)
        if may_refresh:
            # Possibly a stale directory after a concurrent split.
            yield from self.refresh_directory()
            return (yield from self._search_inner(key, may_refresh=False))
        return None

    # -- modifications -----------------------------------------------------------------------

    def _insert_inner(self, key: int, value: int):
        handle = self.handle
        for _attempt in range(self.MAX_ATTEMPTS):
            _, seg_addr, blade_id = self._locate(key)
            kv_offset = yield from self._allocator(blade_id).alloc(
                layout.KV_BLOCK_BYTES
            )
            kv_payload = (make_addr(blade_id, kv_offset), layout.pack_kv(key, value))
            slots = yield from self._read_buckets(key, seg_addr, extra_write=kv_payload)
            for _slot_addr, raw in self._match_candidates(key, slots, blade_id):
                existing = yield from self._verify(key, raw, blade_id)
                if existing is not None:
                    return False  # duplicate key
            target = self._pick_empty_slot(slots)
            if target is None:
                yield from self._split(key)
                continue
            new_slot = layout.make_slot(key, kv_offset)
            old = yield from handle.backoff_cas_sync(target, layout.EMPTY_SLOT, new_slot)
            if old == layout.EMPTY_SLOT:
                return True
            # Slot stolen under us: loop — the next iteration re-reads the
            # buckets and re-writes the KV block (the paper's 3-op retry).
        raise RuntimeError(f"insert({key}): too many retries")

    @staticmethod
    def _pick_empty_slot(slots) -> Optional[int]:
        """First empty slot, preferring the bucket with more free space."""
        per_bucket = [slots[: layout.SLOTS_PER_BUCKET], slots[layout.SLOTS_PER_BUCKET :]]
        per_bucket.sort(
            key=lambda b: sum(1 for _, raw in b if raw == layout.EMPTY_SLOT),
            reverse=True,
        )
        for bucket in per_bucket:
            for slot_addr, raw in bucket:
                if raw == layout.EMPTY_SLOT:
                    return slot_addr
        return None

    def _update_inner(self, key: int, value: int):
        handle = self.handle
        refreshed = False
        known = None  # (bucket_addr, slot_index) after the first full pass
        fp = layout.fingerprint(key)
        for _attempt in range(self.MAX_ATTEMPTS):
            _, seg_addr, blade_id = self._locate(key)
            kv_offset = yield from self._allocator(blade_id).alloc(
                layout.KV_BLOCK_BYTES
            )
            kv_addr = make_addr(blade_id, kv_offset)
            kv_data = layout.pack_kv(key, value)
            if known is not None:
                # The paper's 3-op retry: re-read *this* bucket, re-write
                # the KV entry, CAS the same slot again (no KV re-verify:
                # the fingerprint filters out the rare slot reuse).
                bucket_addr, index = known
                handle.write(kv_addr, kv_data)
                bucket_wr = handle.read(bucket_addr, layout.BUCKET_BYTES)
                yield from handle.post_send()
                yield from handle.sync()
                raw = layout.unpack_u64(bucket_wr.result[index * 8 : index * 8 + 8])
                if raw == layout.EMPTY_SLOT or layout.decode_slot(raw).fingerprint != fp:
                    known = None  # slot reused; fall back to full path
                    continue
                slot_addr = bucket_addr + index * 8
            else:
                slots = yield from self._read_buckets(
                    key, seg_addr, extra_write=(kv_addr, kv_data)
                )
                located = None
                for slot_addr, raw in self._match_candidates(key, slots, blade_id):
                    existing = yield from self._verify(key, raw, blade_id)
                    if existing is not None:
                        located = (slot_addr, raw)
                        break
                if located is None:
                    if not refreshed:
                        refreshed = True
                        yield from self.refresh_directory()
                        continue
                    return False
                slot_addr, raw = located
            new_slot = layout.make_slot(key, kv_offset)
            old = yield from handle.backoff_cas_sync(slot_addr, raw, new_slot)
            if old == raw:
                return True
            addr1, addr2 = self._bucket_addrs(key, seg_addr)
            bucket_addr = addr1 if addr1 <= slot_addr < addr1 + layout.BUCKET_BYTES else addr2
            known = (bucket_addr, (slot_addr - bucket_addr) // 8)
        raise RuntimeError(f"update({key}): too many retries")

    def _delete_inner(self, key: int):
        handle = self.handle
        for _attempt in range(self.MAX_ATTEMPTS):
            found = yield from self._search_inner(key, may_refresh=True)
            if found is None:
                return False
            slot_addr, _value, raw = found
            old = yield from handle.backoff_cas_sync(slot_addr, raw, layout.EMPTY_SLOT)
            if old == raw:
                return True
        raise RuntimeError(f"delete({key}): too many retries")

    # -- directory maintenance ------------------------------------------------------------

    def refresh_directory(self):
        """Re-READ the remote directory into the shared client cache."""
        handle = self.handle
        header = yield from handle.read_sync(self.meta.dir_addr, layout.DIR_HEADER_BYTES)
        global_depth = layout.unpack_u64(header[0:8])
        count = layout.unpack_u64(header[8:16])
        entries = yield from handle.read_sync(
            self.meta.dir_addr + layout.DIR_HEADER_BYTES, count * 8
        )
        self.meta.global_depth = global_depth
        self.meta.segment_addrs = [
            layout.unpack_u64(entries[i * 8 : i * 8 + 8]) for i in range(count)
        ]

    def _split(self, key: int):
        """Split the key's segment (and double the directory if needed).

        Simplified from RACE's lock-free protocol: the splitter holds the
        segment's lock word; concurrent writers to *other* segments are
        unaffected, and readers of this segment retry via the directory
        refresh path.  Benches pre-size tables so splits stay out of the
        measured window.
        """
        handle = self.handle
        dir_index, seg_addr, blade_id = self._locate(key)
        old = yield from handle.cas_sync(seg_addr + 8, 0, 1)  # segment lock
        if old != 0:
            # Someone else is splitting: wait and refresh.
            yield from handle.backoff_delay()
            yield from self.refresh_directory()
            return

        try:
            header = yield from handle.read_sync(seg_addr, 8)
            local_depth = layout.unpack_u64(header)
            if local_depth >= self.meta.global_depth:
                yield from self._double_directory()
            new_depth = local_depth + 1

            # Allocate and populate the sibling segment on the same blade.
            seg_bytes = layout.segment_bytes(self.meta.buckets_per_segment)
            new_offset = yield from self._allocator(blade_id).alloc_large(seg_bytes)
            new_seg_addr = make_addr(blade_id, new_offset)
            yield from self._redistribute(
                seg_addr, new_seg_addr, blade_id, local_depth, new_depth
            )

            # Point the moved directory entries at the sibling.
            yield from self._update_directory_entries(
                dir_index, seg_addr, new_seg_addr, local_depth, new_depth
            )
        finally:
            yield from handle.write_sync(seg_addr + 8, layout.pack_u64(0))
        yield from self.refresh_directory()

    def _redistribute(self, seg_addr, new_seg_addr, blade_id, local_depth, new_depth):
        """Move entries whose next hash bit is 1 into the sibling segment."""
        handle = self.handle
        buckets = self.meta.buckets_per_segment
        seg_bytes = layout.segment_bytes(buckets)
        data = yield from handle.read_sync(seg_addr, seg_bytes)

        moved_bit = 1 << local_depth
        stay = bytearray(seg_bytes)
        move = bytearray(seg_bytes)
        stay[0:8] = layout.pack_u64(new_depth)
        move[0:8] = layout.pack_u64(new_depth)
        stay[8:16] = layout.pack_u64(1)  # still locked until written back
        move[8:16] = layout.pack_u64(0)

        for b in range(buckets):
            base = layout.bucket_offset(b)
            for s in range(layout.SLOTS_PER_BUCKET):
                off = base + s * 8
                raw = layout.unpack_u64(data[off : off + 8])
                if raw == layout.EMPTY_SLOT:
                    continue
                slot = layout.decode_slot(raw)
                kv = yield from handle.read_sync(
                    make_addr(blade_id, slot.addr), layout.KV_BLOCK_BYTES
                )
                stored_key, _ = layout.unpack_kv(kv)
                target = move if layout.hash1(stored_key) & moved_bit else stay
                self._place_local(target, stored_key, raw)

        yield from handle.write_sync(new_seg_addr, bytes(move))
        yield from handle.write_sync(seg_addr, bytes(stay))

    def _place_local(self, buffer: bytearray, key: int, raw: int) -> None:
        b1, b2 = layout.bucket_indices(key, self.meta.buckets_per_segment)
        for bucket in (b1, b2):
            base = layout.bucket_offset(bucket)
            for s in range(layout.SLOTS_PER_BUCKET):
                off = base + s * 8
                if layout.unpack_u64(buffer[off : off + 8]) == layout.EMPTY_SLOT:
                    buffer[off : off + 8] = layout.pack_u64(raw)
                    return
        raise MemoryError("split produced an over-full bucket")

    def _double_directory(self):
        """Double the directory (mirrors entries into the new half)."""
        handle = self.handle
        dir_addr = self.meta.dir_addr
        old = yield from handle.cas_sync(dir_addr + 16, 0, 1)  # directory lock
        if old != 0:
            yield from handle.backoff_delay()
            yield from self.refresh_directory()
            return
        try:
            header = yield from handle.read_sync(dir_addr, 16)
            depth = layout.unpack_u64(header[0:8])
            count = layout.unpack_u64(header[8:16])
            entries = yield from handle.read_sync(
                dir_addr + layout.DIR_HEADER_BYTES, count * 8
            )
            yield from handle.write_sync(
                dir_addr + layout.DIR_HEADER_BYTES + count * 8, entries
            )
            yield from handle.write_sync(dir_addr, layout.pack_u64(depth + 1))
            yield from handle.write_sync(dir_addr + 8, layout.pack_u64(count * 2))
        finally:
            yield from handle.write_sync(dir_addr + 16, layout.pack_u64(0))

    def _update_directory_entries(
        self, dir_index, seg_addr, new_seg_addr, local_depth, new_depth
    ):
        handle = self.handle
        header = yield from handle.read_sync(self.meta.dir_addr, 16)
        global_depth = layout.unpack_u64(header[0:8])
        count = layout.unpack_u64(header[8:16])
        suffix = dir_index & ((1 << local_depth) - 1)
        for i in range(count):
            if (i & ((1 << local_depth) - 1)) == suffix and i & (1 << local_depth):
                entry_addr = self.meta.dir_addr + layout.DIR_HEADER_BYTES + i * 8
                yield from handle.cas_sync(entry_addr, seg_addr, new_seg_addr)


class RaceHashTable(HashTableClient):
    """Public alias emphasizing the baseline configuration."""
