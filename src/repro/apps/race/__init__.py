"""RACE: one-sided RDMA-conscious extendible hashing [Zuo et al.].

The paper's authors reimplemented RACE from scratch (the original is
closed source); so do we.  The structure that matters for the scalability
study is preserved exactly:

* a client-cached directory pointing at segments spread over blades;
* two candidate buckets per key (two independent hashes), 8-byte slots
  holding ``fingerprint | size | KV-block address``;
* out-of-place KV blocks published with a single CAS — so a conflicting
  update costs one failed CAS plus a 3-op retry (re-read bucket, re-write
  KV, CAS again), the §3.3 amplification.
"""

from repro.apps.race.client import HashTableClient, RaceHashTable
from repro.apps.race.server import HashTableServer

__all__ = ["HashTableClient", "HashTableServer", "RaceHashTable"]
