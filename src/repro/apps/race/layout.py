"""On-blade layout of the RACE hash table.

Directory (on the primary memory blade)::

    [global_depth u64][segment_count u64][dir_lock u64][segment_addr u64] * capacity

Segment::

    [header: local_depth u64][lock u64][bucket] * buckets_per_segment

Bucket (one cacheline)::

    [slot u64] * SLOTS_PER_BUCKET  (+ 8 spare bytes)

Slot encoding (8 bytes, CAS-published)::

    fingerprint (8 bits) | kv_units (8 bits) | kv block address (48 bits)

KV block::

    [key u64][value u64]
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

SLOTS_PER_BUCKET = 7
BUCKET_BYTES = 64  # 7 slots + 8 spare bytes; one cacheline
SEGMENT_HEADER_BYTES = 16
KV_BLOCK_BYTES = 16
DIR_HEADER_BYTES = 24

_U64 = struct.Struct("<Q")
_KV = struct.Struct("<QQ")

_ADDR_MASK = (1 << 48) - 1
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finalizer — the second, independent hash."""
    value = (value + _GOLDEN_GAMMA) & _MASK_64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK_64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK_64
    return value ^ (value >> 31)


def hash1(key: int) -> int:
    """Primary hash: directory index bits + bucket-1 index + fingerprint."""
    return mix64(key ^ 0x5555555555555555)


def hash2(key: int) -> int:
    """Independent secondary hash for the second candidate bucket."""
    return mix64(key ^ 0xAAAAAAAAAAAAAAAA)


def fingerprint(key: int) -> int:
    """8-bit tag stored in the slot; 0 is reserved for 'empty-looking'."""
    fp = (hash1(key) >> 48) & 0xFF
    return fp or 1


@dataclass(frozen=True)
class Slot:
    """Decoded slot value."""

    fingerprint: int
    kv_units: int
    addr: int

    @property
    def kv_bytes(self) -> int:
        return self.kv_units * 8

    def encode(self) -> int:
        if not 0 <= self.fingerprint <= 0xFF:
            raise ValueError("fingerprint out of range")
        if not 0 <= self.kv_units <= 0xFF:
            raise ValueError("kv_units out of range")
        if self.addr & ~_ADDR_MASK:
            raise ValueError("slot address needs more than 48 bits")
        return (self.fingerprint << 56) | (self.kv_units << 48) | self.addr


EMPTY_SLOT = 0


def decode_slot(value: int) -> Slot:
    return Slot(
        fingerprint=(value >> 56) & 0xFF,
        kv_units=(value >> 48) & 0xFF,
        addr=value & _ADDR_MASK,
    )


def make_slot(key: int, kv_addr48: int) -> int:
    """Slot value publishing a KV block at the 48-bit packed address."""
    return Slot(fingerprint(key), KV_BLOCK_BYTES // 8, kv_addr48).encode()


def pack_kv(key: int, value: int) -> bytes:
    return _KV.pack(key & _MASK_64, value & _MASK_64)


def unpack_kv(data: bytes):
    return _KV.unpack(data)


def pack_u64(value: int) -> bytes:
    return _U64.pack(value & _MASK_64)


def unpack_u64(data: bytes) -> int:
    return _U64.unpack(data)[0]


def segment_bytes(buckets_per_segment: int) -> int:
    return SEGMENT_HEADER_BYTES + buckets_per_segment * BUCKET_BYTES


def bucket_offset(bucket_index: int) -> int:
    """Byte offset of a bucket inside its segment."""
    return SEGMENT_HEADER_BYTES + bucket_index * BUCKET_BYTES


def bucket_indices(key: int, buckets_per_segment: int):
    """The two candidate buckets of a key within its segment."""
    b1 = (hash1(key) >> 16) % buckets_per_segment
    b2 = (hash2(key) >> 16) % buckets_per_segment
    if b2 == b1:
        b2 = (b2 + 1) % buckets_per_segment
    return b1, b2


def directory_index(key: int, global_depth: int) -> int:
    """Directory slot for a key: the low ``global_depth`` bits of hash1."""
    return hash1(key) & ((1 << global_depth) - 1)
