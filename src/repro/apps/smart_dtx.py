"""SMART-DTX: FORD refactored onto SMART (§5.2).

The paper's 16-changed-lines refactor is, again, pure configuration: the
same :class:`~repro.apps.ford.txn.TxnClient` runs on a SmartThread with
the full feature set.  Per the paper, SMART-DTX uses one QP per (thread,
memory blade) connection, which is exactly what
:class:`~repro.core.SmartContext` allocates.
"""

from __future__ import annotations

from repro.apps.ford.txn import TxnClient
from repro.core.features import SmartFeatures, baseline, full


class SmartTxnClient(TxnClient):
    """Alias emphasising the SMART configuration."""


def ford_features() -> SmartFeatures:
    """Framework configuration of FORD+ (the paper's strengthened
    baseline: per-thread QPs, synchronous logging, no SMART)."""
    return baseline()


def smart_dtx_features() -> SmartFeatures:
    """Framework configuration of SMART-DTX."""
    return full()
