"""Simulation-hygiene lint: repo-specific static rules over ``src/repro``.

Rules (each suppressible with a same-line ``# lint: disable=SIMxxx``):

* **SIM001** — wall-clock use (``time.time``/``datetime.now``/…) in
  simulation code.  Real time leaking into a run breaks determinism.
* **SIM002** — unseeded ``random``-module functions outside
  ``sim/rng.py``.  Use a seeded ``random.Random`` instance.
* **SIM003** — a broad ``except``/``except Exception`` inside a process
  generator that can swallow :class:`repro.sim.core.Interrupt` (the same
  bug family PR 2 fixed by hand in the throttler/avoider).
* **SIM004** — ``==``/``!=`` on simulation timestamps that may be floats
  (``busy_until`` and friends); compare rounded integers instead.
* **SIM005** — yielding a non-``Waitable`` literal from a process
  function (the kernel would raise at run time; the lint catches it
  before a run ever reaches that path).

Run as ``python -m repro.analysis.lint [paths...] [--format=json]``;
exits non-zero when any finding survives the pragmas.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

RULES = {
    "SIM001": "wall-clock use in simulation code (use sim.now, integer ns)",
    "SIM002": "unseeded random-module use outside sim/rng.py (use a seeded Random)",
    "SIM003": "broad except in a process generator can swallow sim.core.Interrupt",
    "SIM004": "float equality comparison on simulation timestamps",
    "SIM005": "process yields a non-Waitable literal",
}

_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")

_WALL_CLOCK_TIME = {
    "time",
    "monotonic",
    "perf_counter",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
_UNSEEDED_RANDOM = {
    "random",
    "randrange",
    "randint",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "getrandbits",
    "gauss",
    "expovariate",
    "randbytes",
}
#: attribute calls whose yielded result marks a function as a process
#: generator (sim.timeout(...), lock.acquire(...), throttler.take(...), …)
_PROCESS_YIELD_ATTRS = {"timeout", "acquire", "take", "event", "begin_op", "all_of"}
_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


@dataclass
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rules disabled on that line."""
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                disabled.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenizeError:  # pragma: no cover - unparsable source
        pass
    return disabled


def _own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _leaf_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_process_generator(fn: ast.AST) -> bool:
    """Heuristic: does this function look like a DES process generator?

    ``yield from``-delegating functions count (all verbs helpers do), as
    does yielding the result of a known waitable factory (``timeout``,
    ``acquire``, ``take``, …) or a ``.done`` event.
    """
    for child in _own_scope(fn):
        if isinstance(child, ast.YieldFrom):
            return True
        if isinstance(child, ast.Yield) and child.value is not None:
            value = child.value
            if isinstance(value, ast.Call):
                name = _leaf_name(value.func)
                if name in _PROCESS_YIELD_ATTRS:
                    return True
            if isinstance(value, ast.Attribute) and value.attr == "done":
                return True
    return False


def _mentions(node: ast.AST, attr_names: Set[str]) -> bool:
    for sub in ast.walk(node):
        name = _leaf_name(sub)
        if name in attr_names:
            return True
    return False


def _has_float_or_ns(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        name = _leaf_name(sub)
        if name is not None and name.endswith("_ns"):
            return True
    return False


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source; returns the findings after pragmas."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(path, error.lineno or 0, error.offset or 0, "SIM000",
                    f"syntax error: {error.msg}")
        ]
    findings: List[Finding] = []
    #: finding -> last source line of the flagged node, so a pragma on
    #: the closing line of a multi-line statement also suppresses it
    end_lines: Dict[int, int] = {}

    def flag(node: ast.AST, rule: str) -> None:
        finding = Finding(
            path, getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            rule, RULES[rule]
        )
        end_lines[id(finding)] = (
            getattr(node, "end_lineno", None) or finding.line
        )
        findings.append(finding)

    in_rng_module = path.replace("\\", "/").endswith("sim/rng.py")

    for node in ast.walk(tree):
        # SIM001 / SIM002: wall clock and unseeded randomness.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            base = _leaf_name(node.func.value)
            if base == "time" and attr in _WALL_CLOCK_TIME:
                flag(node, "SIM001")
            elif base in {"datetime", "date"} and attr in _WALL_CLOCK_DATETIME:
                flag(node, "SIM001")
            elif base == "random" and attr in _UNSEEDED_RANDOM and not in_rng_module:
                flag(node, "SIM002")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and any(
                alias.name in _WALL_CLOCK_TIME for alias in node.names
            ):
                flag(node, "SIM001")
            elif (
                node.module == "random"
                and not in_rng_module
                and any(alias.name in _UNSEEDED_RANDOM for alias in node.names)
            ):
                flag(node, "SIM002")
        # SIM004: float equality on timestamps.
        elif isinstance(node, ast.Compare):
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                sides = [node.left, *node.comparators]
                if any(_mentions(s, {"busy_until"}) for s in sides):
                    flag(node, "SIM004")
                elif any(_mentions(s, {"now"}) for s in sides) and any(
                    _has_float_or_ns(s) for s in sides
                ):
                    flag(node, "SIM004")

    # SIM003 / SIM005: rules scoped to process generators.
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_process_generator(node):
            continue
        for child in _own_scope(node):
            if isinstance(child, ast.Try):
                _check_broad_except(child, flag)
            elif isinstance(child, ast.Yield):
                if child.value is None or isinstance(
                    child.value,
                    (ast.Constant, ast.Tuple, ast.List, ast.Dict, ast.Set),
                ):
                    flag(child, "SIM005")

    disabled = _pragmas(source)
    kept: List[Finding] = []
    for f in findings:
        rules = disabled.get(f.line, set()) | disabled.get(
            end_lines.get(id(f), f.line), set()
        )
        if f.rule in rules or "ALL" in rules:
            continue
        kept.append(f)
    return kept


def _check_broad_except(try_node: ast.Try, flag) -> None:
    interrupt_handled = False
    for handler in try_node.handlers:
        names: Set[str] = set()
        if handler.type is not None:
            types = (
                handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
            )
            for t in types:
                name = _leaf_name(t)
                if name:
                    names.add(name)
        if "Interrupt" in names:
            interrupt_handled = True
            continue
        broad = handler.type is None or names & _BROAD_EXCEPTION_NAMES
        if not broad or interrupt_handled:
            continue
        # A handler that re-raises (bare `raise`) passes Interrupt on.
        reraises = any(
            isinstance(sub, ast.Raise) and sub.exc is None
            for sub in ast.walk(handler)
        )
        if not reraises:
            flag(handler, "SIM003")


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path))


def lint_paths(paths: Sequence[Path]) -> tuple:
    """Lint every ``.py`` under ``paths``; returns (findings, file count).

    Overlapping inputs (a file *and* its parent directory, repeated
    arguments, the same file through different relative spellings) are
    linted — and counted — exactly once.
    """
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            key = file.resolve()
            if key not in seen:
                seen.add(key)
                files.append(file)
    findings: List[Finding] = []
    for file in files:
        findings.extend(lint_file(file))
    return findings, len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Simulation-hygiene lint (SIM001-SIM005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    options = parser.parse_args(argv)
    paths = options.paths or [Path(__file__).resolve().parents[1]]
    findings, file_count = lint_paths(paths)
    if options.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files": file_count,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
        print(f"{len(findings)} finding(s) in {file_count} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
