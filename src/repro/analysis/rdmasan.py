"""RDMASan: a shadow-memory race sanitizer for one-sided RDMA.

Disaggregated applications coordinate through *unsynchronized* one-sided
READ/WRITE/CAS — a missed conflict is silent data corruption, not a
crash.  RDMASan attaches passively at the verbs/device boundary (same
pattern as :mod:`repro.obs`) and records every in-flight access as an
interval ``(actor, qp, [addr, addr+len), kind, issue/complete sim-time)``
in a per-blade shadow map.  Two accesses race when their in-flight
intervals overlap in sim-time *and* their byte ranges overlap *and* no
happens-before edge orders them.

Happens-before edges recognized:

* **completion-before-issue** — records are unindexed at completion, so
  only temporally overlapping pairs are ever compared;
* **same-QP ordering** — RC executes a QP's operations in PSN order at
  the responder, so two ops on one QP never race with each other;
* **atomic serialization** — the RNIC serializes CAS/FAA on the same
  device, so atomic–atomic pairs are ordered (and atomic–read pairs are
  the optimistic single-word pattern, exempt by design);
* **sync words** — any 8-byte word that has ever been the target of a
  CAS/FAA (plus explicitly declared lock words) is a synchronization
  variable: overlaps confined to sync words are the protocol working as
  intended, not a race.

On top of overlap detection, regions may declare a *policy*
(``exclusive`` — the default — also flags read-under-write;
``optimistic-read`` — version-validated readers — flags only
write-write), and striped lock tables (FORD's per-record locks) enable a
lock-discipline check: a WRITE into a stripe's data while the stripe's
lock word is not held by the writer is a finding even if no second
access happens to be in flight.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.memory.address import blade_of, offset_of
from repro.rnic.qp import AM_SEND, CAS, FAA, READ, WRITE, QueuePair, WorkRequest

#: shadow chunk granularity (bytes = 1 << shift); 256 B keeps bucket
#: lists short for record-sized accesses without bloating the index
_CHUNK_SHIFT = 8

_ACCESS_CLASS = {READ: "R", WRITE: "W", CAS: "A", FAA: "A"}

POLICY_EXCLUSIVE = "exclusive"
POLICY_OPTIMISTIC_READ = "optimistic-read"

_POLICIES = frozenset({POLICY_EXCLUSIVE, POLICY_OPTIMISTIC_READ})


class _Access:
    """One in-flight one-sided operation, as seen by the shadow map."""

    __slots__ = (
        "wr",
        "blade",
        "start",
        "end",
        "cls",
        "thread_id",
        "node_id",
        "actor",
        "qp_ord",
        "issued_ns",
        "completed_ns",
        "inv_ns",
    )

    def __init__(
        self,
        wr: WorkRequest,
        blade: int,
        start: int,
        cls: str,
        thread_id: int,
        node_id: int,
        actor: Any,
        qp_ord: int,
        issued_ns: int,
    ):
        self.wr = wr
        self.blade = blade
        self.start = start
        self.end = start + wr.size
        self.cls = cls
        self.thread_id = thread_id
        self.node_id = node_id
        self.actor = actor
        self.qp_ord = qp_ord
        self.issued_ns = issued_ns
        self.completed_ns: Optional[int] = None
        #: time an ODP invalidation hit a page this access overlaps while
        #: it was in flight (None = never); see ``on_odp_invalidate``
        self.inv_ns: Optional[float] = None

    def chunks(self) -> range:
        return range(self.start >> _CHUNK_SHIFT, ((self.end - 1) >> _CHUNK_SHIFT) + 1)


class _StripedLocks:
    """A table of per-stripe lock words (FORD: one per record)."""

    __slots__ = ("base", "end", "stride", "lock_offset", "span")

    def __init__(self, base: int, end: int, stride: int, lock_offset: int, span: int):
        self.base = base
        self.end = end
        self.stride = stride
        self.lock_offset = lock_offset
        self.span = span

    def covering_word(self, pos: int) -> Optional[int]:
        """The stripe lock word whose 8 bytes contain byte ``pos``."""
        if not self.base <= pos < self.end:
            return None
        word = self.base + ((pos - self.base) // self.stride) * self.stride + self.lock_offset
        return word if word <= pos < word + 8 else None


class _BladeShadow:
    """Per-blade shadow state: the chunked interval index plus protocol
    declarations (policies, lock words, striped tables)."""

    __slots__ = ("chunks", "policies", "striped", "sync_words", "lock_words", "storage")

    def __init__(self, storage=None):
        self.chunks: Dict[int, List[_Access]] = {}
        self.policies: List[Tuple[int, int, str, str]] = []  # (base, end, policy, name)
        self.striped: List[_StripedLocks] = []
        #: words observed as CAS/FAA targets (protocol sync variables)
        self.sync_words: Set[int] = set()
        #: words declared as locks by the application
        self.lock_words: Set[int] = set()
        self.storage = storage  # MemoryBlade, for region names in findings


class RdmaSanitizer:
    """The sanitizer facade: attach, declare protocol facts, collect
    findings, report leaks at teardown.

    Typical use::

        sanitizer = RdmaSanitizer()
        sanitizer.attach_cluster(cluster)
        server.declare_sanitizer_regions(sanitizer)
        ...  # run the workload
        sanitizer.finish()
        report = sanitizer.report()
    """

    def __init__(self, max_findings: int = 256):
        self.max_findings = max_findings
        self.findings: List[Dict[str, Any]] = []
        self.leaks: List[Dict[str, Any]] = []
        self.ops_checked = 0
        self.dropped_findings = 0
        self._shadows: Dict[int, _BladeShadow] = {}
        self._storages: Dict[int, Any] = {}
        self._batches: Dict[int, List[_Access]] = {}
        #: current holder of each tracked lock word: (blade, word) -> actor
        self._holders: Dict[Tuple[int, int], Any] = {}
        #: per-run QP ordinals in first-post order (qp_id is a process-wide
        #: counter and therefore unstable across reruns; the ordinal is not)
        self._qp_ords: Dict[int, int] = {}
        self._clusters: List[Any] = []
        self._dedup: Set[Tuple] = set()

    # -- attachment ---------------------------------------------------------

    def attach_cluster(self, cluster) -> "RdmaSanitizer":
        """Hook every device of ``cluster``; enables leak checking too."""
        for node in cluster.nodes:
            node.device.sanitizer = self
            self._storages.setdefault(node.node_id, node.storage)
        cluster.sanitizer = self
        if cluster.sim.process_registry is None:
            cluster.sim.process_registry = []
        self._clusters.append(cluster)
        return self

    def attach_deployment(self, deployment) -> "RdmaSanitizer":
        return self.attach_cluster(deployment.cluster)

    # -- protocol declarations ---------------------------------------------

    def set_region_policy(self, blade_id: int, region_name: str, policy: str) -> None:
        """Declare the conflict policy of a named region on ``blade_id``."""
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        storage = self._storages.get(blade_id)
        if storage is None:
            raise KeyError(f"blade {blade_id} is not attached")
        region = storage.region(region_name)
        shadow = self._shadow(blade_id)
        shadow.policies.append((region.base, region.end, policy, region.name))

    def declare_lock_word(self, blade_id: int, offset: int) -> None:
        """Declare one 8-byte lock word at ``offset`` on ``blade_id``."""
        self._shadow(blade_id).lock_words.add(offset)

    def declare_striped_locks(
        self,
        blade_id: int,
        base: int,
        end: int,
        stride: int,
        lock_offset: int = 0,
        span: Optional[int] = None,
    ) -> None:
        """Declare a striped lock table: each ``stride``-byte stripe in
        ``[base, end)`` is protected by the 8-byte word at
        ``stripe + lock_offset``; the lock covers ``span`` bytes of the
        stripe (default: the whole stride)."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        self._shadow(blade_id).striped.append(
            _StripedLocks(base, end, stride, lock_offset, span or stride)
        )

    # -- hook points (called from rnic.verbs / rnic.device) -----------------

    def on_post(self, thread, qp: QueuePair, batch) -> None:
        """A batch was rung in: index its accesses as in-flight."""
        now = qp.device.sim.now
        qp_ord = self._qp_ords.setdefault(qp.qp_id, len(self._qp_ords) + 1)
        thread_id = getattr(thread, "thread_id", 0)
        node = getattr(thread, "node", None)
        node_id = node.node_id if node is not None else -1
        actor = batch.actor
        if actor is None:
            actor = ("thread", node_id, thread_id)
        records: List[_Access] = []
        for wr in batch.wrs:
            blade = blade_of(wr.remote_addr)
            if wr.opcode == AM_SEND:
                # An active message carries no address range of its own:
                # its handler's *declared* regions are what it touches,
                # observed as blade-local accesses.  Handler writes are
                # exempt from lock discipline — the blade serializes
                # handlers, that serialization IS their synchronization.
                from repro.rnic.offload import declared_am_regions

                shadow = self._shadow(blade)
                for offset, size, cls in declared_am_regions(
                    wr, self._storages.get(blade)
                ):
                    record = _Access(
                        wr, blade, offset, cls, thread_id, node_id, actor,
                        qp_ord, now,
                    )
                    record.end = offset + size
                    if cls == "A":
                        shadow.sync_words.add(offset)
                    for chunk in record.chunks():
                        shadow.chunks.setdefault(chunk, []).append(record)
                    records.append(record)
                continue
            start = offset_of(wr.remote_addr)
            cls = _ACCESS_CLASS[wr.opcode]
            record = _Access(wr, blade, start, cls, thread_id, node_id, actor, qp_ord, now)
            shadow = self._shadow(blade)
            if cls == "A":
                # Any CAS/FAA target is a protocol sync variable from now
                # on; later overlaps confined to it are not races.
                shadow.sync_words.add(start)
            if cls == "W":
                self._check_discipline(shadow, record)
            for chunk in record.chunks():
                shadow.chunks.setdefault(chunk, []).append(record)
            records.append(record)
        self._batches[batch.batch_id] = records
        self.ops_checked += len(records)

    def on_complete(self, batch) -> None:
        """A batch completed: unindex its accesses, checking each against
        every record still in flight (covers every temporally-overlapping
        pair exactly once, same-batch siblings included)."""
        records = self._batches.pop(batch.batch_id, None)
        if records is None:
            return
        now = batch.qp.device.sim.now
        for record in records:
            record.completed_ns = now
            shadow = self._shadows[record.blade]
            seen: Set[int] = set()
            for chunk in record.chunks():
                bucket = shadow.chunks.get(chunk)
                bucket.remove(record)
                if not bucket:
                    del shadow.chunks[chunk]
                    continue
                if record.wr.status != WorkRequest.STATUS_OK:
                    continue  # faulted ops never executed remotely
                for other in bucket:
                    if id(other) in seen:
                        continue
                    seen.add(id(other))
                    overlap_start = max(record.start, other.start)
                    overlap_end = min(record.end, other.end)
                    if overlap_start < overlap_end:
                        self._classify(shadow, record, other, overlap_start, overlap_end)
            if record.wr.status == WorkRequest.STATUS_OK:
                if record.cls == "R" and record.inv_ns is not None:
                    # The page(s) under this READ were invalidated while
                    # it was in flight: the NIC may have DMA-ed from a
                    # translation the host had already revoked — the
                    # completed buffer can hold stale or torn data.
                    self._emit(
                        "odp-invalidated-read", shadow, record.blade,
                        record.start, record.end, record, None,
                        detected_ns=now,
                        extra={"invalidated_ns": record.inv_ns},
                    )
                self._update_locks(shadow, record)

    def on_odp_invalidate(self, blade_id: int, ranges, now: float) -> None:
        """ODP shot down translations covering ``ranges`` (byte spans) on
        ``blade_id``: mark every overlapping in-flight READ.  The finding
        itself is emitted at completion time (only a completed READ can
        have returned questionable data to the application)."""
        shadow = self._shadows.get(blade_id)
        if shadow is None:
            return
        for range_start, range_end in ranges:
            first = range_start >> _CHUNK_SHIFT
            last = (range_end - 1) >> _CHUNK_SHIFT
            for chunk in range(first, last + 1):
                for record in shadow.chunks.get(chunk, ()):
                    if (
                        record.cls == "R"
                        and record.inv_ns is None
                        and record.start < range_end
                        and range_start < record.end
                    ):
                        record.inv_ns = now

    # -- detection ----------------------------------------------------------

    def _classify(
        self,
        shadow: _BladeShadow,
        a: _Access,
        b: _Access,
        overlap_start: int,
        overlap_end: int,
    ) -> None:
        if a.qp_ord == b.qp_ord:
            return  # RC executes same-QP ops in order: happens-before
        if a.wr.opcode == AM_SEND and b.wr.opcode == AM_SEND:
            # The blade runs handlers on one serialized core: two active
            # messages never overlap in execution, whatever their
            # in-flight windows look like.
            return
        kinds = {a.cls, b.cls}
        if kinds == {"R"}:
            return
        if kinds == {"A"} or kinds == {"A", "R"}:
            # The RNIC serializes atomics; an 8-byte read racing a CAS is
            # the optimistic single-word pattern (validated by compare).
            return
        if self._sync_covered(shadow, overlap_start, overlap_end):
            return
        if "R" in kinds:
            if self._policy_for(shadow, overlap_start) == POLICY_OPTIMISTIC_READ:
                return
            kind = "read-under-write"
        else:
            kind = "write-write"
        first, second = sorted(
            (a, b), key=lambda r: (r.issued_ns, r.node_id, r.thread_id, r.qp_ord)
        )
        self._emit(
            kind,
            shadow,
            first.blade,
            overlap_start,
            overlap_end,
            first,
            second,
            detected_ns=a.completed_ns if a.completed_ns is not None else b.completed_ns,
        )

    def _sync_covered(self, shadow: _BladeShadow, start: int, end: int) -> bool:
        """True when every byte of [start, end) lies in a sync/lock word."""
        pos = start
        while pos < end:
            hit = self._word_covering(shadow, pos)
            if hit is None:
                return False
            pos = hit + 8
        return True

    def _word_covering(self, shadow: _BladeShadow, pos: int) -> Optional[int]:
        """The base of a sync/lock word whose 8 bytes contain ``pos``."""
        for candidate in range(pos, pos - 8, -1):
            if candidate in shadow.sync_words or candidate in shadow.lock_words:
                return candidate
        for table in shadow.striped:
            word = table.covering_word(pos)
            if word is not None:
                return word
        return None

    def _policy_for(self, shadow: _BladeShadow, pos: int) -> str:
        for base, end, policy, _name in shadow.policies:
            if base <= pos < end:
                return policy
        return POLICY_EXCLUSIVE

    def _check_discipline(self, shadow: _BladeShadow, record: _Access) -> None:
        """A WRITE into a striped region must hold the stripes' locks —
        unless the write *is* the lock release (confined to the word)."""
        for table in shadow.striped:
            overlap_start = max(record.start, table.base)
            overlap_end = min(record.end, table.end)
            if overlap_start >= overlap_end:
                continue
            first = (overlap_start - table.base) // table.stride
            last = (overlap_end - 1 - table.base) // table.stride
            for k in range(first, last + 1):
                stripe = table.base + k * table.stride
                word = stripe + table.lock_offset
                covered_start = max(overlap_start, stripe)
                covered_end = min(overlap_end, stripe + table.span)
                if covered_start >= covered_end:
                    continue  # only touched the stripe's uncovered tail
                if word <= covered_start and covered_end <= word + 8:
                    continue  # the write is the lock release itself
                holder = self._holders.get((record.blade, word))
                if holder != record.actor:
                    self._emit(
                        "lock-discipline",
                        shadow,
                        record.blade,
                        covered_start,
                        covered_end,
                        record,
                        None,
                        detected_ns=record.issued_ns,
                        extra={
                            "lock_word": word,
                            "holder": list(holder) if holder is not None else None,
                        },
                    )

    def _update_locks(self, shadow: _BladeShadow, record: _Access) -> None:
        """Track lock-word holders from completed ops: a successful CAS
        acquires (swap != 0) or releases (swap == 0); a plain WRITE over a
        tracked word sets/clears per the written value."""
        key_blade = record.blade
        if record.wr.opcode == CAS:
            word = record.start
            if self._is_tracked_word(shadow, word) and record.wr.result == record.wr.compare:
                if record.wr.swap != 0:
                    self._holders[(key_blade, word)] = record.actor
                else:
                    self._holders.pop((key_blade, word), None)
        elif record.cls == "W" and record.wr.payload is not None:
            for word in self._tracked_words_in(shadow, record.start, record.end):
                offset = word - record.start
                value = int.from_bytes(record.wr.payload[offset : offset + 8], "little")
                if value == 0:
                    self._holders.pop((key_blade, word), None)
                else:
                    self._holders[(key_blade, word)] = record.actor

    def _is_tracked_word(self, shadow: _BladeShadow, word: int) -> bool:
        if word in shadow.lock_words:
            return True
        return any(table.covering_word(word) == word for table in shadow.striped)

    def _tracked_words_in(self, shadow: _BladeShadow, start: int, end: int) -> List[int]:
        """Lock words fully contained in [start, end), ascending."""
        words = {w for w in shadow.lock_words if start <= w and w + 8 <= end}
        for table in shadow.striped:
            overlap_start = max(start, table.base)
            overlap_end = min(end, table.end)
            if overlap_start >= overlap_end:
                continue
            first = (overlap_start - table.base) // table.stride
            last = (overlap_end - 1 - table.base) // table.stride
            for k in range(first, last + 1):
                word = table.base + k * table.stride + table.lock_offset
                if start <= word and word + 8 <= end:
                    words.add(word)
        return sorted(words)

    # -- findings -----------------------------------------------------------

    def _emit(
        self,
        kind: str,
        shadow: _BladeShadow,
        blade: int,
        overlap_start: int,
        overlap_end: int,
        first: _Access,
        second: Optional[_Access],
        detected_ns: Optional[int],
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        key = (
            kind,
            blade,
            overlap_start,
            overlap_end,
            first.node_id,
            first.thread_id,
            first.qp_ord,
            second.node_id if second is not None else None,
            second.thread_id if second is not None else None,
            second.qp_ord if second is not None else None,
        )
        if key in self._dedup:
            return
        self._dedup.add(key)
        if len(self.findings) >= self.max_findings:
            self.dropped_findings += 1
            return
        region = None
        if shadow.storage is not None:
            found = shadow.storage.find_region(overlap_start)
            region = found.name if found is not None else None
        finding: Dict[str, Any] = {
            "kind": kind,
            "blade": blade,
            "region": region,
            "addr": overlap_start,
            "bytes": overlap_end - overlap_start,
            "first": self._endpoint(first),
            "second": self._endpoint(second) if second is not None else None,
            "detected_ns": detected_ns,
        }
        if extra:
            finding.update(extra)
        self.findings.append(finding)
        self._instant(kind, finding)

    @staticmethod
    def _endpoint(record: _Access) -> Dict[str, Any]:
        return {
            "node": record.node_id,
            "thread": record.thread_id,
            "qp": record.qp_ord,
            "op": record.wr.opcode,
            "issued_ns": record.issued_ns,
            "completed_ns": record.completed_ns,
        }

    def _instant(self, kind: str, finding: Dict[str, Any]) -> None:
        """Surface the finding as an obs instant so it lands in traces."""
        for cluster in self._clusters:
            recorder = getattr(cluster, "recorder", None)
            if recorder is not None:
                recorder.instant(
                    "sanitizer",
                    "races",
                    kind,
                    cluster.sim.now,
                    {
                        "blade": finding["blade"],
                        "region": finding["region"],
                        "addr": finding["addr"],
                        "bytes": finding["bytes"],
                    },
                )
                return

    # -- teardown -----------------------------------------------------------

    def finish(self, expect_idle: bool = False) -> None:
        """Run the leak checks.

        QPs stuck in ERROR are always reported.  With ``expect_idle`` the
        stricter checks run too: held driver locks, still-runnable
        registered processes and in-flight batches (benchmarks routinely
        stop mid-flight at the measurement horizon, so these are opt-in).
        """
        for cluster in self._clusters:
            for node in cluster.nodes:
                for context in node.device.contexts:
                    for qp in context.qps:
                        if qp.state == QueuePair.STATE_ERROR:
                            self.leaks.append(
                                {
                                    "kind": "qp-error",
                                    "node": node.node_id,
                                    "remote": qp.remote_node.node_id,
                                    "cause": qp.error_cause,
                                }
                            )
                    if expect_idle:
                        self._idle_leaks(node, context)
                if expect_idle:
                    offload = node.device.offload
                    if offload is not None and offload.pending:
                        self.leaks.append(
                            {
                                "kind": "handler-queue",
                                "node": node.node_id,
                                "count": offload.pending,
                            }
                        )
            if expect_idle:
                registry = cluster.sim.process_registry or []
                for process in registry:
                    if process.alive:
                        self.leaks.append(
                            {"kind": "process-runnable", "name": process.name}
                        )
        if expect_idle and self._batches:
            self.leaks.append({"kind": "in-flight-batches", "count": len(self._batches)})

    def _idle_leaks(self, node, context) -> None:
        for doorbell in context.uar.doorbells:
            if doorbell.lock.locked:
                self.leaks.append(
                    {
                        "kind": "lock-held",
                        "node": node.node_id,
                        "lock": doorbell.lock.name,
                        "owner": doorbell.lock.owner,
                    }
                )
        for qp in context.qps:
            if qp.share_lock is not None and qp.share_lock.locked:
                self.leaks.append(
                    {
                        "kind": "lock-held",
                        "node": node.node_id,
                        "lock": qp.share_lock.name,
                        "owner": qp.share_lock.owner,
                    }
                )

    def report(self) -> Dict[str, Any]:
        """The structured summary benches embed in their results."""
        return {
            "enabled": True,
            "ops_checked": self.ops_checked,
            "findings": list(self.findings),
            "dropped_findings": self.dropped_findings,
            "leaks": list(self.leaks),
        }

    # -- internals ----------------------------------------------------------

    def _shadow(self, blade_id: int) -> _BladeShadow:
        shadow = self._shadows.get(blade_id)
        if shadow is None:
            shadow = _BladeShadow(self._storages.get(blade_id))
            self._shadows[blade_id] = shadow
        return shadow
