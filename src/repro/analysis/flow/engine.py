"""The analysis driver: file collection, parallelism, pragmas, baseline, CLI.

``analyze_source`` runs the per-file rules (FLW1xx–FLW3xx) on one
module.  ``analyze_paths`` adds the cross-module protocol checker
(FLW4xx) over app packages and can fan the per-file work out on the
persistent bench worker pool (``repro.bench.parallel``) — static
analysis of one file is exactly the kind of independent, picklable
point the pool was built for.

Suppression is the lint pragma, same syntax, honored on either the
first *or* the last line of the flagged statement (multi-line calls keep
their pragma next to the closing parenthesis)::

    old = yield from handle.cas_sync(  # lint: disable=FLW401
        entry_addr, seg_addr, new_seg_addr
    )

Exit status: 0 when no *new* findings remain after the baseline
(``--baseline``); 1 otherwise.  ``--write-baseline`` records the
current findings as accepted.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import baseline as baseline_mod
from repro.analysis.flow import output as output_mod
from repro.analysis.flow import protocol as protocol_mod
from repro.analysis.flow import rules as rules_mod
from repro.analysis.lint import _pragmas

#: the complete rule catalog (per-file + protocol families)
RULES: Dict[str, str] = {**rules_mod.RULES, **protocol_mod.PROTOCOL_RULES}


@dataclass(frozen=True)
class FlowFinding:
    path: str
    line: int
    col: int
    end_line: int
    rule: str
    message: str
    #: enclosing function qualname ('' at module level)
    scope: str = ""

    def fingerprint(self) -> str:
        return baseline_mod.fingerprint(self.path, self.scope, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "rule": self.rule,
            "message": self.message,
            "scope": self.scope,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowFinding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            end_line=int(data["end_line"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
            scope=str(data.get("scope", "")),
        )

    def __str__(self) -> str:
        where = f" [{self.scope}]" if self.scope else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{where} {self.message}"


def _apply_pragmas(findings: List[FlowFinding], source: str) -> List[FlowFinding]:
    """Drop findings disabled by a pragma on their start *or* end line."""
    disabled = _pragmas(source)
    kept: List[FlowFinding] = []
    for finding in findings:
        applicable: Set[str] = set()
        applicable |= disabled.get(finding.line, set())
        applicable |= disabled.get(finding.end_line, set())
        if finding.rule in applicable or "ALL" in applicable:
            continue
        kept.append(finding)
    return kept


def _lift(raw: "rules_mod.RawFinding", path: str) -> FlowFinding:
    return FlowFinding(
        path=path,
        line=raw.line,
        col=raw.col,
        end_line=raw.end_line,
        rule=raw.rule,
        message=raw.message,
        scope=raw.scope,
    )


def analyze_source(source: str, path: str = "<string>") -> List[FlowFinding]:
    """Per-file rules over one module, pragmas applied."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            FlowFinding(
                path=path,
                line=error.lineno or 0,
                col=error.offset or 0,
                end_line=error.lineno or 0,
                rule="FLW000",
                message=f"syntax error: {error.msg}",
            )
        ]
    findings = [_lift(raw, path) for raw in rules_mod.check_module(tree, path)]
    return _apply_pragmas(findings, source)


def analyze_files(files: Sequence[str]) -> List[Dict[str, object]]:
    """Worker entry point: per-file findings as picklable dicts.

    Registered with the bench pool registry under ``analyze_files`` so a
    :class:`~repro.bench.parallel.PointSpec` can name it.
    """
    results: List[Dict[str, object]] = []
    for path in files:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            results.append(
                FlowFinding(
                    path=path, line=0, col=0, end_line=0,
                    rule="FLW000", message=f"unreadable: {error}",
                ).to_dict()
            )
            continue
        results.extend(f.to_dict() for f in analyze_source(source, path))
    return results


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` under ``paths``, each file exactly once even when
    inputs overlap (a file and its parent directory, duplicates, …)."""
    files: List[Path] = []
    seen: Set[Path] = set()

    def add(file: Path) -> None:
        key = file.resolve()
        if key not in seen:
            seen.add(key)
            files.append(file)

    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                add(file)
        else:
            add(path)
    return files


def _analyze_parallel(files: List[Path], jobs: int) -> List[FlowFinding]:
    from repro.bench.parallel import PointSpec, register_experiment, run_points

    register_experiment("analyze_files", "repro.analysis.flow.engine")
    chunk = max(1, len(files) // (jobs * 4))
    names = [str(f) for f in files]
    specs = [
        PointSpec(fn="analyze_files", kwargs={"files": names[i:i + chunk]})
        for i in range(0, len(names), chunk)
    ]
    findings: List[FlowFinding] = []
    for batch in run_points(specs, jobs=jobs):
        findings.extend(FlowFinding.from_dict(d) for d in batch)
    return findings


def analyze_paths(
    paths: Sequence[Path],
    jobs: Optional[int] = None,
    protocol: bool = True,
) -> Tuple[List[FlowFinding], int]:
    """Analyze every ``.py`` under ``paths``; returns (findings, file count).

    ``jobs`` follows the bench convention (``None`` → ``REPRO_JOBS``,
    ``0`` → all cores, ``1`` → serial).  The protocol checker always runs
    in-process: app units are few and its cost is dwarfed by the
    per-file pass.
    """
    from repro.bench.parallel import resolve_jobs

    files = collect_files(paths)
    effective = resolve_jobs(jobs)
    if effective > 1 and len(files) > 1:
        findings = _analyze_parallel(files, effective)
    else:
        findings = [
            FlowFinding.from_dict(d) for d in analyze_files([str(f) for f in files])
        ]

    if protocol:
        sources: Dict[str, str] = {}

        def read_source(path: str) -> str:
            if path not in sources:
                sources[path] = Path(path).read_text(encoding="utf-8")
            return sources[path]

        for app in protocol_mod.group_apps([str(f) for f in files], read_source):
            for path, raw_findings in protocol_mod.check_app(app).items():
                lifted = [_lift(raw, path) for raw in raw_findings]
                findings.extend(_apply_pragmas(lifted, app[path]))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description="Dataflow-aware static analysis (FLW101-FLW403).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="accepted-findings file; only NEW findings fail the gate",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS; 0 = all cores)",
    )
    parser.add_argument(
        "--no-protocol",
        action="store_true",
        help="skip the cross-module protocol checker (FLW4xx)",
    )
    options = parser.parse_args(argv)
    paths = options.paths or [Path(__file__).resolve().parents[2]]

    findings, file_count = analyze_paths(
        paths, jobs=options.jobs, protocol=not options.no_protocol
    )

    if options.write_baseline:
        if options.baseline is None:
            parser.error("--write-baseline requires --baseline FILE")
        counts = baseline_mod.dump(findings, options.baseline)
        print(
            f"baseline: {sum(counts.values())} finding(s) under "
            f"{len(counts)} fingerprint(s) written to {options.baseline}"
        )
        return 0

    accepted_count = 0
    if options.baseline is not None:
        known = baseline_mod.load(options.baseline)
        new, accepted = baseline_mod.suppress(findings, known)
        accepted_count = len(accepted)
        report_findings = new
    else:
        report_findings = findings

    if options.format == "sarif":
        report = output_mod.to_sarif(report_findings, RULES)
    elif options.format == "json":
        report = output_mod.to_json(report_findings, file_count)
    else:
        report = output_mod.to_text(report_findings, file_count)
        if accepted_count:
            report += f" ({accepted_count} baseline finding(s) suppressed)"

    if options.output is not None:
        options.output.write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if report_findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
