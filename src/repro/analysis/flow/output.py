"""Report writers: plain text, JSON, and SARIF 2.1.0.

SARIF is the interchange format CI annotation tooling consumes; the
writer emits the minimal valid document — one run, one driver, the rule
catalog, and one result per finding with a partial fingerprint matching
the baseline's ``path::scope::rule`` scheme.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_text(findings: Sequence, file_count: int) -> str:
    lines = [str(f) for f in findings]
    lines.append(f"{len(findings)} finding(s) in {file_count} file(s)")
    return "\n".join(lines)


def to_json(findings: Sequence, file_count: int) -> str:
    return json.dumps(
        {
            "version": 1,
            "files": file_count,
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )


def to_sarif(findings: Sequence, rules: Dict[str, str],
             tool_name: str = "repro-flow") -> str:
    rule_ids = sorted(rules)
    index = {rule: i for i, rule in enumerate(rule_ids)}
    results: List[Dict] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index.get(finding.rule, -1),
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                                "endLine": max(finding.end_line, 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproFlow/v1": finding.fingerprint(),
                },
            }
        )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro-flow",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": rules[rule]},
                            }
                            for rule in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
