"""Verbs-vs-declaration protocol cross-checker (FLW401–FLW403).

RDMASan (``repro.analysis.rdmasan``) checks accesses *dynamically*
against the protocol each app declares via ``declare_sanitizer_regions``
(``set_region_policy`` / ``declare_lock_word`` / ``declare_striped_locks``).
This module checks the declarations *statically*, before a single
simulated verb is posted:

* **FLW401 undeclared-region** — a client-side CAS resolves to a region
  the app allocates but never declares (no policy, no lock word covering
  it).  CAS implies multi-writer synchronization, which the default
  ``exclusive`` policy would reject at runtime — the declaration is
  missing, not the access wrong.
* **FLW402 dead-declaration** — a ``set_region_policy`` pattern matching
  no ``alloc_region`` pattern anywhere in the app: a stale declaration
  left behind by a rename (it silently declares nothing).
* **FLW403 policy-mismatch** — a policy string outside RDMASan's
  vocabulary, or the same region pattern declared with two different
  policies.

The analysis is a *taint fixpoint over names*.  Region allocations seed
taint — ``alloc_region(f"tbl_{name}_p{i}", …)`` taints its result with
the wildcard pattern ``tbl_*_p*`` — and assignments, tuple unpacks,
``for`` targets, keyword arguments, ``append`` calls and function
returns propagate pattern sets through one app-wide namespace (an *app*
is one package directory containing a ``declare_sanitizer_regions``
definition).  Client CAS addresses are then resolved through the same
map; an address whose taint is empty is *skipped* — the checker is
deliberately biased toward silence, because an unresolvable address is
not evidence of a missing declaration.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.astutil import leaf_name, names_in, string_pattern
from repro.analysis.flow.rules import RawFinding

PROTOCOL_RULES: Dict[str, str] = {
    "FLW401": "CAS target region is allocated but never declared to the sanitizer",
    "FLW402": "region policy declaration matches no allocated region",
    "FLW403": "region policy is unknown or conflicts with another declaration",
}

#: one-sided ops that imply multi-writer synchronization on the target
_CAS_ATTRS = {"cas", "cas_sync", "backoff_cas_sync"}
_CAS_NAMES = {"cas_wr"}

_VALID_POLICIES = {"exclusive", "optimistic-read"}

_ALLOC_ATTRS = {"alloc_region", "region"}
_LOCK_DECL_ATTRS = {"declare_lock_word", "declare_striped_locks"}

_MAX_ROUNDS = 50


def pattern_overlap(a: str, b: str) -> bool:
    """Can wildcard patterns ``a`` and ``b`` name a common region?

    ``*`` stands for any (possibly empty) run of characters.  Exact
    overlap of two such patterns is equivalent to matching one against
    the other with the *other's* stars treated as single fresh
    characters that ``.*`` absorbs; testing both directions covers the
    general case well enough for region names.
    """
    def rx(p: str) -> "re.Pattern[str]":
        return re.compile(".*".join(re.escape(part) for part in p.split("*")) + r"\Z")

    probe_a = a.replace("*", "\x00")
    probe_b = b.replace("*", "\x00")
    return bool(rx(a).match(probe_b) or rx(b).match(probe_a))


@dataclass
class _Declaration:
    pattern: str
    policy: Optional[str]
    node: ast.Call
    path: str
    scope: str


@dataclass
class AppModel:
    """Everything the checker extracted from one app package."""

    #: region-name patterns the app allocates
    allocations: Set[str] = field(default_factory=set)
    declarations: List[_Declaration] = field(default_factory=list)
    #: arguments of declare_lock_word / declare_striped_locks calls —
    #: their taint marks the covered region patterns
    lock_decl_args: List[ast.expr] = field(default_factory=list)
    #: CAS call sites: (address expr, call node, path, scope)
    cas_sites: List[Tuple[ast.expr, ast.Call, str, str]] = field(default_factory=list)
    #: taint fixpoint: name -> region patterns
    taint: Dict[str, Set[str]] = field(default_factory=dict)

    def taint_of(self, expr: ast.AST) -> Set[str]:
        out: Set[str] = set(_direct_patterns(expr))
        for name in names_in(expr):
            out |= self.taint.get(name, set())
        return out


def _direct_patterns(expr: ast.AST) -> Iterable[str]:
    """Patterns produced directly inside ``expr`` (alloc/lookup calls)."""
    for sub in ast.walk(expr):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _ALLOC_ATTRS
            and sub.args
        ):
            pattern = string_pattern(sub.args[0])
            if pattern is not None:
                yield pattern


def _target_leaves(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, ast.Subscript):
        name = leaf_name(target.value)
        if name:
            yield name
    elif isinstance(target, ast.Starred):
        yield from _target_leaves(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_leaves(elt)


def _class_fields(tree: ast.Module) -> Dict[str, List[str]]:
    """class name -> ordered annotated field names (dataclass layout)."""
    fields: Dict[str, List[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            if names:
                fields[node.name] = names
    return fields


def _collect_bindings(tree: ast.Module,
                      class_fields: Dict[str, List[str]]
                      ) -> List[Tuple[List[str], ast.expr]]:
    """(target names, value expr) pairs that the fixpoint iterates."""
    bindings: List[Tuple[List[str], ast.expr]] = []

    def bind(targets: Iterable[str], value: ast.expr) -> None:
        names = [t for t in targets]
        if names:
            bindings.append((names, value))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(_target_leaves(target), node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind(_target_leaves(node.target), node.value)
        elif isinstance(node, ast.AugAssign):
            bind(_target_leaves(node.target), node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(_target_leaves(node.target), node.iter)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bind(_target_leaves(node.optional_vars), node.context_expr)
        elif isinstance(node, ast.Call):
            # keyword arguments name the receiving field directly
            for kw in node.keywords:
                if kw.arg is not None:
                    bind([kw.arg], kw.value)
            func_name = leaf_name(node.func)
            # dataclass-style constructors: positional args -> fields
            if func_name in class_fields:
                for name, arg in zip(class_fields[func_name], node.args):
                    bind([name], arg)
            # container mutation: x.append(y) taints x
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in {"append", "extend", "add", "appendleft"}
            ):
                receiver = leaf_name(node.func.value)
                if receiver:
                    for arg in node.args:
                        bind([receiver], arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a function's name carries the taint of its return values,
            # so ``info.primary_addr(key)`` resolves through the method
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    bind([node.name], sub.value)
    return bindings


def _scope_of(node: ast.AST, scopes: List[Tuple[ast.AST, str]]) -> str:
    best = ""
    for fn, qualname in scopes:
        if (
            getattr(fn, "lineno", 0) <= getattr(node, "lineno", 0)
            and getattr(node, "lineno", 0) <= (getattr(fn, "end_lineno", 0) or 0)
        ):
            if len(qualname) > len(best):
                best = qualname
    return best


def _function_scopes(tree: ast.Module) -> List[Tuple[ast.AST, str]]:
    scopes: List[Tuple[ast.AST, str]] = []

    def visit(scope: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                scopes.append((child, qualname))
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return scopes


def build_app_model(sources: Dict[str, str]) -> AppModel:
    """Extract allocations, declarations and CAS sites from an app's
    modules (``sources``: path -> source text) and solve the taint
    fixpoint."""
    model = AppModel()
    trees: Dict[str, ast.Module] = {}
    class_fields: Dict[str, List[str]] = {}
    for path, source in sorted(sources.items()):
        tree = ast.parse(source, filename=path)
        trees[path] = tree
        class_fields.update(_class_fields(tree))

    all_bindings: List[Tuple[List[str], ast.expr]] = []
    for path, tree in sorted(trees.items()):
        scopes = _function_scopes(tree)
        all_bindings.extend(_collect_bindings(tree, class_fields))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _ALLOC_ATTRS and func.attr == "alloc_region" and node.args:
                    pattern = string_pattern(node.args[0])
                    if pattern is not None:
                        model.allocations.add(pattern)
                elif func.attr == "set_region_policy":
                    pattern_arg = node.args[1] if len(node.args) > 1 else None
                    policy_arg = node.args[2] if len(node.args) > 2 else None
                    for kw in node.keywords:
                        if kw.arg == "region_name":
                            pattern_arg = kw.value
                        elif kw.arg == "policy":
                            policy_arg = kw.value
                    pattern = (
                        string_pattern(pattern_arg) if pattern_arg is not None else None
                    )
                    policy = None
                    if isinstance(policy_arg, ast.Constant) and isinstance(
                        policy_arg.value, str
                    ):
                        policy = policy_arg.value
                    if pattern is not None:
                        model.declarations.append(
                            _Declaration(
                                pattern, policy, node, path, _scope_of(node, scopes)
                            )
                        )
                elif func.attr in _LOCK_DECL_ATTRS:
                    model.lock_decl_args.extend(node.args)
                    model.lock_decl_args.extend(kw.value for kw in node.keywords)
                elif func.attr in _CAS_ATTRS and node.args:
                    model.cas_sites.append(
                        (node.args[0], node, path, _scope_of(node, scopes))
                    )
            elif isinstance(func, ast.Name) and func.id in _CAS_NAMES and node.args:
                model.cas_sites.append(
                    (node.args[0], node, path, _scope_of(node, scopes))
                )

    # Taint fixpoint over one app-wide namespace.
    for _round in range(_MAX_ROUNDS):
        changed = False
        for targets, value in all_bindings:
            taint = model.taint_of(value)
            if not taint:
                continue
            for name in targets:
                have = model.taint.setdefault(name, set())
                if not taint <= have:
                    have |= taint
                    changed = True
        if not changed:
            break
    return model


def check_app(sources: Dict[str, str]) -> Dict[str, List[RawFinding]]:
    """Run FLW401–403 over one app; returns findings grouped by path."""
    model = build_app_model(sources)
    findings: Dict[str, List[RawFinding]] = {path: [] for path in sources}

    def flag(path: str, rule: str, node: ast.AST, message: str, scope: str) -> None:
        findings[path].append(
            RawFinding(
                rule=rule,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                end_line=getattr(node, "end_lineno", None)
                or getattr(node, "lineno", 0),
                message=message,
                scope=scope,
            )
        )

    # Region patterns covered by a declaration of any kind.
    covered: Set[str] = {decl.pattern for decl in model.declarations}
    for arg in model.lock_decl_args:
        covered |= model.taint_of(arg)

    # FLW402 / FLW403 — declaration sanity.
    by_pattern: Dict[str, Set[str]] = {}
    for decl in model.declarations:
        if not any(pattern_overlap(decl.pattern, alloc) for alloc in model.allocations):
            flag(
                decl.path, "FLW402", decl.node,
                f"policy declared for {decl.pattern!r} but no alloc_region in "
                "this app produces a matching name — stale declaration",
                decl.scope,
            )
        if decl.policy is not None:
            if decl.policy not in _VALID_POLICIES:
                flag(
                    decl.path, "FLW403", decl.node,
                    f"unknown policy {decl.policy!r} for {decl.pattern!r} "
                    f"(valid: {sorted(_VALID_POLICIES)})",
                    decl.scope,
                )
            else:
                seen = by_pattern.setdefault(decl.pattern, set())
                if seen and decl.policy not in seen:
                    flag(
                        decl.path, "FLW403", decl.node,
                        f"{decl.pattern!r} declared with conflicting policies "
                        f"{sorted(seen | {decl.policy})}",
                        decl.scope,
                    )
                seen.add(decl.policy)

    # FLW401 — CAS into an allocated-but-undeclared region.
    for addr_expr, call, path, scope in model.cas_sites:
        taint = model.taint_of(addr_expr)
        resolved = {
            p for p in taint
            if any(pattern_overlap(p, alloc) for alloc in model.allocations)
        }
        if not resolved:
            continue  # unresolvable address: silence over speculation
        if any(
            pattern_overlap(p, c) for p in resolved for c in covered
        ):
            continue
        regions = ", ".join(sorted(resolved))
        flag(
            path, "FLW401", call,
            f"CAS resolves to region(s) {regions} which the app allocates "
            "but never declares to the sanitizer (no set_region_policy or "
            "lock-word declaration covers them)",
            scope,
        )

    for path in findings:
        findings[path].sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def group_apps(paths: Sequence[str],
               read_source) -> List[Dict[str, str]]:
    """Group ``paths`` into app units: one unit per directory containing a
    ``declare_sanitizer_regions`` definition, holding every module in
    that directory.  ``read_source(path) -> str``."""
    import os

    by_dir: Dict[str, Dict[str, str]] = {}
    for path in paths:
        by_dir.setdefault(os.path.dirname(os.path.abspath(path)), {})[path] = None
    apps: List[Dict[str, str]] = []
    for _dirname, members in sorted(by_dir.items()):
        sources: Dict[str, str] = {}
        is_app = False
        for path in sorted(members):
            try:
                source = read_source(path)
            except OSError:
                continue
            sources[path] = source
            if "def declare_sanitizer_regions" in source:
                is_app = True
        if is_app and sources:
            apps.append(sources)
    return apps
