"""``repro.analysis.flow``: dataflow- and ownership-aware static analysis.

The flat AST matching of :mod:`repro.analysis.lint` (SIM001–SIM005)
catches single-node hygiene slips; this package proves *path* properties:

* :mod:`~repro.analysis.flow.symbols` — per-module symbol tables (imports,
  classes, functions, simple local type facts);
* :mod:`~repro.analysis.flow.cfg` — a control-flow graph per function,
  generator-aware, with ``try``/``except``/``finally`` routing and
  abrupt-exit (``return``/``break``/``continue``/``raise``) edges;
* :mod:`~repro.analysis.flow.dataflow` — a forward may-analysis worklist
  over those CFGs;
* :mod:`~repro.analysis.flow.rules` — the per-file rule families:
  ownership/leak (FLW101–FLW103), determinism hazards (FLW201–FLW203)
  and interrupt safety (FLW301–FLW302);
* :mod:`~repro.analysis.flow.protocol` — the verbs-vs-declaration
  cross-checker (FLW401–FLW403) diffing every statically extracted
  one-sided access site against the app's ``declare_sanitizer_regions``;
* :mod:`~repro.analysis.flow.baseline` — the committed-findings baseline
  (the CI gate fails only on *new* findings);
* :mod:`~repro.analysis.flow.output` — JSON and SARIF 2.1.0 emitters.

Run as ``python -m repro.analysis.flow [paths...]``; see
``docs/MODEL.md`` §15 for the rule catalog and baseline workflow.
"""

from repro.analysis.flow.engine import (  # noqa: F401
    FlowFinding,
    RULES,
    analyze_paths,
    analyze_source,
    main,
)
