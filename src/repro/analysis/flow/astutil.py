"""Small AST helpers shared by the flow rules and the protocol checker."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Set

#: attribute calls whose yielded result marks a function as a DES process
#: generator (``sim.timeout(...)``, ``lock.acquire(...)``, ``take``, …)
PROCESS_YIELD_ATTRS = {"timeout", "acquire", "take", "event", "begin_op", "all_of"}

BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


def leaf_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def own_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def is_generator(fn: ast.AST) -> bool:
    """Does ``fn`` contain a yield in its own scope?"""
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom)) for child in own_scope(fn)
    )


def is_process_generator(fn: ast.AST) -> bool:
    """Heuristic: does this function look like a DES process generator?

    ``yield from``-delegating functions count (all verbs helpers do), as
    does yielding the result of a known waitable factory (``timeout``,
    ``acquire``, ``take``, …) or a ``.done`` event.
    """
    for child in own_scope(fn):
        if isinstance(child, ast.YieldFrom):
            return True
        if isinstance(child, ast.Yield) and child.value is not None:
            value = child.value
            if isinstance(value, ast.Call):
                name = leaf_name(value.func)
                if name in PROCESS_YIELD_ATTRS:
                    return True
            if isinstance(value, ast.Attribute) and value.attr == "done":
                return True
    return False


def parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    """child node -> parent node, over the whole tree."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    while node in parents:
        node = parents[node]
        yield node


def call_text(node: ast.AST) -> str:
    """A stable textual key for an expression (``ast.unparse``)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - exotic nodes
        return repr(node)


def string_pattern(node: ast.AST) -> Optional[str]:
    """A region-name pattern from a string expression.

    Constants give themselves; f-strings give their literal parts with
    ``*`` in place of every formatted field (``f"tbl_{name}_p{i}"`` →
    ``tbl_*_p*``); anything else is unresolvable (``None``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def names_in(node: ast.AST) -> Set[str]:
    """Every identifier (Name ids and Attribute attrs) under ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """The exception-type leaf names an ``except`` clause catches."""
    names: Set[str] = set()
    if handler.type is not None:
        types: Sequence[ast.AST] = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for t in types:
            name = leaf_name(t)
            if name:
                names.add(name)
    return names
