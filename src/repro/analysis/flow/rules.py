"""Per-file flow rules: ownership/leak, determinism hazards, interrupt safety.

Rule catalog (see docs/MODEL.md §15 for rationale and suppression):

* **FLW101 lock-path-leak** — a lock/token acquired in a function
  (``yield x.acquire()`` / ``yield from x.acquire()`` / ``yield
  x.take()``) is released on at least one path but *not* on every path
  to function exit (abrupt exits included).  Functions with zero
  releases of the key transfer ownership elsewhere and are exempt.
* **FLW102 interrupt-unsafe-hold** — a process generator yields while
  holding a directly-acquired lock, outside any ``try`` whose
  ``finally`` releases it: an :class:`~repro.sim.core.Interrupt`
  delivered at that yield leaks the lock.
* **FLW103 unjoined-spawn** — ``spawn(...)`` as a bare expression
  statement: the returned Process — its completion event *and* its
  ``error`` — can never be observed.
* **FLW201 nondet-set-order** — iteration over a set drives
  scheduling or RNG calls; set order varies across interpreter runs.
* **FLW202 float-ns-accumulation** — ``+=``/``-=`` of float-valued
  arithmetic into a ``*_ns`` name without ``int(round(...))``.
* **FLW203 unthreaded-seed** — ``Random()`` seeded from the OS, or a
  constant seed inside a function that has a ``seed`` parameter.
* **FLW301 yield-in-except** — a process generator yields inside a
  broad (bare/``Exception``/``BaseException``/``Interrupt``) handler.
* **FLW302 yield-in-finally** — a process generator yields inside
  ``finally``; a second interrupt (or generator close) skips cleanup.

Each rule reports :class:`RawFinding` tuples; the engine applies
pragmas, paths and the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.astutil import (
    BROAD_EXCEPTION_NAMES,
    ancestors,
    call_text,
    handler_names,
    leaf_name,
    own_scope,
    parent_map,
)
from repro.analysis.flow.cfg import EXIT, build_cfg
from repro.analysis.flow.dataflow import forward_may
from repro.analysis.flow.symbols import ModuleSymbols, build_symbols

RULES: Dict[str, str] = {
    "FLW101": "resource acquired but not released on every path to exit",
    "FLW102": "yield while holding a lock without a finally that releases it",
    "FLW103": "spawned process neither stored nor awaited",
    "FLW201": "set iteration order feeds scheduling/RNG decisions",
    "FLW202": "float arithmetic accumulates into a *_ns value",
    "FLW203": "RNG seed not threaded from configuration",
    "FLW301": "yield inside a broad except handler of a process generator",
    "FLW302": "yield inside finally of a process generator",
}

#: acquire attr -> matching release attr
_ACQUIRE_PAIRS = {"acquire": "release", "take": "put"}

_SCHEDULING_CALLS = {
    "spawn", "call_at", "call_after", "timeout", "fire", "interrupt", "schedule",
}
_RNG_CALLS = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "expovariate", "randbytes",
}


@dataclass(frozen=True)
class RawFinding:
    rule: str
    line: int
    col: int
    end_line: int
    message: str
    #: enclosing function qualname ('' at module level) — the stable
    #: scope component of baseline fingerprints
    scope: str = ""


def _flag(findings: List[RawFinding], rule: str, node: ast.AST, message: str,
          scope: str = "") -> None:
    findings.append(
        RawFinding(
            rule=rule,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None) or getattr(node, "lineno", 0),
            message=message,
            scope=scope,
        )
    )


# -- resource-key extraction --------------------------------------------------


def _acquire_call(node: ast.expr) -> Optional[Tuple[ast.Call, str]]:
    """``(call, kind)`` when ``node`` is a ``yield``/``yield from`` of an
    acquire-style call; kind is 'direct' for ``yield x.acquire(...)``
    (FifoLock idiom), 'delegated' for ``yield from helper.acquire(...)``."""
    if isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
        call = node.value
        kind = "direct"
    elif isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
        call = node.value
        kind = "delegated"
    else:
        return None
    if isinstance(call.func, ast.Attribute) and call.func.attr in _ACQUIRE_PAIRS:
        return call, kind
    return None


def _resource_key(call: ast.Call) -> Tuple[str, Optional[str]]:
    """``(receiver text, discriminator)`` identifying the resource.

    The discriminator is the last positional argument (sherman's lock
    table takes the lock address there); keyword-only calls — FifoLock's
    ``acquire(owner=...)`` — discriminate by receiver alone.
    """
    receiver = call_text(call.func.value)
    discriminator = call_text(call.args[-1]) if call.args else None
    return receiver, discriminator


def _release_keys(stmt: ast.stmt, release_attr: str) -> Set[Tuple[str, Optional[str]]]:
    keys: Set[Tuple[str, Optional[str]]] = set()
    for sub in ast.walk(stmt):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == release_attr
        ):
            keys.add(_resource_key(sub))
    return keys


def _keys_match(acquired: Tuple[str, Optional[str]],
                released: Tuple[str, Optional[str]]) -> bool:
    if acquired[0] != released[0]:
        return False
    if acquired[1] is None or released[1] is None:
        return True
    return acquired[1] == released[1]


# -- ownership rules (CFG + dataflow) ----------------------------------------


def _check_ownership(info, findings: List[RawFinding],
                     parents: Dict[ast.AST, ast.AST]) -> None:
    fn = info.node
    cfg = build_cfg(fn)

    # Acquire sites: node id -> (key, release attr, kind, call node).
    acquires: Dict[int, Tuple[Tuple[str, Optional[str]], str, str, ast.Call]] = {}
    releases: Dict[int, Set[Tuple[str, Optional[str]]]] = {}
    release_attrs: Set[str] = set()
    for node_id in range(cfg.node_count):
        # Scan only the expressions a node evaluates itself: a compound
        # header shares its stmt object with its body, whose statements
        # have nodes of their own — walking the whole subtree would
        # register every nested acquire twice.
        for root in cfg.own_exprs(node_id):
            for expr in ast.walk(root):
                found = _acquire_call(expr)
                if found is None:
                    continue
                call, kind = found
                if kind != "direct":
                    # ``yield from helper.acquire(...)`` delegates to an
                    # app-level protocol (sherman's lock table hands over
                    # across functions); only the sim-lock idiom is tracked.
                    continue
                key = _resource_key(call)
                release_attr = _ACQUIRE_PAIRS[call.func.attr]
                acquires[node_id] = (key, release_attr, kind, call)
                release_attrs.add(release_attr)
    if not acquires:
        return
    for node_id in range(cfg.node_count):
        keys: Set[Tuple[str, Optional[str]]] = set()
        for root in cfg.own_exprs(node_id):
            for attr in release_attrs:
                keys |= _release_keys(root, attr)
        if keys:
            releases[node_id] = keys
    # Correlated guards: ``if qp.share_lock is not None:`` around both
    # the acquire and the release means the skip-release branch is
    # infeasible once the lock was acquired; path-insensitive dataflow
    # can't see that, so a release guarded by an If that *mentions the
    # resource's receiver* also kills at the header — both arms then
    # leave the fact dead.
    for node_id in range(cfg.node_count):
        stmt = cfg.stmts[node_id]
        if not isinstance(stmt, ast.If):
            continue
        test_text = call_text(stmt.test)
        guarded: Set[Tuple[str, Optional[str]]] = set()
        for attr in release_attrs:
            guarded |= _release_keys(stmt, attr)
        matched = {key for key in guarded if key[0] in test_text}
        if matched:
            releases.setdefault(node_id, set()).update(matched)

    # One dataflow fact per acquire *site* (same lock acquired twice =
    # two facts) so each site reports independently.
    gen: Dict[int, Set[object]] = {}
    kill: Dict[int, Set[object]] = {}
    facts: Dict[object, Tuple[Tuple[str, Optional[str]], str, str, ast.Call, int]] = {}
    for node_id, (key, release_attr, kind, call) in acquires.items():
        fact = ("res", node_id)
        facts[fact] = (key, release_attr, kind, call, node_id)
        gen[node_id] = {fact}
    for node_id, released in releases.items():
        killed: Set[object] = set()
        for fact, (key, _attr, _kind, _call, acq_node) in facts.items():
            if any(_keys_match(key, rel) for rel in released):
                killed.add(fact)
        if killed:
            kill[node_id] = killed

    in_facts, _out = forward_may(cfg, gen, kill)

    # FLW101: held at EXIT though the function does release it somewhere.
    for fact in in_facts[EXIT]:
        key, release_attr, kind, call, acq_node = facts[fact]
        has_release = any(
            any(_keys_match(key, rel) for rel in released)
            for released in releases.values()
        )
        if not has_release:
            continue  # ownership transferred out of this function
        _flag(
            findings, "FLW101", call,
            f"{key[0]}.{call.func.attr}() is released on some paths but a "
            "path to function exit keeps it held (release in a finally or "
            "on every branch)",
            scope=info.qualname,
        )

    # FLW102: yields while holding a *directly* yielded lock, with no
    # finally-release covering the yield.
    reported: Set[object] = set()
    for node_id in sorted(
        range(cfg.node_count),
        key=lambda n: getattr(cfg.stmts[n], "lineno", 0) if cfg.stmts[n] else 0,
    ):
        stmt = cfg.stmts[node_id]
        if stmt is None:
            continue
        yields = cfg.yields_in(node_id)
        if not yields:
            continue
        for fact in in_facts.get(node_id, ()):  # held entering this stmt
            if fact in reported:
                continue
            key, release_attr, kind, call, acq_node = facts[fact]
            if kind != "direct":
                continue
            has_release = any(
                any(_keys_match(key, rel) for rel in released)
                for released in releases.values()
            )
            if not has_release:
                continue
            if node_id in releases and any(
                _keys_match(key, rel) for rel in releases[node_id]
            ):
                continue  # this statement is (or contains) the release
            if node_id in acquires:
                acq_here = acquires[node_id][0]
                if _keys_match(key, acq_here) and acquires[node_id][3] is call:
                    continue
            if _finally_protected(stmt, key, release_attr, parents):
                continue
            reported.add(fact)
            _flag(
                findings, "FLW102", stmt,
                f"yield while holding {key[0]} (acquired line {call.lineno}) "
                "outside a try/finally that releases it; an Interrupt "
                "delivered here leaks the lock",
                scope=info.qualname,
            )


def _finally_protected(stmt: ast.AST, key: Tuple[str, Optional[str]],
                       release_attr: str,
                       parents: Dict[ast.AST, ast.AST]) -> bool:
    """Is ``stmt`` inside a ``try`` body whose ``finally`` releases key?"""
    child = stmt
    for node in ancestors(stmt, parents):
        if isinstance(node, ast.Try) and node.finalbody:
            in_protected = any(
                child is s or any(child is sub for sub in ast.walk(s))
                for s in (*node.body, *node.orelse, *node.handlers)
            )
            if in_protected:
                for final_stmt in node.finalbody:
                    released = _release_keys(final_stmt, release_attr)
                    if any(_keys_match(key, rel) for rel in released):
                        return True
        child = node
    return False


# -- FLW103: unjoined spawns --------------------------------------------------


def _check_spawns(symbols: ModuleSymbols, findings: List[RawFinding],
                  scope_of) -> None:
    for node in ast.walk(symbols.tree):
        if not isinstance(node, ast.Expr):
            continue
        value = node.value
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            continue  # awaited
        if (
            isinstance(value, ast.Call)
            and leaf_name(value.func) == "spawn"
        ):
            _flag(
                findings, "FLW103", node,
                "spawn(...) result discarded: the Process (completion event "
                "and error) can never be awaited or checked — store the "
                "handle",
                scope=scope_of(node),
            )


# -- determinism hazards ------------------------------------------------------


def _set_valued_iter(node: ast.expr, set_locals: Set[str],
                     set_attrs: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Attribute):
        return node.attr in set_attrs
    return False


def _body_schedules_or_draws(stmts: List[ast.stmt]) -> Optional[ast.AST]:
    for stmt in stmts:
        for sub in own_scope_many(stmt):
            if isinstance(sub, ast.Call):
                name = leaf_name(sub.func)
                if name in _SCHEDULING_CALLS or name in _RNG_CALLS:
                    return sub
    return None


def own_scope_many(stmt: ast.stmt):
    yield stmt
    yield from own_scope(stmt)


def _check_determinism(symbols: ModuleSymbols, findings: List[RawFinding],
                       parents: Dict[ast.AST, ast.AST], scope_of,
                       in_rng_module: bool) -> None:
    # Set-typed attribute names anywhere in the module (``self.users =
    # set()`` inside __init__ marks ``users``).
    set_attrs: Set[str] = set()
    for node in ast.walk(symbols.tree):
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
        else:
            continue
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in {"set", "frozenset"}
        ):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    set_attrs.add(target.attr)

    for info in symbols.functions:
        fn_sets = info.set_names | symbols.set_names
        for node in own_scope(info.node):
            # FLW201
            if isinstance(node, ast.For) and _set_valued_iter(
                node.iter, fn_sets, set_attrs
            ):
                culprit = _body_schedules_or_draws(node.body)
                if culprit is not None:
                    _flag(
                        findings, "FLW201", node,
                        "iterating a set while scheduling or drawing RNG "
                        f"inside the loop ({call_text(culprit)[:60]}): set "
                        "order is not stable across runs — iterate "
                        "sorted(...) instead",
                        scope=info.qualname,
                    )
            # FLW202
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target_name = leaf_name(node.target)
                if target_name and target_name.endswith("_ns"):
                    if _float_tainted(node.value):
                        _flag(
                            findings, "FLW202", node,
                            f"float arithmetic accumulates into "
                            f"{target_name}; timestamps are integer ns — "
                            "wrap the increment in int(round(...))",
                            scope=info.qualname,
                        )
            # FLW203
            elif isinstance(node, ast.Call) and leaf_name(node.func) == "Random":
                if in_rng_module:
                    continue
                if not node.args and not node.keywords:
                    _flag(
                        findings, "FLW203", node,
                        "Random() with no seed draws entropy from the OS; "
                        "thread the configured seed through instead",
                        scope=info.qualname,
                    )
                elif (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, (int, float))
                    and _has_seed_param(info.node)
                ):
                    _flag(
                        findings, "FLW203", node,
                        "constant seed ignores this function's `seed` "
                        "parameter; derive the RNG from the configured seed",
                        scope=info.qualname,
                    )


def _float_tainted(node: ast.expr) -> bool:
    """Does evaluating ``node`` produce a float, outside int()/round()?"""
    if isinstance(node, ast.Call) and leaf_name(node.func) in {"int", "round"}:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _float_tainted(node.left) or _float_tainted(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_tainted(node.operand)
    if isinstance(node, (ast.IfExp,)):
        return _float_tainted(node.body) or _float_tainted(node.orelse)
    if isinstance(node, ast.Call):
        name = leaf_name(node.func)
        return name in _RNG_CALLS  # rng.random() and friends are floats
    return False


def _has_seed_param(fn: ast.AST) -> bool:
    args = fn.args
    every = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return any(a.arg == "seed" for a in every)


# -- interrupt safety ---------------------------------------------------------


def _check_interrupt_safety(symbols: ModuleSymbols,
                            findings: List[RawFinding]) -> None:
    for info in symbols.functions:
        if not info.is_process:
            continue
        for node in own_scope(info.node):
            if not isinstance(node, ast.Try):
                continue
            # FLW301: yields in broad handlers.
            for handler in node.handlers:
                names = handler_names(handler)
                broad = (
                    handler.type is None
                    or names & BROAD_EXCEPTION_NAMES
                    or "Interrupt" in names
                )
                if not broad:
                    continue
                for stmt in handler.body:
                    for sub in own_scope_many(stmt):
                        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                            _flag(
                                findings, "FLW301", sub,
                                "yield inside a broad except of a process "
                                "generator: a pending Interrupt can be "
                                "swallowed or re-entered while waiting in "
                                "the handler",
                                scope=info.qualname,
                            )
                            break
                    else:
                        continue
                    break
            # FLW302: yields in finally.
            for stmt in node.finalbody:
                for sub in own_scope_many(stmt):
                    if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                        _flag(
                            findings, "FLW302", sub,
                            "yield inside finally of a process generator: "
                            "an Interrupt (or generator close) during the "
                            "wait skips the rest of the cleanup",
                            scope=info.qualname,
                        )
                        break
                else:
                    continue
                break


# -- entry point --------------------------------------------------------------


def check_module(tree: ast.Module, path: str = "<string>") -> List[RawFinding]:
    """Run every per-file rule over one parsed module."""
    symbols = build_symbols(tree, path)
    parents = parent_map(tree)
    findings: List[RawFinding] = []

    def scope_of(node: ast.AST) -> str:
        for anc in ancestors(node, parents):
            info = symbols.function_for(anc)
            if info is not None:
                return info.qualname
        return ""

    norm = path.replace("\\", "/")
    in_rng_module = norm.endswith("sim/rng.py")

    for info in symbols.functions:
        _check_ownership(info, findings, parents)
    _check_spawns(symbols, findings, scope_of)
    _check_determinism(symbols, findings, parents, scope_of, in_rng_module)
    _check_interrupt_safety(symbols, findings)

    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings
