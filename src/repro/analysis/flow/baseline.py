"""Findings baseline: the gate fails only on *new* findings.

A baseline file maps finding *fingerprints* to accepted counts::

    {"version": 1, "baseline": {"src/repro/x.py::Cls.fn::FLW302": 2, ...}}

Fingerprints deliberately exclude line numbers — ``path::scope::rule``
— so unrelated edits that shift a known finding up or down the file do
not break the gate, while a *second* occurrence of the same rule in the
same function (count exceeded) still fails.  ``suppress`` consumes the
accepted count in (line, col) order and returns only the overflow.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

VERSION = 1


def fingerprint(path: str, scope: str, rule: str) -> str:
    """``path::scope::rule``, with ``path`` normalized relative to the
    working directory so absolute and relative invocations agree on the
    same baseline keys (the committed baseline is repo-root-relative)."""
    norm = path.replace("\\", "/")
    try:
        resolved = Path(path).resolve()
        cwd = Path.cwd().resolve()
        if resolved.is_relative_to(cwd):
            norm = resolved.relative_to(cwd).as_posix()
    except (OSError, ValueError):
        pass
    return f"{norm}::{scope}::{rule}"


def load(path: Path) -> Dict[str, int]:
    """Read a baseline file; missing file means an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    baseline = data.get("baseline", {})
    if not isinstance(baseline, dict):
        raise ValueError(f"{path}: baseline must be an object")
    return {str(key): int(count) for key, count in baseline.items()}


def dump(findings: Iterable, path: Path) -> Dict[str, int]:
    """Write the baseline that accepts exactly ``findings``."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint()] = counts.get(finding.fingerprint(), 0) + 1
    payload = {"version": VERSION, "baseline": dict(sorted(counts.items()))}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return counts


def suppress(findings: Sequence, baseline: Dict[str, int]) -> Tuple[List, List]:
    """Split findings into (new, accepted) against the baseline.

    Occurrences of one fingerprint are consumed in source order: with an
    accepted count of 2 and three occurrences, the third is new.
    """
    remaining = dict(baseline)
    new: List = []
    accepted: List = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    for finding in ordered:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    return new, accepted
