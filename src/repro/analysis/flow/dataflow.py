"""A forward may-analysis worklist over :class:`~repro.analysis.flow.cfg.CFG`.

The ownership rules need exactly one lattice: sets of *resource keys*
under union (``may hold``).  Each node contributes ``gen`` (resources
acquired by the statement) and ``kill`` (resources released); transfer is
``OUT = (IN - kill) | gen``; ``IN`` is the union over predecessors.  The
worklist iterates to the (finite, monotone) fixpoint.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Mapping, Set, Tuple

from repro.analysis.flow.cfg import CFG, ENTRY

Facts = FrozenSet[Hashable]
EMPTY: Facts = frozenset()


def forward_may(
    cfg: CFG,
    gen: Mapping[int, Set[Hashable]],
    kill: Mapping[int, Set[Hashable]],
) -> Tuple[Dict[int, Facts], Dict[int, Facts]]:
    """Solve the may-analysis; returns ``(IN, OUT)`` per node id."""
    node_ids = range(cfg.node_count)
    in_facts: Dict[int, Facts] = {n: EMPTY for n in node_ids}
    out_facts: Dict[int, Facts] = {n: EMPTY for n in node_ids}
    worklist = deque(node_ids)
    queued = set(node_ids)
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        if node == ENTRY:
            incoming = EMPTY
        else:
            incoming = EMPTY
            for pred in cfg.preds[node]:
                incoming |= out_facts[pred]
        in_facts[node] = incoming
        outgoing = frozenset(
            (incoming - frozenset(kill.get(node, ()))) | frozenset(gen.get(node, ()))
        )
        if outgoing != out_facts[node]:
            out_facts[node] = outgoing
            for succ in cfg.succs[node]:
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)
    return in_facts, out_facts
