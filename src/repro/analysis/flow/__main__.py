"""``python -m repro.analysis.flow`` entry point."""

import sys

from repro.analysis.flow.engine import main

if __name__ == "__main__":
    sys.exit(main())
