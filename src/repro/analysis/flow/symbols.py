"""Per-module symbol tables.

The rules need shallow, reliable facts — not full type inference:

* which names a module imports (``random``, ``time``, aliases included);
* the classes and functions defined, with nesting (qualified names);
* which local/attribute names are bound to *set-typed* values (set
  literals, ``set(...)``, set comprehensions) — the determinism rules
  treat iteration over those as unordered;
* which functions are (process) generators.

Everything is computed in one pass and kept as plain dicts so the rule
code stays declarative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.flow.astutil import is_generator, is_process_generator, own_scope


@dataclass
class FunctionInfo:
    node: ast.AST
    qualname: str
    is_generator: bool
    is_process: bool
    #: function-local names bound to a set-typed value
    set_names: Set[str] = field(default_factory=set)


@dataclass
class ModuleSymbols:
    path: str
    tree: ast.Module
    #: local alias -> imported module/object dotted name
    imports: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    #: module-level and ``self.``-attribute names bound to set-typed values
    set_names: Set[str] = field(default_factory=set)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    def function_for(self, node: ast.AST) -> Optional[FunctionInfo]:
        for info in self.functions:
            if info.node is node:
                return info
        return None


def _is_set_valued(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _collect_set_bindings(scope: ast.AST, into: Set[str]) -> None:
    for child in own_scope(scope):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets, value = child.targets, child.value
        elif isinstance(child, ast.AnnAssign) and child.value is not None:
            targets, value = [child.target], child.value
        else:
            continue
        if not _is_set_valued(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                into.add(target.id)
            elif isinstance(target, ast.Attribute):
                into.add(target.attr)


def build_symbols(tree: ast.Module, path: str = "<string>") -> ModuleSymbols:
    symbols = ModuleSymbols(path=path, tree=tree)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                symbols.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                qual = f"{node.module}.{alias.name}" if node.module else alias.name
                symbols.imports[alias.asname or alias.name] = qual

    _collect_set_bindings(tree, symbols.set_names)

    def visit(scope: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                info = FunctionInfo(
                    node=child,
                    qualname=qualname,
                    is_generator=is_generator(child),
                    is_process=is_process_generator(child),
                )
                _collect_set_bindings(child, info.set_names)
                symbols.functions.append(info)
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                symbols.classes[f"{prefix}{child.name}"] = child
                # Class-level set attributes count as module-wide facts
                # (``self.users = set()`` in __init__ is caught by the
                # attribute form of _collect_set_bindings above).
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return symbols
