"""Per-function control-flow graphs.

One node per simple statement (plus the headers of compound statements
and a few synthetic join nodes), with edges for:

* sequential flow, ``if``/``elif``/``else`` branching and joining;
* ``while``/``for`` loops, including ``break``/``continue`` and the
  back edge (a ``while True`` header has no fall-through exit edge);
* ``try``/``except``/``else``/``finally`` — every node of a ``try``
  body gets an exception edge to each handler entry, abrupt exits
  (``return``/``break``/``continue``/``raise`` and escaping exceptions)
  route *through* the enclosing ``finally`` before continuing to their
  real target, and a ``finally`` is built once with its frontier fanned
  out to every recorded continuation;
* ``with`` bodies (treated as straight-line flow through the item
  expressions);
* ``raise`` to the innermost enclosing handler, else through the
  ``finally`` chain to EXIT.

The graph is an over-approximation (it may contain infeasible paths —
e.g. entering a ``finally`` normally and leaving along the exceptional
continuation) which is the safe direction for the may-analyses in
:mod:`repro.analysis.flow.dataflow`: a *must*-style claim ("every path
releases") is only ever weakened, never strengthened, by extra paths.

``yield`` points do not get edges of their own — they are ordinary
expression positions — but :meth:`CFG.yields_in` exposes them so the
interrupt-safety rules can treat each one as a potential throw site.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

ENTRY = 0
EXIT = 1


class CFG:
    """A control-flow graph over one function's statements."""

    def __init__(self, fn: Optional[ast.AST] = None):
        self.fn = fn
        #: node id -> ast statement (None for ENTRY/EXIT/synthetic joins)
        self.stmts: List[Optional[ast.stmt]] = [None, None]
        self.succs: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}
        self.preds: Dict[int, Set[int]] = {ENTRY: set(), EXIT: set()}

    # -- construction -------------------------------------------------------

    def add_node(self, stmt: Optional[ast.stmt]) -> int:
        node = len(self.stmts)
        self.stmts.append(stmt)
        self.succs[node] = set()
        self.preds[node] = set()
        return node

    def connect(self, a: int, b: int) -> None:
        self.succs[a].add(b)
        self.preds[b].add(a)

    # -- queries ------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.stmts)

    def nodes_for(self, stmt: ast.stmt) -> List[int]:
        return [i for i, s in enumerate(self.stmts) if s is stmt]

    def own_exprs(self, node: int) -> List[ast.AST]:
        """The expression roots evaluated by node's own statement.

        Compound headers only own their test/iter expression, not their
        bodies (body statements have nodes of their own).
        """
        stmt = self.stmts[node]
        if stmt is None:
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, ast.For):
            return [stmt.iter]
        if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
            return []
        if isinstance(stmt, ast.With):
            return [item.context_expr for item in stmt.items]
        return [stmt]

    def yields_in(self, node: int) -> List[ast.expr]:
        """The yield expressions evaluated by node's own statement."""
        roots: Sequence[ast.AST] = self.own_exprs(node)
        found = []
        for root in roots:
            for sub in ast.walk(root):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    found.append(sub)
                elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                    # walk() is non-prunable; skip nothing here because
                    # nested defs inside a *statement* still belong to a
                    # different scope — filter them out instead.
                    pass
        return [
            y for y in found
            if not _inside_nested_function(roots, y)
        ]

    def has_path(
        self, start: int, goal: int, blocked: Optional[Set[int]] = None
    ) -> bool:
        """Is ``goal`` reachable from ``start`` avoiding ``blocked`` nodes?"""
        blocked = blocked or set()
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for succ in self.succs[node]:
                if succ not in seen and succ not in blocked:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def to_dot(self) -> str:  # pragma: no cover - debugging aid
        lines = ["digraph cfg {"]
        for i, stmt in enumerate(self.stmts):
            label = {ENTRY: "ENTRY", EXIT: "EXIT"}.get(i)
            if label is None:
                label = "join" if stmt is None else type(stmt).__name__
            lines.append(f'  n{i} [label="{i}:{label}"];')
        for a, bs in sorted(self.succs.items()):
            for b in sorted(bs):
                lines.append(f"  n{a} -> n{b};")
        lines.append("}")
        return "\n".join(lines)


def _contains_direct_acquire(stmt: ast.AST) -> bool:
    """Does ``stmt`` yield a direct ``.acquire(...)``/``.take(...)`` call?"""
    for sub in ast.walk(stmt):
        if (
            isinstance(sub, ast.Yield)
            and isinstance(sub.value, ast.Call)
            and isinstance(sub.value.func, ast.Attribute)
            and sub.value.func.attr in {"acquire", "take"}
        ):
            return True
    return False


def _inside_nested_function(roots: Sequence[ast.AST], node: ast.AST) -> bool:
    """Is ``node`` under a nested def/lambda within any of ``roots``?"""
    for root in roots:
        for sub in ast.walk(root):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                if any(inner is node for inner in ast.walk(sub)):
                    return True
    return False


class _Loop:
    __slots__ = ("header", "breaks")

    def __init__(self, header: int):
        self.header = header
        self.breaks: Set[int] = set()


class _Finally:
    """One active ``finally`` region while its ``try`` body is built.

    ``entry`` is a synthetic join all abrupt exits jump to; each abrupt
    exit records its real continuation in ``targets`` so the finally's
    frontier can be fanned out after the finally body exists.  ``EXIT``
    and loop headers are node ids; pending ``break`` targets of a loop
    *outside* the try are recorded as the loop object so the break edge
    lands on whatever join the loop eventually gets.
    """

    __slots__ = ("entry", "targets")

    def __init__(self, entry: int):
        self.entry = entry
        self.targets: List[object] = []


class _Builder:
    def __init__(self, fn: ast.AST):
        self.cfg = CFG(fn)
        self.loops: List[_Loop] = []
        self.finallies: List[_Finally] = []
        #: entries of handlers whose try body is currently being built
        self.handler_entries: List[List[int]] = []

    # -- abrupt-exit routing ----------------------------------------------

    def _route_abrupt(self, source: int, target: object,
                      through: Sequence[_Finally]) -> None:
        """Connect ``source`` to ``target`` through enclosing finallies.

        ``through`` is the (innermost-first) list of finallies the exit
        crosses; with none, the edge is direct.
        """
        if through:
            self.cfg.connect(source, through[0].entry)
            # Chain the whole crossing: each finally's frontier continues
            # into the next one out, the last into the real target.
            for frame, outer in zip(through, through[1:]):
                frame.targets.append(outer.entry)
            through[-1].targets.append(target)
        else:
            if isinstance(target, _Loop):
                target.breaks.add(source)
            else:
                self.cfg.connect(source, target)

    def _finallies_out_to(self, depth: int) -> List[_Finally]:
        """Active finallies crossed when exiting out to stack depth
        ``depth`` (innermost first)."""
        return list(reversed(self.finallies[depth:]))

    # -- statement dispatch -------------------------------------------------

    def build_body(self, stmts: Sequence[ast.stmt], preds: Set[int]) -> Set[int]:
        """Build ``stmts``; returns the fall-through frontier."""
        frontier = set(preds)
        for stmt in stmts:
            if not frontier:
                # Dead code after an abrupt exit still gets nodes (rules
                # may anchor findings there) but no incoming edges.
                pass
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        method = getattr(self, f"_build_{type(stmt).__name__}", None)
        if method is not None:
            return method(stmt, preds)
        node = self._simple(stmt, preds)
        return {node}

    def _simple(self, stmt: ast.stmt, preds: Set[int],
                can_raise: bool = True) -> int:
        node = self.cfg.add_node(stmt)
        for pred in preds:
            self.cfg.connect(pred, node)
        # Any statement inside a try body may raise mid-flight: route an
        # exception edge to each active handler entry of the *innermost*
        # try.  Acquire-bearing statements are treated as all-or-nothing
        # — ``yield lock.acquire()`` that throws did not acquire — so
        # their edge leaves from the statement's *predecessors* (the
        # pre-state); every other statement (releases included, which
        # are assumed not to raise after taking effect) contributes its
        # post-state.  A nested bare ``try:`` header evaluates nothing
        # and cannot raise.
        if can_raise and self.handler_entries:
            sources = preds if _contains_direct_acquire(stmt) else {node}
            for entry in self.handler_entries[-1]:
                for source in sources:
                    self.cfg.connect(source, entry)
        return node

    # Compound statements ---------------------------------------------------

    def _build_If(self, stmt: ast.If, preds: Set[int]) -> Set[int]:
        header = self._simple(stmt, preds)
        then_frontier = self.build_body(stmt.body, {header})
        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, {header})
        else:
            else_frontier = {header}
        return then_frontier | else_frontier

    def _is_const_true(self, test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _build_While(self, stmt: ast.While, preds: Set[int]) -> Set[int]:
        header = self._simple(stmt, preds)
        loop = _Loop(header)
        self.loops.append(loop)
        body_frontier = self.build_body(stmt.body, {header})
        self.loops.pop()
        for node in body_frontier:
            self.cfg.connect(node, header)
        after: Set[int] = set(loop.breaks)
        if not self._is_const_true(stmt.test):
            after.add(header)
        if stmt.orelse:
            after = self.build_body(stmt.orelse, after) | set(loop.breaks)
        return after

    def _build_For(self, stmt: ast.For, preds: Set[int]) -> Set[int]:
        header = self._simple(stmt, preds)
        loop = _Loop(header)
        self.loops.append(loop)
        body_frontier = self.build_body(stmt.body, {header})
        self.loops.pop()
        for node in body_frontier:
            self.cfg.connect(node, header)
        after: Set[int] = set(loop.breaks) | {header}
        if stmt.orelse:
            after = self.build_body(stmt.orelse, {header}) | set(loop.breaks)
        return after

    _build_AsyncFor = _build_For

    def _build_With(self, stmt: ast.With, preds: Set[int]) -> Set[int]:
        header = self._simple(stmt, preds)
        return self.build_body(stmt.body, {header})

    _build_AsyncWith = _build_With

    def _build_Try(self, stmt: ast.Try, preds: Set[int]) -> Set[int]:
        header = self._simple(stmt, preds, can_raise=False)
        escape = self._escape_target()  # before this try's own frames exist
        has_finally = bool(stmt.finalbody)
        frame: Optional[_Finally] = None
        if has_finally:
            frame = _Finally(self.cfg.add_node(None))
            self.finallies.append(frame)

        handler_entries = [self.cfg.add_node(None) for _ in stmt.handlers]
        self.handler_entries.append(handler_entries)
        if frame is not None and not stmt.handlers:
            # try/finally with no handlers: an exception anywhere in the
            # body routes through the finally and out.
            self.handler_entries[-1] = [frame.entry]
            frame.targets.append(escape)
        body_frontier = self.build_body(stmt.body, {header})
        self.handler_entries.pop()

        if stmt.orelse:
            body_frontier = self.build_body(stmt.orelse, body_frontier)

        handler_frontier: Set[int] = set()
        for entry, handler in zip(handler_entries, stmt.handlers):
            self.cfg.stmts[entry] = handler  # anchor findings on the clause
            handler_frontier |= self.build_body(handler.body, {entry})

        if frame is not None:
            self.finallies.pop()
            finally_preds = body_frontier | handler_frontier | {frame.entry}
            finally_frontier = self.build_body(stmt.finalbody, finally_preds)
            for target in frame.targets:
                for node in finally_frontier:
                    if isinstance(target, _Loop):
                        target.breaks.add(node)
                    else:
                        self.cfg.connect(node, target)
            return finally_frontier
        return body_frontier | handler_frontier

    _build_TryStar = _build_Try

    def _escape_target(self) -> object:
        """Where an exception escaping the current try body lands: the
        innermost handler of an *outer* try, else EXIT (through any
        outer finallies, resolved by the caller's routing)."""
        for entries in reversed(self.handler_entries):
            if entries:
                return entries[0]
        return EXIT

    # Abrupt exits ----------------------------------------------------------

    def _build_Return(self, stmt: ast.Return, preds: Set[int]) -> Set[int]:
        node = self._simple(stmt, preds)
        self._route_abrupt(node, EXIT, self._finallies_out_to(0))
        return set()

    def _build_Raise(self, stmt: ast.Raise, preds: Set[int]) -> Set[int]:
        node = self._simple(stmt, preds)
        # _simple already connected the node to the innermost handlers;
        # when there are none the exception leaves the function.
        if not (self.handler_entries and self.handler_entries[-1]):
            self._route_abrupt(node, EXIT, self._finallies_out_to(0))
        return set()

    def _loop_depth_finallies(self) -> List[_Finally]:
        """Finallies between the current point and the innermost loop."""
        if not self.loops:
            return []
        # Finallies opened after the loop's header node are the ones a
        # break/continue crosses; approximate by entry-node ordering.
        header = self.loops[-1].header
        crossed = [f for f in self.finallies if f.entry > header]
        return list(reversed(crossed))

    def _build_Break(self, stmt: ast.Break, preds: Set[int]) -> Set[int]:
        node = self._simple(stmt, preds)
        if self.loops:
            self._route_abrupt(node, self.loops[-1], self._loop_depth_finallies())
        return set()

    def _build_Continue(self, stmt: ast.Continue, preds: Set[int]) -> Set[int]:
        node = self._simple(stmt, preds)
        if self.loops:
            self._route_abrupt(
                node, self.loops[-1].header, self._loop_depth_finallies()
            )
        return set()

    # Nested definitions are opaque single statements ----------------------

    def _build_FunctionDef(self, stmt: ast.stmt, preds: Set[int]) -> Set[int]:
        return {self._simple(stmt, preds)}

    _build_AsyncFunctionDef = _build_FunctionDef
    _build_ClassDef = _build_FunctionDef


def build_cfg(fn: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef``/``AsyncFunctionDef``."""
    builder = _Builder(fn)
    frontier = builder.build_body(fn.body, {ENTRY})
    for node in frontier:
        builder.cfg.connect(node, EXIT)
    return builder.cfg
