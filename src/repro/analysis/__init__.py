"""Correctness tooling: RDMASan (remote-memory race sanitizer) and the
simulation-hygiene lint (``python -m repro.analysis.lint``).

Both halves are passive and off by default: a cluster without an attached
sanitizer runs byte-identically to a tree without this package, the same
bar :mod:`repro.obs` meets.
"""

from repro.analysis.rdmasan import RdmaSanitizer

__all__ = ["RdmaSanitizer"]
