"""§5.1 — SMART's coroutine-based programming interface.

The API mirrors the paper's (connect / read / write / faa / cas /
post_send / sync / backoff_cas_sync).  A :class:`SmartThread` wraps one
worker thread and owns the throttler and conflict avoider; each
application coroutine obtains a :class:`SmartHandle`, buffers verbs on it
and drives them with generator calls::

    value_wr = handle.read(addr, 8)
    yield from handle.post_send()
    yield from handle.sync()
    data = value_wr.result
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional

from repro.core.backoff import ConflictAvoider
from repro.core.features import SmartFeatures
from repro.core.stats import OperationStats
from repro.core.throttle import WorkRequestThrottler
from repro.cluster import ComputeThread
from repro.memory.address import blade_of
from repro.rnic import verbs
from repro.rnic.qp import (
    WorkBatch,
    WorkRequest,
    am_wr,
    cas_wr,
    faa_wr,
    read_wr,
    write_wr,
)

_U64 = struct.Struct("<Q")


class SmartThread:
    """Per-thread SMART state: credits, backoff controller, statistics."""

    def __init__(
        self,
        thread: ComputeThread,
        features: Optional[SmartFeatures] = None,
        seed: int = 0,
    ):
        self.thread = thread
        self.features = features or SmartFeatures()
        self.sim = thread.sim
        self.rng = random.Random((seed << 16) ^ thread.thread_id)
        name = f"t{thread.thread_id}"
        self.throttler = WorkRequestThrottler(self.sim, self.features, name=name)
        self.avoider = ConflictAvoider(
            self.sim, self.features, self.rng, thread.config.cpu_ghz, name=name
        )
        self.stats = OperationStats()
        #: optional :class:`repro.obs.tracing.TraceRecorder` for op spans
        self.recorder = None

    def handle(self) -> "SmartHandle":
        """A fresh per-coroutine handle sharing this thread's resources."""
        return SmartHandle(self)

    def stop(self) -> None:
        """Stop background controller processes (lets short sims drain)."""
        self.throttler.stop()
        self.avoider.stop()


class SmartHandle:
    """The verbs-like facade used by one application coroutine."""

    #: process-global handle sequence; the ordinal is allocation-order
    #: stable for a fixed seed, so RDMASan findings replay identically
    _next_handle_seq = 0

    def __init__(self, smart_thread: SmartThread):
        self.smart = smart_thread
        self.thread = smart_thread.thread
        self.sim = smart_thread.sim
        SmartHandle._next_handle_seq += 1
        #: identity RDMASan attributes this coroutine's ops to
        self.actor = (
            self.thread.node.node_id,
            self.thread.thread_id,
            SmartHandle._next_handle_seq,
        )
        self._buffer: List[WorkRequest] = []
        self._pending: List[WorkBatch] = []
        self._attempts = 0  # consecutive failed CAS attempts (backoff index)
        self._op_started_at: Optional[int] = None
        self._op_retries = 0
        #: batches from the most recent :meth:`sync` that completed with a
        #: non-OK status (empty after a clean sync)
        self.last_errors: List[WorkBatch] = []

    # -- verb buffering (paper API: read/write/cas/faa) ------------------------

    def read(self, remote_addr: int, size: int) -> WorkRequest:
        wr = read_wr(remote_addr, size)
        self._buffer.append(wr)
        return wr

    def write(self, remote_addr: int, payload: bytes) -> WorkRequest:
        wr = write_wr(remote_addr, payload)
        self._buffer.append(wr)
        return wr

    def cas(self, remote_addr: int, compare: int, swap: int) -> WorkRequest:
        wr = cas_wr(remote_addr, compare, swap)
        self._buffer.append(wr)
        return wr

    def faa(self, remote_addr: int, delta: int) -> WorkRequest:
        wr = faa_wr(remote_addr, delta)
        self._buffer.append(wr)
        return wr

    def am(
        self, remote_addr: int, handler: str, args: tuple = (),
        resp_size: int = 8,
    ) -> WorkRequest:
        """Buffer an active message for the blade owning ``remote_addr``.

        AMs cannot share a batch with one-sided verbs, so buffer them
        separately (post any pending one-sided WRs first)."""
        wr = am_wr(remote_addr, handler, args, resp_size=resp_size)
        self._buffer.append(wr)
        return wr

    # -- posting and synchronization ---------------------------------------------

    def post_send(self):
        """Post buffered WRs (SmartPostSend: waits for credits first).

        Lists longer than the current C_max are posted in C_max-sized
        chunks, each gated on credits — otherwise Algorithm 1's
        ``while credit - size < 0: wait`` could never be satisfied.
        """
        if not self._buffer:
            return
        wrs, self._buffer = self._buffer, []
        by_node: Dict[int, List[WorkRequest]] = {}
        for wr in wrs:
            by_node.setdefault(blade_of(wr.remote_addr), []).append(wr)
        throttler = self.smart.throttler
        for node_id, group in by_node.items():
            qp = self.thread.qp_for(node_id)
            cursor = 0
            while cursor < len(group):
                chunk_len = len(group) - cursor
                if throttler.enabled:
                    chunk_len = min(chunk_len, max(1, throttler.cmax))
                chunk = group[cursor : cursor + chunk_len]
                cursor += chunk_len
                # Algorithm 1 line 4: batch size rides in the last wr_id.
                chunk[-1].wr_id = ("batch", len(chunk))
                yield throttler.take(len(chunk))
                batch = yield from verbs.post_send(
                    self.thread, qp, chunk, actor=self.actor
                )
                batch.done._subscribe(lambda b: throttler.on_complete(len(b)))
                self._pending.append(batch)

    def sync(self):
        """Wait for every batch this coroutine has posted (SmartPollCq).

        Returns the batches that completed with an error status (empty
        list on a clean sync) and keeps them on :attr:`last_errors`, so
        callers that care about faults can check either — and callers
        that predate fault injection keep working unchanged.
        """
        pending, self._pending = self._pending, []
        failed: List[WorkBatch] = []
        for batch in pending:
            yield from verbs.wait_completion(self.thread, batch)
            if not batch.ok:
                failed.append(batch)
        self.last_errors = failed
        return failed

    def reconnect(self, node_id: int):
        """Recover the connection to ``node_id`` after a fault completion.

        Models destroy-and-reconnect: probe the remote blade every
        ``reconnect_probe_ns`` with a jittered truncated-exponential gap
        on top (the :class:`ConflictAvoider`'s schedule, active even when
        SMART's optional backoff feature is off) until it answers or
        ``reconnect_retry_limit`` probes fail.  Returns True when the QP
        is back in RTS; recovery latency lands in the thread's stats.
        """
        qp = self.thread.qp_for(node_id)
        config = self.thread.config
        avoider = self.smart.avoider
        remote = qp.remote_node.device
        started = self.sim.now
        for attempt in range(config.reconnect_retry_limit):
            delay = config.reconnect_probe_ns + avoider.reconnect_backoff_ns(attempt)
            yield self.sim.timeout(delay)
            if remote.online:
                qp.reset()
                self.smart.stats.record_recovery(self.sim.now - started)
                return True
        self.smart.stats.record_recovery(self.sim.now - started, failed=True)
        return False

    def note_fault_abort(self) -> None:
        """Count an op attempt wasted by an error completion."""
        self.smart.stats.record_fault_abort()
        recorder = self.smart.recorder
        if recorder is not None:
            recorder.instant(
                f"client-n{self.thread.node.node_id}",
                f"t{self.thread.thread_id}", "fault_abort", self.sim.now,
            )

    # -- synchronous conveniences -----------------------------------------------------

    def read_sync(self, remote_addr: int, size: int):
        wr = self.read(remote_addr, size)
        yield from self.post_send()
        yield from self.sync()
        return wr.result

    def read_u64_sync(self, remote_addr: int):
        data = yield from self.read_sync(remote_addr, 8)
        return _U64.unpack(data)[0]

    def write_sync(self, remote_addr: int, payload: bytes):
        self.write(remote_addr, payload)
        yield from self.post_send()
        yield from self.sync()

    def faa_sync(self, remote_addr: int, delta: int):
        wr = self.faa(remote_addr, delta)
        yield from self.post_send()
        yield from self.sync()
        return wr.result

    def cas_sync(self, remote_addr: int, compare: int, swap: int):
        """Plain CAS; returns the old value (success iff old == compare)."""
        wr = self.cas(remote_addr, compare, swap)
        yield from self.post_send()
        yield from self.sync()
        return wr.result

    def am_sync(
        self, remote_addr: int, handler: str, args: tuple = (),
        resp_size: int = 8,
    ):
        """Post one active message and wait for its handler's response.

        A handler-queue bounce (``STATUS_HANDLER_BUSY`` backpressure) is
        retried with the conflict avoider's truncated-exponential delay;
        any other status returns to the caller, so fault completions
        (remote abort, flush) surface exactly like one-sided ops.
        Returns the completed :class:`WorkRequest` — its ``result`` holds
        the handler's return value on success.
        """
        while True:
            wr = self.am(remote_addr, handler, args, resp_size=resp_size)
            yield from self.post_send()
            yield from self.sync()
            if wr.status != WorkRequest.STATUS_HANDLER_BUSY:
                return wr
            self._op_retries += 1
            self.smart.avoider.record_retry()
            yield from self.backoff_delay()

    def backoff_cas_sync(self, remote_addr: int, compare: int, swap: int):
        """CAS with conflict avoidance (§4.3).

        Same semantics as ``cas`` + ``sync``; on failure it additionally
        sleeps the truncated-exponential delay before returning, so the
        caller may recompute the expected value and try again.
        """
        old = yield from self.cas_sync(remote_addr, compare, swap)
        avoider = self.smart.avoider
        if old == compare:
            self._attempts = 0
            return old
        self._op_retries += 1
        avoider.record_retry()
        delay = avoider.backoff_ns(self._attempts)
        self._attempts += 1
        if delay > 0:
            yield self.sim.timeout(delay)
        return old

    # -- operation boundaries (latency, retry stats, c_max credits) ----------------------

    def begin_op(self):
        """Mark the start of one application-level operation."""
        yield self.smart.avoider.begin_op()
        self._op_started_at = self.sim.now
        self._op_retries = 0
        self._attempts = 0

    def end_op(self, failed: bool = False) -> None:
        """Mark the end of the operation started by :meth:`begin_op`."""
        if self._op_started_at is None:
            raise RuntimeError("end_op without begin_op")
        latency = self.sim.now - self._op_started_at
        self.smart.stats.record_op(latency, retries=self._op_retries, failed=failed)
        recorder = self.smart.recorder
        if recorder is not None:
            args = {"retries": self._op_retries}
            if failed:
                args["failed"] = True
            recorder.span(
                f"client-n{self.thread.node.node_id}",
                f"t{self.thread.thread_id}", "op",
                self._op_started_at, self.sim.now, args,
            )
        self.smart.avoider.end_op()
        self._op_started_at = None

    def note_retry(self) -> None:
        """Count an application-level retry that did not go through
        ``backoff_cas_sync`` (e.g. a transaction abort)."""
        self._op_retries += 1
        self.smart.avoider.record_retry()

    def backoff_delay(self):
        """Sleep the current backoff delay (for non-CAS retry loops)."""
        delay = self.smart.avoider.backoff_ns(self._attempts)
        self._attempts += 1
        if delay > 0:
            yield self.sim.timeout(delay)
