"""§4.2 — Adaptive work-request throttling (Algorithm 1).

Each thread holds a credit pool of size C_max.  Posting ``n`` WRs debits
``n`` credits (blocking while depleted — "defer posting unless credit is
enough"); every completed WR replenishes one.  An epoch process probes the
candidate C_max values for Δ each, keeps the one that completed the most
WRs, and then holds it for the stable phase (60 x Δ).
"""

from __future__ import annotations

from repro.core.features import SmartFeatures
from repro.sim import Simulator, TokenBucket
from repro.sim.core import Waitable


class WorkRequestThrottler:
    """Per-thread credit accounting plus the epoch-based C_max search."""

    def __init__(self, sim: Simulator, features: SmartFeatures, name: str = "throttler"):
        self.sim = sim
        self.features = features
        self.name = name
        self.enabled = features.work_req_throttling
        self.cmax = features.initial_cmax
        self.credits = TokenBucket(sim, self.cmax, name=f"{name}.credits")
        #: completed WRs, monotonic (the UPDATE procedure reads deltas)
        self.completed = 0
        #: chosen C_max history [(time, value)] for observability
        self.cmax_history = [(sim.now, self.cmax)]
        self._stopped = False
        self._epoch_process = None
        if self.enabled and features.adaptive_credit:
            self._epoch_process = sim.spawn(
                self._epoch_loop(), name=f"{name}.epochs"
            )

    # -- Algorithm 1, lines 1-13 -------------------------------------------

    def take(self, amount: int) -> Waitable:
        """SmartPostSend's credit debit; fires when posting may proceed."""
        if not self.enabled:
            ticket = self.sim.event()
            ticket.fire(amount)
            return ticket
        return self.credits.take(amount)

    def on_complete(self, amount: int) -> None:
        """SmartPollCq's replenish path (wired to batch completion)."""
        self.completed += amount
        if self.enabled:
            self.credits.put(amount)

    # -- Algorithm 1, lines 14-24 --------------------------------------------

    def update_cmax(self, target: int) -> None:
        """UpdateCMax: shift the pool by (target - C_max)."""
        if target < 1:
            raise ValueError("C_max must be >= 1")
        self.credits.adjust(target - self.cmax)
        self.cmax = target
        self.cmax_history.append((self.sim.now, target))

    def stop(self) -> None:
        """Stop the epoch search immediately.

        The epoch loop sleeps up to ``stable_epochs * Δ`` at a time; the
        flag alone would keep the process (and its pending timeout event)
        alive until that window fires, so interrupt the sleeper too.
        """
        self._stopped = True
        if self._epoch_process is not None and self._epoch_process.alive:
            self._epoch_process.interrupt("stopped")

    def _epoch_loop(self):
        features = self.features
        delta = features.update_delta_ns
        while not self._stopped:
            best_target, best_completed = self.cmax, -1
            for target in features.cmax_candidates:
                self.update_cmax(target)
                before = self.completed
                yield self.sim.timeout(delta)
                if self._stopped:
                    return
                progress = self.completed - before
                if progress > best_completed:
                    best_completed, best_target = progress, target
            self.update_cmax(best_target)
            yield self.sim.timeout(features.stable_epochs * delta)


class StaticThrottler(WorkRequestThrottler):
    """Throttling with a fixed C_max (the paper's +WorkReqThrot without
    the adaptive search; used in ablations)."""

    def __init__(self, sim: Simulator, features: SmartFeatures, name: str = "throttler"):
        super().__init__(
            sim, features.with_overrides(adaptive_credit=False), name=name
        )
