"""Operation-level statistics collected by SMART handles and app clients."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.obs.metrics import LogHistogram
from repro.sim.rng import percentile


class OperationStats:
    """Throughput / latency / retry accounting for one client thread.

    Latency keeps two complementary representations:

    * ``latencies_ns`` — a strided sample reservoir (every
      ``_sample_stride``-th op; the stride doubles when the reservoir
      fills), giving exact per-sample percentiles for short runs;
    * ``latency_hist`` — a log-bucketed :class:`LogHistogram` fed by
      *every* op in fixed memory, which merges exactly across threads
      and backs the metrics registry.
    """

    MAX_LATENCY_SAMPLES = 200_000

    def __init__(self):
        self.ops = 0
        self.retries = 0
        self.failed_ops = 0
        self.retry_histogram: Counter = Counter()
        self.latencies_ns: List[float] = []
        self._sample_stride = 1
        #: per-sample op weights (parallel to ``latencies_ns``); ``None``
        #: until a merge mixes parts with different strides
        self._sample_weights: Optional[List[int]] = None
        #: cached ascending copy of ``latencies_ns`` (+ aligned weights);
        #: invalidated on every append so percentile queries sort once
        self._sorted: Optional[List[float]] = None
        self._sorted_weights: Optional[List[int]] = None
        #: fixed-memory histogram of every recorded latency
        self.latency_hist = LogHistogram()
        #: ops aborted by a fault completion (flush / remote-abort /
        #: retry-exceeded) — the wasted-IOPS side of fault injection
        self.fault_aborts = 0
        #: completed QP reconnect rounds and their latencies
        self.recoveries = 0
        self.failed_recoveries = 0
        self.recovery_latencies_ns: List[float] = []
        #: set by the runner at the start of the measurement window; ops
        #: before that are warmup and only counted if recording is on
        self.recording = True

    def record_op(self, latency_ns: float, retries: int = 0, failed: bool = False) -> None:
        if not self.recording:
            return
        self.ops += 1
        self.retries += retries
        self.retry_histogram[min(retries, 32)] += 1
        if failed:
            self.failed_ops += 1
        self.latency_hist.record(latency_ns)
        if self.ops % self._sample_stride == 0:
            self._sorted = None
            self._sorted_weights = None
            self.latencies_ns.append(latency_ns)
            if self._sample_weights is not None:
                self._sample_weights.append(self._sample_stride)
            if len(self.latencies_ns) >= self.MAX_LATENCY_SAMPLES:
                # Keep every other sample and double the stride.
                self.latencies_ns = self.latencies_ns[::2]
                if self._sample_weights is not None:
                    self._sample_weights = [
                        w * 2 for w in self._sample_weights[::2]
                    ]
                self._sample_stride *= 2

    def record_fault_abort(self) -> None:
        """One op attempt thrown away because a WR completed with error."""
        self.fault_aborts += 1

    def record_recovery(self, latency_ns: float, failed: bool = False) -> None:
        """One QP reconnect round (recovery latency is always recorded,
        warmup or not — faults don't respect measurement windows)."""
        if failed:
            self.failed_recoveries += 1
            return
        self.recoveries += 1
        self.recovery_latencies_ns.append(latency_ns)

    def reset(self) -> None:
        self.__init__()

    # -- aggregation -------------------------------------------------------

    @staticmethod
    def merge(parts: List["OperationStats"]) -> "OperationStats":
        """Aggregate thread-local stats.

        Latency samples are weighted by each part's ``_sample_stride``
        (one retained sample stands for ``stride`` ops), so merged
        percentiles are unbiased even when some threads downsampled and
        others did not.  The merged reservoir is stored pre-sorted and
        the sort is cached for subsequent percentile queries.
        """
        total = OperationStats()
        pairs: List = []
        for part in parts:
            total.ops += part.ops
            total.retries += part.retries
            total.failed_ops += part.failed_ops
            total.fault_aborts += part.fault_aborts
            total.recoveries += part.recoveries
            total.failed_recoveries += part.failed_recoveries
            total.recovery_latencies_ns.extend(part.recovery_latencies_ns)
            total.retry_histogram.update(part.retry_histogram)
            total.latency_hist.merge(part.latency_hist)
            if part._sample_weights is not None:
                pairs.extend(zip(part.latencies_ns, part._sample_weights))
            else:
                stride = part._sample_stride
                pairs.extend((latency, stride) for latency in part.latencies_ns)
            total._sample_stride = max(total._sample_stride, part._sample_stride)
        pairs.sort()
        total.latencies_ns = [latency for latency, _ in pairs]
        total._sample_weights = [weight for _, weight in pairs]
        # Reuse the sort: percentile queries on the merged stats hit the
        # cache instead of re-sorting the concatenated reservoirs.
        total._sorted = list(total.latencies_ns)
        total._sorted_weights = list(total._sample_weights)
        total.recovery_latencies_ns.sort()
        return total

    @property
    def avg_retries(self) -> float:
        return self.retries / self.ops if self.ops else 0.0

    @property
    def avg_recovery_ns(self) -> float:
        if not self.recovery_latencies_ns:
            return 0.0
        return sum(self.recovery_latencies_ns) / len(self.recovery_latencies_ns)

    def _ordered_samples(self):
        """Sorted samples (+ aligned weights), cached until the next append."""
        n = len(self.latencies_ns)
        if self._sorted is not None and len(self._sorted) == n:
            return self._sorted, self._sorted_weights
        weights = self._sample_weights
        if weights is not None and len(weights) == n:
            pairs = sorted(zip(self.latencies_ns, weights))
            self._sorted = [latency for latency, _ in pairs]
            self._sorted_weights = [weight for _, weight in pairs]
        else:
            self._sorted = sorted(self.latencies_ns)
            self._sorted_weights = None
        return self._sorted, self._sorted_weights

    def latency_percentile_ns(self, fraction: float) -> Optional[float]:
        if not self.latencies_ns:
            return None
        ordered, weights = self._ordered_samples()
        if weights is None or all(w == weights[0] for w in weights):
            # Uniform weights: identical to the plain nearest-rank result.
            return percentile(ordered, fraction)
        total_weight = sum(weights)
        target = fraction * total_weight
        cumulative = 0
        for latency, weight in zip(ordered, weights):
            cumulative += weight
            if cumulative >= target:
                return latency
        return ordered[-1]

    def retry_distribution(self) -> Dict[int, float]:
        """Fraction of ops by retry count (Fig 14c)."""
        total = sum(self.retry_histogram.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.retry_histogram.items())}
