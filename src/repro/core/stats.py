"""Operation-level statistics collected by SMART handles and app clients."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.sim.rng import percentile


class OperationStats:
    """Throughput / latency / retry accounting for one client thread."""

    MAX_LATENCY_SAMPLES = 200_000

    def __init__(self):
        self.ops = 0
        self.retries = 0
        self.failed_ops = 0
        self.retry_histogram: Counter = Counter()
        self.latencies_ns: List[float] = []
        self._sample_stride = 1
        #: ops aborted by a fault completion (flush / remote-abort /
        #: retry-exceeded) — the wasted-IOPS side of fault injection
        self.fault_aborts = 0
        #: completed QP reconnect rounds and their latencies
        self.recoveries = 0
        self.failed_recoveries = 0
        self.recovery_latencies_ns: List[float] = []
        #: set by the runner at the start of the measurement window; ops
        #: before that are warmup and only counted if recording is on
        self.recording = True

    def record_op(self, latency_ns: float, retries: int = 0, failed: bool = False) -> None:
        if not self.recording:
            return
        self.ops += 1
        self.retries += retries
        self.retry_histogram[min(retries, 32)] += 1
        if failed:
            self.failed_ops += 1
        if self.ops % self._sample_stride == 0:
            self.latencies_ns.append(latency_ns)
            if len(self.latencies_ns) >= self.MAX_LATENCY_SAMPLES:
                # Keep every other sample and double the stride.
                self.latencies_ns = self.latencies_ns[::2]
                self._sample_stride *= 2

    def record_fault_abort(self) -> None:
        """One op attempt thrown away because a WR completed with error."""
        self.fault_aborts += 1

    def record_recovery(self, latency_ns: float, failed: bool = False) -> None:
        """One QP reconnect round (recovery latency is always recorded,
        warmup or not — faults don't respect measurement windows)."""
        if failed:
            self.failed_recoveries += 1
            return
        self.recoveries += 1
        self.recovery_latencies_ns.append(latency_ns)

    def reset(self) -> None:
        self.__init__()

    # -- aggregation -------------------------------------------------------

    @staticmethod
    def merge(parts: List["OperationStats"]) -> "OperationStats":
        total = OperationStats()
        for part in parts:
            total.ops += part.ops
            total.retries += part.retries
            total.failed_ops += part.failed_ops
            total.fault_aborts += part.fault_aborts
            total.recoveries += part.recoveries
            total.failed_recoveries += part.failed_recoveries
            total.recovery_latencies_ns.extend(part.recovery_latencies_ns)
            total.retry_histogram.update(part.retry_histogram)
            total.latencies_ns.extend(part.latencies_ns)
        total.latencies_ns.sort()
        total.recovery_latencies_ns.sort()
        return total

    @property
    def avg_retries(self) -> float:
        return self.retries / self.ops if self.ops else 0.0

    @property
    def avg_recovery_ns(self) -> float:
        if not self.recovery_latencies_ns:
            return 0.0
        return sum(self.recovery_latencies_ns) / len(self.recovery_latencies_ns)

    def latency_percentile_ns(self, fraction: float) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return percentile(sorted(self.latencies_ns), fraction)

    def retry_distribution(self) -> Dict[int, float]:
        """Fraction of ops by retry count (Fig 14c)."""
        total = sum(self.retry_histogram.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.retry_histogram.items())}
