"""§4.1 — Thread-aware RDMA resource allocation.

One *shared* device context (so memory is registered once and the MTT/MPT
stays warm), but per-thread QPs, CQs and doorbell registers.  The context
is opened with enough doorbells for every thread (the MLX5_TOTAL_UUARS
driver tweak), and each thread's QPs are steered onto its private
doorbell by exploiting the driver's deterministic round-robin mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster import ComputeThread, Node
from repro.core.features import SmartFeatures
from repro.rnic.device import DeviceContext
from repro.rnic.doorbell import Doorbell
from repro.rnic.qp import CompletionQueue, QueuePair


class QpPool:
    """A per-thread pool of QPs sharing one CQ and one doorbell.

    All QPs a thread ever uses come from (and return to) its own pool, so
    no QP — and no doorbell — is ever touched by two threads.
    """

    def __init__(self, context: DeviceContext, doorbell: Doorbell, cq: CompletionQueue):
        self.context = context
        self.doorbell = doorbell
        self.cq = cq
        self._idle: Dict[int, List[QueuePair]] = {}
        self.created = 0

    def acquire(self, remote_node) -> QueuePair:
        """Take an idle QP to ``remote_node``, creating one if needed."""
        idle = self._idle.get(remote_node.node_id)
        if idle:
            return idle.pop()
        self.created += 1
        return self.context.create_qp(remote_node, cq=self.cq, doorbell=self.doorbell)

    def release(self, qp: QueuePair) -> None:
        if qp.doorbell is not self.doorbell:
            raise ValueError("QP released to a foreign pool")
        self._idle.setdefault(qp.remote_node.node_id, []).append(qp)

    @property
    def idle_count(self) -> int:
        return sum(len(v) for v in self._idle.values())


class SmartContext:
    """SMART's per-compute-node resource allocator.

    With ``thread_aware_alloc`` on, every thread gets a private doorbell
    (plus QP pool and CQ).  With it off, this degrades to the conventional
    per-thread-QP setup on a default 16-doorbell context — the baseline the
    paper's applications (RACE/FORD/Sherman) shipped with.
    """

    def __init__(
        self,
        compute_node: Node,
        memory_nodes: List[Node],
        features: Optional[SmartFeatures] = None,
    ):
        self.compute_node = compute_node
        self.memory_nodes = list(memory_nodes)
        self.features = features or SmartFeatures()
        config = compute_node.config
        threads = compute_node.threads
        if not threads:
            raise ValueError("add threads to the compute node before connecting")

        if self.features.thread_aware_alloc:
            wanted = len(threads) + config.low_latency_uars
            total_uuars = min(config.max_uars, max(wanted, config.low_latency_uars + 1))
            self.context = compute_node.device.open_context(total_uuars)
        else:
            self.context = compute_node.device.open_context()  # driver default: 16
        self.context.register_mr()

        self.pools: Dict[int, QpPool] = {}
        self.cqs: Dict[int, CompletionQueue] = {}
        for thread in threads:
            self._connect_thread(thread)
        # Let elasticity machinery (autoscaler, migrator) find the
        # allocator that owns this node's QPs.
        compute_node.smart_context = self

    def _connect_thread(self, thread: ComputeThread) -> None:
        cq = CompletionQueue(self.compute_node.sim, name=f"cq-t{thread.thread_id}")
        self.cqs[thread.thread_id] = cq
        if self.features.thread_aware_alloc:
            doorbell = self.context.uar.skip_to_fresh_medium()
            pool = QpPool(self.context, doorbell, cq)
            for remote in self.memory_nodes:
                thread.qps[remote.node_id] = pool.acquire(remote)
            self.pools[thread.thread_id] = pool
        else:
            # Conventional per-thread QP: the driver picks doorbells
            # round-robin, silently sharing them between threads.
            for remote in self.memory_nodes:
                thread.qps[remote.node_id] = self.context.create_qp(remote, cq=cq)

    def connect_node(self, remote: Node) -> None:
        """Wire every thread to a blade added after initial setup.

        Scale-out path: a new memory blade joins the fleet mid-run and
        each compute thread needs a QP to it before shards can land
        there.  Idempotent per remote."""
        if any(n.node_id == remote.node_id for n in self.memory_nodes):
            return
        self.memory_nodes.append(remote)
        for thread in self.compute_node.threads:
            if self.features.thread_aware_alloc:
                thread.qps[remote.node_id] = (
                    self.pools[thread.thread_id].acquire(remote)
                )
            else:
                thread.qps[remote.node_id] = self.context.create_qp(
                    remote, cq=self.cqs[thread.thread_id]
                )

    def pool_for(self, thread: ComputeThread) -> QpPool:
        return self.pools[thread.thread_id]

    def doorbells_in_use(self) -> int:
        return sum(1 for db in self.context.uar.doorbells if db.bound_qps > 0)
