"""Feature switches for SMART's techniques.

The paper's breakdown experiments (Figures 8, 13, 14) enable the
techniques one at a time; this dataclass is the single switchboard the
benches flip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SmartFeatures:
    """Which SMART techniques are active."""

    thread_aware_alloc: bool = True
    """§4.1 — per-thread QPs *and* per-thread doorbell registers."""

    work_req_throttling: bool = True
    """§4.2 — credit-based outstanding-WR throttling (Algorithm 1)."""

    adaptive_credit: bool = True
    """§4.2 — run the epoch-based UPDATE search for the best C_max.
    With throttling on but this off, C_max stays at ``initial_cmax``."""

    backoff: bool = True
    """§4.3 — truncated exponential backoff on failed CAS."""

    dynamic_backoff_limit: bool = True
    """§4.3 — adapt t_max to the observed retry rate."""

    coroutine_throttling: bool = True
    """§4.3 — throttle concurrent operations per thread (c_max)."""

    # -- tunables (paper defaults) -------------------------------------------
    initial_cmax: int = 8
    cmax_candidates: tuple = (4, 6, 8, 10, 12)
    update_delta_ns: float = 8e6
    """Δ: candidate evaluation window (8 ms)."""

    stable_epochs: int = 60
    """Stable phase length in Δ units (60 x 8 ms = 480 ms)."""

    backoff_unit_cycles: int = 4096
    """t0 ~ one RDMA roundtrip on the testbed CPU."""

    backoff_max_exponent: int = 10
    """t_M = 2^10 x t0 ~ 1.6 ms, the hard backoff ceiling."""

    retry_rate_high: float = 0.5
    retry_rate_low: float = 0.1
    retry_window_ns: float = 1e6
    """γ sampling window (every millisecond)."""

    max_coroutine_credits: int = 64
    """Upper bound for c_max (effectively 'unthrottled')."""

    def with_overrides(self, **kwargs) -> "SmartFeatures":
        return replace(self, **kwargs)


def baseline() -> SmartFeatures:
    """Everything off: behaves like a conventional per-thread-QP client."""
    return SmartFeatures(
        thread_aware_alloc=False,
        work_req_throttling=False,
        adaptive_credit=False,
        backoff=False,
        dynamic_backoff_limit=False,
        coroutine_throttling=False,
    )


def full() -> SmartFeatures:
    """All of SMART (the defaults)."""
    return SmartFeatures()


def cumulative_ladder():
    """The Fig-8 breakdown: baseline, +ThdResAlloc, +WorkReqThrot, +ConflictAvoid."""
    base = baseline()
    thd = base.with_overrides(thread_aware_alloc=True)
    throt = thd.with_overrides(work_req_throttling=True, adaptive_credit=True)
    conflict = throt.with_overrides(
        backoff=True, dynamic_backoff_limit=True, coroutine_throttling=True
    )
    return [
        ("baseline", base),
        ("+ThdResAlloc", thd),
        ("+WorkReqThrot", throt),
        ("+ConflictAvoid", conflict),
    ]
