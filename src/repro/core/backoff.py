"""§4.3 — Conflict avoidance.

Failed RDMA CAS retries burn the NIC's limited IOPS.  SMART responds on
two axes, both driven by the *retry rate* γ sampled every millisecond:

* truncated exponential backoff (Eq. 1) with a dynamic ceiling t_max, and
* coroutine-depth throttling: at most c_max application operations may be
  in flight per thread.

Per the paper, c_max reacts first; t_max only moves once c_max has hit a
bound (e.g. γ > γ_H while c_max is already 1 doubles t_max).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.features import SmartFeatures
from repro.sim import Simulator, TokenBucket
from repro.sim.core import Waitable
from repro.sim.rng import truncated_exponential_backoff_ns


class ConflictAvoider:
    """Per-thread retry-rate tracking, backoff delays and c_max credits."""

    def __init__(
        self,
        sim: Simulator,
        features: SmartFeatures,
        rng: random.Random,
        cpu_ghz: float,
        name: str = "avoider",
    ):
        self.sim = sim
        self.features = features
        self.rng = rng
        self.name = name
        self.t0_ns = features.backoff_unit_cycles / cpu_ghz
        self.t_big_ns = self.t0_ns * (2 ** features.backoff_max_exponent)
        # With the dynamic limit, t_max starts at t0 and adapts to the
        # retry rate; the static variant (+Backoff alone) is a plain
        # truncated exponential up to the t_M ceiling.
        self.t_max_ns = (
            self.t0_ns if features.dynamic_backoff_limit else self.t_big_ns
        )
        self.cmax = (
            features.initial_cmax
            if features.coroutine_throttling
            else features.max_coroutine_credits
        )
        self._op_credits = TokenBucket(sim, self.cmax, name=f"{name}.ops")
        # window counters for γ
        self._window_ops = 0
        self._window_retries = 0
        #: [(time, t_max, c_max, gamma)] for observability
        self.history: List[Tuple[int, float, int, float]] = []
        self._stopped = False
        self._window_process = None
        if features.dynamic_backoff_limit or features.coroutine_throttling:
            self._window_process = sim.spawn(
                self._window_loop(), name=f"{name}.window"
            )

    # -- operation concurrency (c_max) ----------------------------------------

    def begin_op(self) -> Waitable:
        """Take one operation credit (blocks beyond c_max concurrent ops)."""
        if not self.features.coroutine_throttling:
            ticket = self.sim.event()
            ticket.fire(1)
            return ticket
        return self._op_credits.take(1)

    def end_op(self) -> None:
        self._window_ops += 1
        if self.features.coroutine_throttling:
            self._op_credits.put(1)

    # -- backoff ------------------------------------------------------------------

    def record_retry(self) -> None:
        self._window_retries += 1

    def backoff_ns(self, attempt: int) -> float:
        """Eq. (1): min(t0 * 2^attempt, t_max) + Rand(t0)."""
        if not self.features.backoff:
            return 0.0
        return truncated_exponential_backoff_ns(
            attempt, self.t0_ns, self.t_max_ns, self.rng
        )

    def reconnect_backoff_ns(self, attempt: int) -> float:
        """Jittered truncated-exponential delay for QP reconnect probes.

        Unlike :meth:`backoff_ns` this ignores the ``backoff`` feature
        gate: reconnect pacing after a blade crash is part of the
        transport's recovery path, not an optional SMART optimization, so
        baseline (feature-off) configurations must still spread their
        probes instead of hammering the crashed blade in lockstep.
        """
        return truncated_exponential_backoff_ns(
            attempt, self.t0_ns, self.t_big_ns, self.rng
        )

    # -- the γ controller -----------------------------------------------------------

    def stop(self) -> None:
        """Stop the γ controller immediately.

        The window loop sleeps a full ``retry_window_ns`` between samples;
        merely setting the flag would leave the process alive (holding a
        pending window event) until the next boundary, so the sleeping
        process is interrupted as well.
        """
        self._stopped = True
        if self._window_process is not None and self._window_process.alive:
            self._window_process.interrupt("stopped")

    def _window_loop(self):
        features = self.features
        while not self._stopped:
            yield self.sim.timeout(features.retry_window_ns)
            ops = self._window_ops
            retries = self._window_retries
            self._window_ops = 0
            self._window_retries = 0
            if ops + retries == 0:
                continue
            gamma = retries / (ops + retries)
            if gamma > features.retry_rate_high:
                self._tighten()
            elif gamma < features.retry_rate_low:
                self._relax()
            self.history.append((self.sim.now, self.t_max_ns, self.cmax, gamma))

    def _tighten(self) -> None:
        """High retry rate: fewer concurrent ops first, longer backoff after."""
        features = self.features
        if features.coroutine_throttling and self.cmax > 1:
            self._set_cmax(max(1, self.cmax // 2))
        elif features.dynamic_backoff_limit:
            self.t_max_ns = min(self.t_max_ns * 2, self.t_big_ns)

    def _relax(self) -> None:
        """Low retry rate: shorter backoff first, more concurrency after."""
        features = self.features
        if features.dynamic_backoff_limit and self.t_max_ns > self.t0_ns:
            self.t_max_ns = max(self.t_max_ns / 2, self.t0_ns)
        elif features.coroutine_throttling and self.cmax < features.max_coroutine_credits:
            self._set_cmax(min(features.max_coroutine_credits, self.cmax * 2))

    def _set_cmax(self, target: int) -> None:
        self._op_credits.adjust(target - self.cmax)
        self.cmax = target
