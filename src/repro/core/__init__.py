"""SMART: the paper's contribution.

Three techniques behind a verbs-like coroutine API:

* :mod:`repro.core.context`  — §4.1 thread-aware resource allocation
  (per-thread QP pools, CQs and doorbell registers on one shared device
  context);
* :mod:`repro.core.throttle` — §4.2 adaptive work-request throttling
  (Algorithm 1: credit accounting plus an epoch-based search for the best
  per-thread credit ceiling);
* :mod:`repro.core.backoff`  — §4.3 conflict avoidance (truncated
  exponential backoff with a dynamic limit, plus coroutine-depth
  throttling driven by the observed retry rate).

Applications talk to :class:`repro.core.api.SmartHandle`, whose methods
mirror the paper's API: ``read``/``write``/``cas``/``faa`` buffer work
requests, ``post_send`` posts them, ``sync`` awaits completions and
``backoff_cas_sync`` is the conflict-avoiding CAS.
"""

from repro.core.api import SmartHandle, SmartThread
from repro.core.context import SmartContext
from repro.core.features import SmartFeatures
from repro.core.stats import OperationStats

__all__ = [
    "OperationStats",
    "SmartContext",
    "SmartFeatures",
    "SmartHandle",
    "SmartThread",
]
