"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e . --no-build-isolation --no-use-pep517`` uses this file;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
