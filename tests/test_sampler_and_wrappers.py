"""Tests for the counter sampler and the SMART app-wrapper modules."""

import pytest

from repro.apps.smart_bt import SmartBTree, sherman_plus_features, smart_bt_features
from repro.apps.smart_dtx import SmartTxnClient, ford_features, smart_dtx_features
from repro.apps.smart_ht import SmartHashTable, race_features, smart_ht_features
from repro.bench.sampler import CounterSampler
from repro.cluster import Cluster
from repro.rnic import verbs
from repro.rnic.policies import PerThreadQpPolicy
from repro.rnic.qp import read_wr


class TestCounterSampler:
    def _cluster(self):
        cluster = Cluster()
        compute = cluster.add_node()
        compute.add_threads(2)
        (remote,) = cluster.add_nodes(1)
        PerThreadQpPolicy().connect(compute, [remote])
        return cluster, compute, remote

    def test_samples_track_throughput(self):
        cluster, compute, remote = self._cluster()

        def worker(thread):
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(0)
            while True:
                yield from verbs.post_and_wait(
                    thread, qp, [read_wr(addr, 8) for _ in range(8)]
                )

        for thread in compute.threads:
            cluster.sim.spawn(worker(thread))
        sampler = CounterSampler(cluster.sim, compute.device, period_ns=0.1e6)
        cluster.sim.run(until=1.0e6)
        sampler.stop()
        assert len(sampler.samples) == 10
        assert sampler.mean_mops() > 1.0
        assert all(m >= 0 for m in sampler.throughputs())

    def test_idle_device_samples_zero(self):
        cluster, compute, _ = self._cluster()
        sampler = CounterSampler(cluster.sim, compute.device, period_ns=0.1e6)
        cluster.sim.run(until=0.5e6)
        sampler.stop()
        assert sampler.mean_mops() == 0.0

    def test_no_samples_returns_none(self):
        cluster, compute, _ = self._cluster()
        sampler = CounterSampler(cluster.sim, compute.device, period_ns=1e6)
        assert sampler.mean_mops() is None

    def test_rejects_bad_period(self):
        cluster, compute, _ = self._cluster()
        with pytest.raises(ValueError):
            CounterSampler(cluster.sim, compute.device, period_ns=0)


class TestWrapperConfigurations:
    """The paper's refactors are configuration diffs; pin them down."""

    def test_ht_wrappers(self):
        assert not race_features().thread_aware_alloc
        assert not race_features().backoff
        full = smart_ht_features()
        assert full.thread_aware_alloc and full.work_req_throttling and full.backoff

    def test_dtx_wrappers(self):
        assert not ford_features().work_req_throttling
        assert smart_dtx_features().coroutine_throttling

    def test_bt_wrappers(self):
        assert not sherman_plus_features().thread_aware_alloc
        assert smart_bt_features().dynamic_backoff_limit

    def test_aliases_subclass_the_shared_clients(self):
        from repro.apps.ford.txn import TxnClient
        from repro.apps.race.client import HashTableClient
        from repro.apps.sherman.client import BTreeClient

        assert issubclass(SmartHashTable, HashTableClient)
        assert issubclass(SmartTxnClient, TxnClient)
        assert issubclass(SmartBTree, BTreeClient)
