"""Tests for the reference-result comparison utility."""

import pathlib

import pytest

from repro.bench.reference import (
    Comparison,
    compare_all,
    compare_file,
    extract_numbers,
    snapshot,
)

TABLE = """Figure X: demo
threads  MOPS   extra
-------  -----  -----
      2   4.93   1.00
     96  110.00  2.50
paper: something
"""


class TestExtractNumbers:
    def test_parses_table_rows_only(self):
        assert extract_numbers(TABLE) == [2, 4.93, 1.0, 96, 110.0, 2.5]

    def test_stops_at_paper_line(self):
        text = TABLE + "note: 42 irrelevant\n"
        assert 42 not in extract_numbers(text)

    def test_empty_without_rule(self):
        assert extract_numbers("no table here 1 2 3") == []


class TestCompare:
    def _write(self, directory, name, text):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(text)

    def test_identical_files_ok(self, tmp_path):
        self._write(tmp_path / "results", "a.txt", TABLE)
        self._write(tmp_path / "reference", "a.txt", TABLE)
        comparison = compare_file(tmp_path / "results" / "a.txt",
                                  tmp_path / "reference")
        assert comparison.ok
        assert comparison.compared_values == 6

    def test_small_drift_within_tolerance(self, tmp_path):
        drifted = TABLE.replace("110.00", "112.00")  # < 5%
        self._write(tmp_path / "results", "a.txt", drifted)
        self._write(tmp_path / "reference", "a.txt", TABLE)
        assert compare_file(tmp_path / "results" / "a.txt",
                            tmp_path / "reference").ok

    def test_large_drift_flagged(self, tmp_path):
        drifted = TABLE.replace("110.00", "55.00")
        self._write(tmp_path / "results", "a.txt", drifted)
        self._write(tmp_path / "reference", "a.txt", TABLE)
        comparison = compare_file(tmp_path / "results" / "a.txt",
                                  tmp_path / "reference")
        assert not comparison.ok
        assert comparison.mismatches[0][1] == 110.0

    def test_missing_reference_reported(self, tmp_path):
        self._write(tmp_path / "results", "a.txt", TABLE)
        (tmp_path / "reference").mkdir()
        comparison = compare_file(tmp_path / "results" / "a.txt",
                                  tmp_path / "reference")
        assert comparison.missing_reference and not comparison.ok

    def test_shape_mismatch_flagged(self, tmp_path):
        shorter = "\n".join(TABLE.splitlines()[:-2]) + "\npaper: x\n"
        self._write(tmp_path / "results", "a.txt", shorter)
        self._write(tmp_path / "reference", "a.txt", TABLE)
        comparison = compare_file(tmp_path / "results" / "a.txt",
                                  tmp_path / "reference")
        assert not comparison.ok
        assert comparison.mismatches[0][0] == -1

    def test_snapshot_and_compare_all_roundtrip(self, tmp_path):
        results = tmp_path / "results"
        self._write(results, "a.txt", TABLE)
        self._write(results, "b.txt", TABLE.replace("110.00", "10.00"))
        reference = tmp_path / "reference"
        assert snapshot(results, reference) == 2
        outcomes = compare_all(results, reference)
        assert len(outcomes) == 2
        assert all(c.ok for c in outcomes)


class TestCommittedReference:
    def test_results_match_committed_reference_if_present(self):
        """When both benchmarks/results and benchmarks/reference exist,
        the current run should match the snapshot (determinism guard)."""
        root = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        results, reference = root / "results", root / "reference"
        if not (results.is_dir() and reference.is_dir()):
            pytest.skip("no results/reference snapshot in this checkout")
        outcomes = compare_all(results, reference)
        checked = [c for c in outcomes if not c.missing_reference]
        if not checked:
            pytest.skip("reference snapshot empty")
        bad = [c for c in checked if not c.ok]
        assert not bad, [
            (c.name, c.mismatches[:3]) for c in bad
        ]
