"""Unit tests for the posting path costs (verbs + doorbell model)."""

import pytest

from repro.cluster import Cluster
from repro.rnic import verbs
from repro.rnic.config import RnicConfig, connectx6
from repro.rnic.doorbell import Doorbell, MEDIUM_LATENCY
from repro.rnic.policies import PerThreadQpPolicy, SharedQpPolicy
from repro.rnic.qp import read_wr
from repro.sim import Simulator


class TestDoorbellCostModel:
    def _doorbell(self, config):
        return Doorbell(Simulator(), config, 5, MEDIUM_LATENCY)

    def test_exclusive_doorbell_cost(self):
        config = connectx6()
        db = self._doorbell(config)
        db.note_user(0)
        # One user: mmio + per-WQE copy, no sharing terms.
        expected = config.doorbell_mmio_ns + config.wqe_under_lock_ns * 8
        assert db.held_cost_ns(config, 8) == pytest.approx(expected)

    def test_shared_doorbell_cost_grows_with_users(self):
        config = connectx6()
        db = self._doorbell(config)
        costs = []
        for user in range(8):
            db.note_user(user)
            costs.append(db.held_cost_ns(config, 8))
        assert costs == sorted(costs)
        # 8 sharers on a batch-8 ring: the microbench-collapse regime
        # (~1.9 us per ring).
        assert costs[-1] > 1500

    def test_single_wqe_ring_stays_cheap_when_shared(self):
        """Sherman's regime: 8 sharers but single-WQE rings must still be
        under ~1 us (the paper's ~16 M rings/s through shared DBs)."""
        config = connectx6()
        db = self._doorbell(config)
        for user in range(8):
            db.note_user(user)
        assert db.held_cost_ns(config, 1) < 1000

    def test_sharer_count_capped(self):
        config = connectx6()
        db = self._doorbell(config)
        for user in range(100):
            db.note_user(user)
        capped = db.held_cost_ns(config, 1)
        db.note_user(101)
        assert db.held_cost_ns(config, 1) == capped


class TestPostingPath:
    def _setup(self, policy):
        cluster = Cluster()
        compute = cluster.add_node()
        compute.add_threads(2)
        (remote,) = cluster.add_nodes(1)
        policy.connect(compute, [remote])
        return cluster, compute, remote

    def test_post_send_registers_doorbell_user(self):
        cluster, compute, remote = self._setup(PerThreadQpPolicy())
        thread = compute.threads[0]
        qp = thread.qp_for(remote.node_id)

        def proc():
            yield from verbs.post_and_wait(
                thread, qp, [read_wr(remote.storage.global_addr(0), 8)]
            )

        cluster.sim.spawn(proc())
        cluster.sim.run()
        assert thread.thread_id in qp.doorbell.users
        assert qp.doorbell.rings == 1
        assert qp.posted_wrs == 1 and qp.completed_wrs == 1
        assert qp.outstanding == 0

    def test_shared_qp_serializes_two_threads(self):
        cluster, compute, remote = self._setup(SharedQpPolicy())
        qp = compute.threads[0].qp_for(remote.node_id)
        in_lock = []

        def proc(thread):
            yield from verbs.post_and_wait(
                thread, qp, [read_wr(remote.storage.global_addr(0), 8)]
            )
            in_lock.append(cluster.sim.now)

        for thread in compute.threads:
            cluster.sim.spawn(proc(thread))
        cluster.sim.run()
        assert len(qp.users) == 2
        assert qp.sharing_penalty_ns(cluster.config) > 0

    def test_unshared_qp_has_no_share_penalty(self):
        cluster, compute, remote = self._setup(PerThreadQpPolicy())
        qp = compute.threads[0].qp_for(remote.node_id)
        assert qp.sharing_penalty_ns(cluster.config) == 0.0

    def test_wait_completion_idempotent_after_done(self):
        cluster, compute, remote = self._setup(PerThreadQpPolicy())
        thread = compute.threads[0]
        qp = thread.qp_for(remote.node_id)
        out = []

        def proc():
            batch = yield from verbs.post_send(
                thread, qp, [read_wr(remote.storage.global_addr(0), 8)]
            )
            yield cluster.sim.timeout(100_000)  # completes long before
            yield from verbs.wait_completion(thread, batch)
            out.append(batch.completed_at)

        cluster.sim.spawn(proc())
        cluster.sim.run()
        assert out[0] is not None and out[0] < 100_000
