"""Tests for the RACE hash table (layout, server, client protocol)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.race import layout
from repro.apps.race.client import HashTableClient
from repro.apps.race.server import HashTableServer
from repro.cluster import Cluster
from repro.core import SmartContext, SmartThread
from repro.core.features import baseline, full


class TestLayout:
    def test_slot_roundtrip(self):
        raw = layout.make_slot(12345, 0xABCDEF)
        slot = layout.decode_slot(raw)
        assert slot.fingerprint == layout.fingerprint(12345)
        assert slot.addr == 0xABCDEF
        assert slot.kv_bytes == layout.KV_BLOCK_BYTES

    @given(st.integers(0, 2**63), st.integers(0, 2**48 - 1))
    @settings(max_examples=100, deadline=None)
    def test_slot_roundtrip_property(self, key, addr):
        slot = layout.decode_slot(layout.make_slot(key, addr))
        assert slot.addr == addr
        assert slot.fingerprint == layout.fingerprint(key)

    def test_fingerprint_never_zero(self):
        assert all(layout.fingerprint(k) != 0 for k in range(2000))

    def test_bucket_indices_distinct(self):
        for key in range(1000):
            b1, b2 = layout.bucket_indices(key, 64)
            assert b1 != b2
            assert 0 <= b1 < 64 and 0 <= b2 < 64

    def test_kv_roundtrip(self):
        data = layout.pack_kv(7, 9)
        assert layout.unpack_kv(data) == (7, 9)
        assert len(data) == layout.KV_BLOCK_BYTES

    def test_directory_index_uses_low_bits(self):
        key = 42
        assert layout.directory_index(key, 4) == layout.hash1(key) & 0xF

    def test_slot_encode_validation(self):
        with pytest.raises(ValueError):
            layout.Slot(256, 2, 0).encode()
        with pytest.raises(ValueError):
            layout.Slot(1, 2, 1 << 48).encode()


def deploy(threads=2, memory_nodes=2, segments=8, buckets=64, features=None):
    """A small table plus one client handle per thread."""
    cluster = Cluster()
    compute = cluster.add_node()
    compute.add_threads(threads)
    remotes = cluster.add_nodes(memory_nodes)
    server = HashTableServer(remotes, segments=segments, buckets_per_segment=buckets)
    features = features or full()
    SmartContext(compute, remotes, features)
    smarts = [SmartThread(t, features, seed=i) for i, t in enumerate(compute.threads)]
    meta = server.meta()
    clients = [HashTableClient(s.handle(), meta) for s in smarts]
    return cluster, server, clients, smarts


def drive(cluster, generators, until=5e8):
    results = []
    for gen in generators:
        results.append(cluster.sim.spawn(gen))
    cluster.sim.run(until=until)
    for proc in results:
        assert not proc.alive, "client operation did not finish"
    return [p.value for p in results]


class TestServer:
    def test_bulk_load_then_client_search(self):
        cluster, server, (client, _), _ = deploy()
        items = [(k, k * 10) for k in range(500)]
        assert server.bulk_load(items) == 500

        def lookups():
            for k in (0, 250, 499):
                value = yield from client.search(k)
                assert value == k * 10
            missing = yield from client.search(100_000)
            assert missing is None

        drive(cluster, [lookups()])

    def test_rejects_non_power_of_two_segments(self):
        cluster = Cluster()
        remotes = cluster.add_nodes(1)
        with pytest.raises(ValueError):
            HashTableServer(remotes, segments=6)

    def test_segments_spread_across_blades(self):
        cluster = Cluster()
        remotes = cluster.add_nodes(2)
        server = HashTableServer(remotes, segments=8)
        blades = {(addr >> 48) - 1 for addr in server.segment_addrs}
        assert blades == {remotes[0].node_id, remotes[1].node_id}


class TestClientOps:
    def test_insert_search_roundtrip(self):
        cluster, _, (client, _), _ = deploy()

        def scenario():
            ok = yield from client.insert(11, 111)
            assert ok
            value = yield from client.search(11)
            assert value == 111

        drive(cluster, [scenario()])

    def test_insert_duplicate_rejected(self):
        cluster, _, (client, _), _ = deploy()

        def scenario():
            assert (yield from client.insert(5, 50))
            assert not (yield from client.insert(5, 51))
            assert (yield from client.search(5)) == 50

        drive(cluster, [scenario()])

    def test_update_changes_value(self):
        cluster, server, (client, _), _ = deploy()
        server.bulk_load([(1, 10)])

        def scenario():
            assert (yield from client.update(1, 20))
            assert (yield from client.search(1)) == 20
            assert not (yield from client.update(404, 1))

        drive(cluster, [scenario()])

    def test_delete(self):
        cluster, server, (client, _), _ = deploy()
        server.bulk_load([(1, 10), (2, 20)])

        def scenario():
            assert (yield from client.delete(1))
            assert (yield from client.search(1)) is None
            assert (yield from client.search(2)) == 20
            assert not (yield from client.delete(1))

        drive(cluster, [scenario()])

    def test_many_inserts_all_findable(self):
        cluster, _, (client, _), _ = deploy(segments=16, buckets=64)

        def scenario():
            for k in range(300):
                assert (yield from client.insert(k, k + 7))
            for k in range(300):
                assert (yield from client.search(k)) == k + 7

        drive(cluster, [scenario()], until=5e9)

    def test_concurrent_updates_hot_key_stay_consistent(self):
        cluster, server, clients, smarts = deploy(threads=4)
        server.bulk_load([(99, 0)])

        def updater(client, value):
            ok = yield from client.update(99, value)
            return ok

        results = drive(
            cluster, [updater(c, i + 1) for i, c in enumerate(clients)], until=5e9
        )
        assert all(results)

        final = []

        def reader():
            final.append((yield from clients[0].search(99)))

        drive(cluster, [reader()], until=cluster.sim.now + 5e8)
        assert final[0] in (1, 2, 3, 4)

    def test_contended_updates_record_retries_in_baseline(self):
        cluster, server, clients, smarts = deploy(threads=8, features=baseline())
        server.bulk_load([(7, 0)])

        def updater(client, value):
            for i in range(5):
                yield from client.update(7, value * 10 + i)

        drive(
            cluster,
            [updater(c, i) for i, c in enumerate(clients)],
            until=5e9,
        )
        total_retries = sum(s.stats.retries for s in smarts)
        total_ops = sum(s.stats.ops for s in smarts)
        assert total_ops == 40
        assert total_retries > 0  # hot-key CAS conflicts really happen

    def test_lookup_costs_three_reads(self):
        """The paper: each lookup requires 3 RDMA READs."""
        cluster, server, (client, _), _ = deploy(memory_nodes=1)
        server.bulk_load([(1, 10)])
        compute = cluster.nodes[0]

        def scenario():
            yield from client.search(1)

        before = compute.device.counters.wqe_processed
        drive(cluster, [scenario()])
        assert compute.device.counters.wqe_processed - before == 3


class TestSplits:
    def test_split_preserves_all_keys(self):
        # 2 segments x 8 buckets x 7 slots ~ 112 slots; inserting 160 keys
        # must force at least one split (and a directory double).
        cluster, _, (client, _), _ = deploy(
            threads=2, memory_nodes=1, segments=2, buckets=8
        )

        def scenario():
            for k in range(160):
                assert (yield from client.insert(k, k))
            for k in range(160):
                assert (yield from client.search(k)) == k, k

        drive(cluster, [scenario()], until=1e10)
        assert client.meta.global_depth >= 2  # table actually grew


class TestRandomizedAgainstModel:
    def test_random_ops_match_dict(self):
        cluster, _, (client,), _ = deploy(threads=1, segments=16, buckets=64)
        rng = random.Random(7)
        model = {}

        def scenario():
            for _ in range(400):
                op = rng.random()
                key = rng.randrange(120)
                if op < 0.4:
                    ok = yield from client.insert(key, key * 2)
                    assert ok == (key not in model)
                    if ok:
                        model[key] = key * 2
                elif op < 0.6:
                    value = rng.randrange(1000)
                    ok = yield from client.update(key, value)
                    assert ok == (key in model)
                    if ok:
                        model[key] = value
                elif op < 0.8:
                    value = yield from client.search(key)
                    assert value == model.get(key)
                else:
                    ok = yield from client.delete(key)
                    assert ok == (key in model)
                    model.pop(key, None)
            for key, value in model.items():
                assert (yield from client.search(key)) == value

        drive(cluster, [scenario()], until=2e10)
