"""Smoke tests: every figure/table entry point runs end to end on a tiny
grid and produces well-formed rows.  (Shape assertions live in
benchmarks/; these only verify wiring, so they use minimal parameters.)"""

import pytest

from repro.bench import experiments as exp


class TestMicroExperiments:
    def test_fig3(self):
        result = exp.fig3_qp_policies(threads=(2, 4), measure_ns=0.3e6)
        assert result.headers[0] == "threads"
        assert len(result.rows) == 2
        assert "paper:" in result.format()

    def test_fig4(self):
        result = exp.fig4_cache_thrashing(threads=(4,), depths=(2, 4))
        assert len(result.rows) == 2
        assert result.rows[0][2] == 8  # total OWRs = threads * depth

    def test_fig13(self):
        result = exp.fig13_micro(threads=(4,), batches=(4,))
        assert len(result.rows) == 2  # one threads row + one batch row
        assert result.rows[0][0] == "threads"
        assert result.rows[1][0] == "batch"

    def test_table1(self):
        result = exp.table1_dynamic(intervals_ns=(2e6,), total_ns=8e6)
        assert len(result.rows) == 1
        interval_ms, ratio, off, on = result.rows[0]
        assert off > 0 and on > 0

    def test_odp(self):
        result = exp.odp_sweep(ratios=(1.0, 0.5), depths=(4,), threads=2,
                               measure_ns=0.3e6)
        assert result.headers[0] == "pinned_ratio"
        assert len(result.rows) == 2
        pinned, odp = result.rows
        assert pinned[6] == 0 and odp[6] > 0  # odp_faults column
        assert pinned[7] > 0  # seq access merges at every ratio
        assert odp[2] < pinned[2]  # faulting costs throughput

    def test_offload(self):
        result = exp.offload_sweep(skews=(0.0, 0.6), chunks=(16,),
                                   vertices=64, degree=4)
        assert result.headers[0] == "skew"
        assert len(result.rows) == 6  # 2 skews x 3 modes, one chunk
        for skew in (0.0, 0.6):
            by_mode = {row[1]: row for row in result.rows if row[0] == skew}
            # Differential invariant: one checksum across all modes.
            assert len({row[-1] for row in by_mode.values()}) == 1
            assert by_mode["onesided"][5] > 0  # wasted_iops column
            assert by_mode["offload"][5] == 0
            assert by_mode["offload"][6] > 0  # am_msgs column


class TestHashTableExperiments:
    def test_fig5(self):
        result = exp.fig5_race_contention(threads=(2,), thetas=(0.0,))
        sweeps = {row[0] for row in result.rows}
        assert sweeps == {"threads", "theta"}

    def test_fig7(self):
        result = exp.fig7_hashtable(threads=(2,), compute_blades=(2,),
                                    item_count=5_000)
        modes = {row[0] for row in result.rows}
        assert modes == {"scale-up", "scale-out"}
        # 2 quick-mode workloads x (1 thread point + 1 blade point) x 2 systems
        assert len(result.rows) == 8

    def test_fig8(self):
        result = exp.fig8_breakdown(threads=(2,), item_count=5_000)
        configs = {row[2] for row in result.rows}
        assert configs == {"baseline", "+ThdResAlloc", "+WorkReqThrot",
                           "+ConflictAvoid"}

    def test_fig9(self):
        result = exp.fig9_ht_latency(gaps_ns=(0.0,), item_count=5_000, threads=4)
        assert {row[0] for row in result.rows} == {"race", "smart-ht"}

    def test_fig14(self):
        result = exp.fig14_conflict(threads=(2,), item_count=5_000)
        assert len(result.rows) == 4
        assert result.observations  # retry-free percentages reported


class TestDtxExperiments:
    def test_fig10(self):
        result = exp.fig10_dtx(threads=(2,), item_count=2_000)
        assert {row[0] for row in result.rows} == {"smallbank", "tatp"}
        assert all(row[3] > 0 for row in result.rows)

    def test_fig11(self):
        result = exp.fig11_dtx_latency(gaps_ns=(0.0,), item_count=2_000, threads=4)
        assert all(row[4] > 0 for row in result.rows)  # p50 measured


class TestBtreeExperiments:
    def test_fig12(self):
        result = exp.fig12_btree(threads=(2,), servers=(2,), item_count=5_000)
        systems = {row[2] for row in result.rows}
        assert systems == {"sherman", "sherman-sl", "smart-bt"}


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(exp.ALL_EXPERIMENTS) == {
            "fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "table1", "fig14",
            "latency_throughput", "resharding", "chaos", "odp", "offload",
        }

    def test_grid_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert exp.full_grids()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not exp.full_grids()
        assert exp._grid((1,), (1, 2, 3)) == (1,)
