"""Property tests for the seeded graph generators.

These pin the generator invariants the differential harness leans on:
determinism under a fixed spec, structural hygiene (no self-loops or
duplicate edges, sorted adjacency), the skew knob actually skewing the
in-degree distribution, and partition-independence — a vertex's
blade-resident bytes are a pure function of the vertex, never of the
blade count it happens to be spread across.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.graph import (
    GraphSpec,
    checksum_u64s,
    edge_count,
    generate,
    in_degrees,
    rmat_quadrants,
    top_share,
    vertex_bytes,
    vertex_owner,
)

# Keep per-example graphs small; the properties are size-independent.
SPECS = st.builds(
    GraphSpec,
    name=st.just("prop"),
    vertex_count=st.integers(min_value=2, max_value=96),
    degree=st.integers(min_value=1, max_value=8),
    kind=st.sampled_from(["uniform", "rmat"]),
    skew=st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

RELAXED = settings(max_examples=40, deadline=None)


@given(spec=SPECS)
@RELAXED
def test_generation_is_deterministic(spec):
    first = generate(spec)
    second = generate(spec)
    assert first == second


@given(spec=SPECS)
@RELAXED
def test_no_self_loops_no_duplicates_sorted(spec):
    adjacency = generate(spec)
    assert len(adjacency) == spec.vertex_count
    for v, neighbors in enumerate(adjacency):
        assert v not in neighbors, f"self-loop at {v}"
        assert len(set(neighbors)) == len(neighbors), f"duplicate edge at {v}"
        assert neighbors == sorted(neighbors)
        for dst in neighbors:
            assert 0 <= dst < spec.vertex_count


@given(spec=SPECS)
@RELAXED
def test_edge_count_near_target(spec):
    adjacency = generate(spec)
    edges = edge_count(adjacency)
    target = spec.vertex_count * spec.degree
    # Dedup can only remove edges, and the simple-graph ceiling caps the
    # total; the generator never fabricates extras.
    assert 0 < edges <= min(target, spec.vertex_count * (spec.vertex_count - 1))
    assert edges == sum(in_degrees(adjacency))


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    skew=st.floats(min_value=0.55, max_value=0.9, allow_nan=False),
)
@settings(max_examples=20, deadline=None)
def test_skew_concentrates_in_degrees(seed, skew):
    """High-skew R-MAT puts a larger share of in-edges on the top
    vertices than the uniform family does for the same size/seed."""
    base = GraphSpec(name="skewed", vertex_count=128, degree=6, seed=seed)
    uniform = top_share(in_degrees(generate(base)))
    skewed = top_share(in_degrees(generate(base.with_skew(skew))))
    assert skewed > uniform


@given(
    spec=SPECS,
    blades_a=st.integers(min_value=1, max_value=6),
    blades_b=st.integers(min_value=1, max_value=6),
)
@RELAXED
def test_partition_independence(spec, blades_a, blades_b):
    """The bytes a vertex contributes to its blade never depend on the
    blade count, and ownership is a pure modulo of the vertex id."""
    adjacency = generate(spec)
    for v in range(spec.vertex_count):
        assert vertex_bytes(v, adjacency) == vertex_bytes(v, adjacency)
        assert vertex_owner(v, blades_a) == v % blades_a
        assert vertex_owner(v, blades_b) == v % blades_b
    # Same adjacency -> same canonical bytes regardless of layout.
    flat = [w for neighbors in adjacency for w in neighbors]
    assert checksum_u64s(flat) == checksum_u64s(list(flat))


def test_rmat_quadrants_degenerate_to_uniform_at_zero_skew():
    a, b, c, d = rmat_quadrants(0.0)
    assert a == pytest.approx(0.25)
    assert a + b + c + d == pytest.approx(1.0)
    a_hi, *_ = rmat_quadrants(0.8)
    assert a_hi > a


@pytest.mark.parametrize("blades", [1, 2, 3, 5])
def test_server_layout_matches_partition_contract(blades):
    """End-to-end partition-independence: loading the same graph across
    different blade counts stores identical per-vertex state."""
    from repro.apps.graph.server import GraphServer
    from repro.cluster import Cluster

    spec = GraphSpec(name="layout", vertex_count=40, degree=4,
                     kind="rmat", skew=0.5, seed=9)
    adjacency = generate(spec)
    cluster = Cluster()
    nodes = [cluster.add_node() for _ in range(blades)]
    server = GraphServer(nodes, adjacency=adjacency)
    meta = server.meta()
    for v in range(spec.vertex_count):
        ordinal = meta.owner(v)
        node = nodes[ordinal]
        base = meta.index_bases[ordinal] + 16 * meta.local(v)
        degree = node.storage.read_u64(base)
        cursor = node.storage.read_u64(base + 8)
        assert degree == len(adjacency[v])
        stored = [
            node.storage.read_u64(cursor + 8 * i) for i in range(degree)
        ]
        assert stored == adjacency[v]
    assert server.visited_count() == 0
    assert server.free_regions() > 0
