"""Tests for the unified observability layer (repro.obs)."""

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.microbench import run_microbench
from repro.cluster import Cluster
from repro.obs import Observability
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.tracing import (
    SEGMENT_LANES,
    SEGMENTS,
    SpanTracer,
    TraceRecorder,
    merge_summaries,
)
from repro.obs.validate import main as validate_main, validate_chrome_trace
from repro.rnic import verbs
from repro.rnic.policies import PerThreadQpPolicy
from repro.rnic.qp import read_wr
from repro.rnic.trace import STAGES


class TestLogHistogram:
    def test_percentile_accuracy(self):
        hist = LogHistogram()
        for value in range(1, 10_001):
            hist.record(float(value))
        # Log-bucketed: within the documented ~2.2% relative error.
        assert hist.percentile(0.50) == pytest.approx(5000, rel=0.03)
        assert hist.percentile(0.99) == pytest.approx(9900, rel=0.03)
        assert hist.count == 10_000
        assert hist.min == 1.0 and hist.max == 10_000.0

    def test_extrema_not_quantized(self):
        hist = LogHistogram()
        hist.record(1000.0)
        assert hist.percentile(0.0) == 1000.0
        assert hist.percentile(1.0) == 1000.0

    def test_empty(self):
        assert LogHistogram().percentile(0.5) is None
        assert LogHistogram().mean == 0.0

    def test_merge_is_exact(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (10.0, 20.0, 30.0):
            a.record(v)
        for v in (40.0, 50.0):
            b.record(v, weight=2)
        a.merge(b)
        assert a.count == 7
        assert a.total == 60.0 + 180.0
        assert a.min == 10.0 and a.max == 50.0
        combined = LogHistogram()
        for v in (10.0, 20.0, 30.0, 40.0, 40.0, 50.0, 50.0):
            combined.record(v)
        assert a.buckets == combined.buckets

    def test_merge_resolution_mismatch(self):
        with pytest.raises(ValueError):
            LogHistogram(16).merge(LogHistogram(8))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            LogHistogram(0)
        with pytest.raises(ValueError):
            LogHistogram().record(-1.0)
        with pytest.raises(ValueError):
            LogHistogram().record(1.0, weight=0)
        with pytest.raises(ValueError):
            LogHistogram().percentile(1.5)

    def test_dict_roundtrip(self):
        hist = LogHistogram()
        for v in (5.0, 500.0, 50_000.0):
            hist.record(v)
        clone = LogHistogram.from_dict(hist.to_dict())
        assert clone.buckets == hist.buckets
        assert clone.count == hist.count
        assert clone.percentile(0.5) == hist.percentile(0.5)


class TestMetricsRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        c = registry.counter("a.b")
        c.inc(3)
        assert registry.counter("a.b") is c
        assert registry.counter("a.b").value == 3.0
        g = registry.gauge("a.g", unit="ns")
        g.set(7)
        assert registry.gauge("a.g").value == 7.0
        assert registry.histogram("a.h") is registry.histogram("a.h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_counter_monotonic(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_adopt_histogram_merges(self):
        registry = MetricsRegistry()
        first, second = LogHistogram(), LogHistogram()
        first.record(10.0)
        second.record(20.0)
        registry.adopt_histogram("lat", first)
        registry.adopt_histogram("lat", second)
        assert registry.histogram("lat").count == 2

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ops", unit="1").inc(5)
        registry.gauge("depth").set(8)
        registry.histogram("lat").record(100.0)
        path = registry.write_json(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["counters"]["ops"]["value"] == 5.0
        assert data["gauges"]["depth"]["value"] == 8.0
        assert data["histograms"]["lat"]["count"] == 1

    def test_gauge_set(self):
        g = Gauge("g")
        g.set(4.5)
        assert g.value == 4.5


class TestTraceRecorder:
    def test_span_and_instant(self):
        rec = TraceRecorder()
        rec.span("dev", "lane", "work", 100, 250, {"k": 1})
        rec.instant("dev", "lane", "blip", 300)
        assert len(rec) == 2
        (span,) = rec.spans("work")
        assert span.ts == 100 and span.dur == 150 and span.args == {"k": 1}
        (inst,) = rec.instants("blip")
        assert inst.ts == 300
        assert rec.tracks() == [("dev", "lane")]

    def test_negative_span_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder().span("d", "l", "n", 100, 50)
        with pytest.raises(ValueError):
            TraceRecorder(0)

    def test_ring_eviction_counts_drops(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.instant("d", "l", "e", i)
        assert len(rec) == 3
        assert rec.dropped == 2
        # Oldest evicted first.
        assert [e.ts for e in rec.events()] == [2, 3, 4]


class TestSpanTracer:
    def _complete_batch(self, tracer, batch_id, base=0):
        for offset, stage in enumerate(STAGES):
            tracer.record(batch_id, stage, base + offset * 10)

    def test_emits_segments_and_batch_span(self):
        rec = TraceRecorder()
        tracer = SpanTracer(rec, "rnic0")
        self._complete_batch(tracer, 7, base=100)
        for name, start_stage, end_stage in SEGMENTS:
            (span,) = rec.spans(name)
            assert span.track == "rnic0"
            assert span.lane == SEGMENT_LANES[name]
            assert span.dur == 10
            assert span.args["batch"] == 7
        (batch_span,) = rec.spans("batch")
        assert batch_span.dur == 40
        # Every raw stage timestamp rides in the batch span's args.
        for stage in STAGES:
            assert stage in batch_span.args

    def test_incomplete_batch_emits_nothing(self):
        rec = TraceRecorder()
        tracer = SpanTracer(rec, "rnic0")
        tracer.record(1, "posted", 0)
        tracer.record(1, "issued", 5)
        assert len(rec) == 0
        # A completed stage on a pre-tracer batch is also silent.
        tracer.record(99, "completed", 50)
        assert len(rec) == 0

    def test_keeps_base_tracer_behaviour(self):
        rec = TraceRecorder()
        tracer = SpanTracer(rec, "rnic0", capacity=2)
        for batch_id in range(4):
            tracer.record(batch_id, "posted", batch_id)
        assert tracer.dropped == 2
        self._complete_batch(SpanTracer(rec, "x"), 10)
        summary = SpanTracer(rec, "y").summary()
        assert summary is None


class TestMergeSummaries:
    def test_batch_weighted_mean(self):
        a = {"batches": 1.0, "post_to_issue": 10.0, "issue_to_remote": 0.0,
             "remote_queue_and_exec": 0.0, "return_flight": 0.0, "total": 10.0}
        b = {"batches": 3.0, "post_to_issue": 30.0, "issue_to_remote": 0.0,
             "remote_queue_and_exec": 0.0, "return_flight": 0.0, "total": 30.0}
        merged = merge_summaries([a, b])
        assert merged["batches"] == 4.0
        assert merged["post_to_issue"] == pytest.approx(25.0)
        assert merged["total"] == pytest.approx(25.0)

    def test_skips_empty(self):
        assert merge_summaries([None, None]) is None


class TestChromeExport:
    def test_event_shape(self):
        rec = TraceRecorder()
        rec.span("dev", "lane", "work", 1000, 3000, {"k": 1})
        rec.instant("dev", "other", "blip", 2000)
        trace = chrome_trace(rec, metadata={"run": "t"})
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        span = next(e for e in events if e.get("ph") == "X")
        assert span["ts"] == 1.0 and span["dur"] == 2.0  # ns -> us
        inst = next(e for e in events if e.get("ph") == "i")
        assert inst["s"] == "t"
        names = [e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "process_name"]
        assert names == ["dev"]
        lanes = [e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"]
        assert sorted(lanes) == ["lane", "other"]
        assert trace["otherData"]["run"] == "t"

    def test_write_and_validate_cli(self, tmp_path):
        rec = TraceRecorder()
        rec.span("dev", "lane", "work", 0, 10)
        rec.instant("dev", "lane", "blip", 5)
        path = write_chrome_trace(rec, tmp_path / "trace.json")
        assert validate_main([str(path), "--expect-spans", "work",
                              "--expect-instants", "blip"]) == 0
        assert validate_main([str(path), "--expect-spans", "missing"]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_main([str(bad)]) == 1
        bad.write_text("not json")
        assert validate_main([str(bad)]) == 1

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "x"}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "?", "name": "n", "pid": 1, "tid": 1}]}
        ) != []
        assert validate_chrome_trace(
            {"traceEvents": [
                {"ph": "X", "name": "n", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
            ]}
        ) != []


def _traced_read_cluster(obs, threads=2, reads=5):
    cluster = Cluster()
    compute = cluster.add_node()
    compute.add_threads(threads)
    (remote,) = cluster.add_nodes(1)
    PerThreadQpPolicy().connect(compute, [remote])
    obs.attach_cluster(cluster)

    def proc(thread):
        qp = thread.qp_for(remote.node_id)
        addr = remote.storage.global_addr(0)
        for _ in range(reads):
            yield from verbs.post_and_wait(thread, qp, [read_wr(addr, 8)])

    for thread in compute.threads:
        cluster.sim.spawn(proc(thread))
    cluster.sim.run()
    return cluster


class TestObservability:
    def test_attach_traces_all_lifecycle_stages(self):
        obs = Observability()
        _traced_read_cluster(obs)
        span_names = {e.name for e in obs.recorder.spans()}
        for segment, _, _ in SEGMENTS:
            assert segment in span_names
        assert "batch" in span_names
        batch_span = obs.recorder.spans("batch")[0]
        for stage in STAGES:
            assert stage in batch_span.args

    def test_collect_cluster_metrics(self):
        obs = Observability()
        cluster = _traced_read_cluster(obs)
        obs.collect_cluster(cluster, window_ns=cluster.sim.now)
        data = obs.registry.to_dict()
        assert data["counters"]["rnic0.wqe_processed"]["value"] == 10.0
        assert data["counters"]["fabric.messages"]["value"] > 0
        assert data["counters"]["sim.events_executed"]["value"] > 0
        assert "rnic0.requester_utilization" in data["gauges"]

    def test_phase_and_breakdown(self, tmp_path):
        obs = Observability()
        cluster = _traced_read_cluster(obs)
        obs.phase("measure", 0, cluster.sim.now)
        breakdown = obs.phase_breakdown(cluster)
        assert breakdown["batches"] == 10.0
        parts = sum(breakdown[name] for name, _, _ in SEGMENTS)
        assert parts == pytest.approx(breakdown["total"], rel=1e-6)
        obs.write(trace_path=tmp_path / "t.json", metrics_path=tmp_path / "m.json")
        trace = json.loads((tmp_path / "t.json").read_text())
        assert validate_chrome_trace(trace, expect_spans=["measure", "batch"]) == []

    def test_existing_tracer_kept(self):
        from repro.rnic.trace import Tracer

        cluster = Cluster()
        node = cluster.add_node()
        mine = Tracer()
        node.device.tracer = mine
        Observability().attach_cluster(cluster)
        assert node.device.tracer is mine


class TestBenchIntegration:
    POINT = dict(policy="per-thread-qp", threads=4, depth=2,
                 warmup_ns=0.1e6, measure_ns=0.2e6)

    def test_results_identical_with_and_without_obs(self):
        plain = run_microbench(**self.POINT)
        obs = Observability()
        traced = run_microbench(**self.POINT, obs=obs)
        assert traced.throughput_mops == plain.throughput_mops
        assert traced.measured_wrs == plain.measured_wrs
        assert traced.dram_bytes_per_wr == plain.dram_bytes_per_wr
        assert plain.phase_breakdown is None
        assert traced.phase_breakdown is not None
        assert len(obs.recorder) > 0

    def test_faulted_run_emits_instants(self):
        obs = Observability()
        run_microbench(
            policy="per-thread-qp", threads=4, depth=2,
            warmup_ns=0.1e6, measure_ns=0.4e6,
            faults="loss=0.2@0.1ms+0.3ms", fault_seed=3, obs=obs,
        )
        assert len(obs.recorder.instants("retransmit")) > 0
        assert len(obs.recorder.instants("message_dropped")) > 0

    def test_cli_writes_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = cli_main([
            "4", "2", "--policy", "per-thread-qp", "--measure-us", "200",
            "--trace", str(trace_path), "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "batch lifecycle breakdown" in out
        assert "post_to_issue" in out
        trace = json.loads(trace_path.read_text())
        expected = [name for name, _, _ in SEGMENTS] + ["batch"]
        assert validate_chrome_trace(trace, expect_spans=expected) == []
        metrics = json.loads(metrics_path.read_text())
        assert "rnic0.wqe_processed" in metrics["counters"]

    def test_cli_rejects_trace_with_figure(self, capsys):
        assert cli_main(["--figure", "fig3", "--trace", "t.json"]) == 2


class TestExperimentTelemetry:
    def test_telemetry_key_only_when_present(self):
        from repro.bench.experiments import ExperimentResult

        result = ExperimentResult("n", ["h"], [[1]], "claim")
        assert "telemetry" not in result.to_dict()
        result.telemetry = {"phase_breakdown": {
            "batches": 2.0, "post_to_issue": 1.0, "issue_to_remote": 2.0,
            "remote_queue_and_exec": 3.0, "return_flight": 4.0, "total": 10.0,
        }}
        assert result.to_dict()["telemetry"] == result.telemetry
        text = result.format()
        assert "batch lifecycle breakdown" in text
        assert "post_to_issue" in text
