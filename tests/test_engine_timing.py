"""Timing-model tests for the RNIC pipelines and the thread CPU model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.rnic import verbs
from repro.rnic.config import RnicConfig
from repro.rnic.policies import PerThreadQpPolicy
from repro.rnic.qp import read_wr, write_wr


def make_cluster(threads=1, config=None):
    cluster = Cluster(config)
    compute = cluster.add_node()
    compute.add_threads(threads)
    (remote,) = cluster.add_nodes(1)
    PerThreadQpPolicy().connect(compute, [remote])
    return cluster, compute, remote


class TestRequesterThroughputCeilings:
    def _measure(self, payload, config=None, threads=8, depth=16, window=1.0e6):
        cluster, compute, remote = make_cluster(threads, config)
        region = remote.storage.alloc_region("r", 1 << 20)

        def worker(thread):
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(region.base)
            while True:
                wrs = [read_wr(addr, payload) for _ in range(depth)]
                yield from verbs.post_and_wait(thread, qp, wrs)

        for thread in compute.threads:
            cluster.sim.spawn(worker(thread))
        cluster.sim.run(until=0.3e6)
        snap = compute.device.counters.snapshot()
        cluster.sim.run(until=0.3e6 + window)
        return compute.device.counters.delta(snap).cqe_delivered / window * 1e3

    def test_small_ops_iops_bound(self):
        config = RnicConfig(max_iops=25e6)
        mops = self._measure(8, config, threads=16, depth=32)
        assert 22 < mops <= 25.5

    def test_large_ops_bandwidth_bound(self):
        # 1 KB reads: PCIe 3.0 (16 B/ns) divided by ~1054 wire bytes
        # gives ~15.2 MOPS regardless of the IOPS ceiling.
        mops = self._measure(1024)
        assert 12 < mops < 16

    def test_iops_scale_with_config(self):
        slow = self._measure(8, RnicConfig(max_iops=10e6))
        fast = self._measure(8, RnicConfig(max_iops=20e6))
        assert fast == pytest.approx(2 * slow, rel=0.15)


class TestLatencyComposition:
    def test_read_latency_includes_both_directions(self):
        config = RnicConfig(one_way_latency_ns=5000.0)
        cluster, compute, remote = make_cluster(1, config)
        thread = compute.threads[0]
        out = []

        def proc():
            qp = thread.qp_for(remote.node_id)
            start = cluster.sim.now
            yield from verbs.post_and_wait(
                thread, qp, [read_wr(remote.storage.global_addr(0), 8)]
            )
            out.append(cluster.sim.now - start)

        cluster.sim.spawn(proc())
        cluster.sim.run()
        assert 10_000 <= out[0] < 12_000

    def test_pipelined_batches_overlap_rtt(self):
        """Two posted batches overlap their flight time (pipelining)."""
        cluster, compute, remote = make_cluster(1)
        thread = compute.threads[0]
        out = []

        def proc():
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(0)
            start = cluster.sim.now
            batch1 = yield from verbs.post_send(thread, qp, [read_wr(addr, 8)])
            batch2 = yield from verbs.post_send(thread, qp, [read_wr(addr, 8)])
            yield from verbs.wait_completion(thread, batch1)
            yield from verbs.wait_completion(thread, batch2)
            out.append(cluster.sim.now - start)

        cluster.sim.spawn(proc())
        cluster.sim.run()
        rtt = 2 * cluster.config.one_way_latency_ns
        assert out[0] < 1.5 * rtt  # far less than two serial RTTs


class TestResponderModel:
    def test_responder_serializes_under_load(self):
        config = RnicConfig(responder_iops=5e6)  # 200 ns per op
        cluster, compute, remote = make_cluster(4, config)
        region = remote.storage.alloc_region("r", 1 << 16)

        def worker(thread):
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(region.base)
            while True:
                yield from verbs.post_and_wait(
                    thread, qp, [read_wr(addr, 8) for _ in range(8)]
                )

        for thread in compute.threads:
            cluster.sim.spawn(worker(thread))
        cluster.sim.run(until=0.2e6)
        snap = remote.device.counters.snapshot()
        cluster.sim.run(until=1.2e6)
        served = remote.device.counters.delta(snap).responder_ops
        assert served / 1e6 * 1e3 <= 5.2  # responder ceiling respected

    def test_nvm_penalty_applied_per_write(self):
        config = RnicConfig(nvm_write_extra_ns=10_000.0)
        cluster, compute, remote = make_cluster(1, config)
        nvm = remote.storage.alloc_region("nvm", 4096, persistent=True)
        thread = compute.threads[0]
        out = []

        def proc():
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(nvm.base)
            start = cluster.sim.now
            yield from verbs.post_and_wait(thread, qp, [write_wr(addr, b"x" * 8)])
            out.append(cluster.sim.now - start)

        cluster.sim.spawn(proc())
        cluster.sim.run()
        assert out[0] >= 10_000 + 2 * cluster.config.one_way_latency_ns


class TestFabricAccounting:
    def test_fabric_counts_messages_and_bytes(self):
        cluster, compute, remote = make_cluster(1)
        thread = compute.threads[0]

        def proc():
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(0)
            yield from verbs.post_and_wait(thread, qp, [read_wr(addr, 128)])

        cluster.sim.spawn(proc())
        cluster.sim.run()
        assert cluster.fabric.messages == 2  # request + response
        assert cluster.fabric.bytes_carried == 2 * (128 + 30)


class TestThreadCpuModel:
    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_compute_serializes_exactly(self, durations):
        """N coroutines charging CPU on one thread finish at sum(durations)."""
        cluster, compute, _ = make_cluster(1)
        thread = compute.threads[0]
        finished = []

        def chunk(ns):
            yield from thread.compute(ns)
            finished.append(cluster.sim.now)

        for ns in durations:
            cluster.sim.spawn(chunk(ns))
        cluster.sim.run()
        assert max(finished) == sum(durations)

    def test_compute_rejects_negative(self):
        cluster, compute, _ = make_cluster(1)
        with pytest.raises(ValueError):
            list(compute.threads[0].compute(-1))


class TestUtilizationCounters:
    def test_saturated_requester_near_full_utilization(self):
        config = RnicConfig(max_iops=5e6)  # easy to saturate
        cluster, compute, remote = make_cluster(8, config)
        region = remote.storage.alloc_region("r", 1 << 16)

        def worker(thread):
            qp = thread.qp_for(remote.node_id)
            addr = remote.storage.global_addr(region.base)
            while True:
                yield from verbs.post_and_wait(
                    thread, qp, [read_wr(addr, 8) for _ in range(16)]
                )

        for thread in compute.threads:
            cluster.sim.spawn(worker(thread))
        cluster.sim.run(until=0.2e6)
        snap = compute.device.counters.snapshot()
        cluster.sim.run(until=1.2e6)
        delta = compute.device.counters.delta(snap)
        assert delta.requester_utilization(1.0e6) > 0.9

    def test_idle_device_zero_utilization(self):
        cluster, compute, remote = make_cluster(1)
        cluster.sim.run(until=1e6)
        assert compute.device.counters.requester_utilization(1e6) == 0.0
        assert compute.device.counters.responder_utilization(1e6) == 0.0
