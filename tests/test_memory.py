"""Tests for the memory-blade substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryBlade, blade_of, make_addr, offset_of
from repro.memory.address import NULL_ADDR


class TestAddress:
    def test_roundtrip(self):
        addr = make_addr(3, 0x1234)
        assert blade_of(addr) == 3
        assert offset_of(addr) == 0x1234

    def test_never_null(self):
        assert make_addr(0, 0) != NULL_ADDR

    @given(st.integers(0, 2**15 - 1), st.integers(0, 2**48 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, blade, offset):
        addr = make_addr(blade, offset)
        assert blade_of(addr) == blade
        assert offset_of(addr) == offset
        assert addr != NULL_ADDR

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_addr(-1, 0)
        with pytest.raises(ValueError):
            make_addr(1 << 15, 0)
        with pytest.raises(ValueError):
            make_addr(0, 1 << 48)
        with pytest.raises(ValueError):
            blade_of(NULL_ADDR)
        with pytest.raises(ValueError):
            offset_of(NULL_ADDR)


class TestRegions:
    def test_alloc_region_cacheline_aligned(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        region = blade.alloc_region("a", 100)
        assert region.base % 64 == 0
        assert region.size == 100

    def test_regions_do_not_overlap(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        a = blade.alloc_region("a", 1000)
        b = blade.alloc_region("b", 1000)
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        blade.alloc_region("a", 10)
        with pytest.raises(ValueError):
            blade.alloc_region("a", 10)

    def test_out_of_memory(self):
        blade = MemoryBlade(0, capacity=1024)
        with pytest.raises(MemoryError):
            blade.alloc_region("big", 4096)

    def test_persistence_flag(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        dram = blade.alloc_region("dram", 128)
        nvm = blade.alloc_region("nvm", 128, persistent=True)
        assert not blade.is_persistent(dram.base)
        assert blade.is_persistent(nvm.base)
        assert blade.is_persistent(nvm.end - 1)

    def test_region_contains(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        region = blade.alloc_region("r", 64)
        assert region.contains(region.base, 64)
        assert not region.contains(region.base, 65)
        assert not region.contains(region.base - 1)


class TestDataOps:
    def test_read_write_roundtrip(self):
        blade = MemoryBlade(0)
        blade.write(100, b"hello")
        assert blade.read(100, 5) == b"hello"

    def test_u64_roundtrip(self):
        blade = MemoryBlade(0)
        blade.write_u64(64, 0xDEADBEEF)
        assert blade.read_u64(64) == 0xDEADBEEF

    def test_cas_success_and_failure(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 5)
        assert blade.compare_and_swap(8, 5, 9) == 5
        assert blade.read_u64(8) == 9
        assert blade.compare_and_swap(8, 5, 11) == 9  # fails, returns old
        assert blade.read_u64(8) == 9
        assert blade.failed_cas == 1

    def test_faa(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 10)
        assert blade.fetch_and_add(8, 7) == 10
        assert blade.read_u64(8) == 17

    def test_faa_wraps_at_64_bits(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, (1 << 64) - 1)
        assert blade.fetch_and_add(8, 2) == (1 << 64) - 1
        assert blade.read_u64(8) == 1

    def test_bounds_checked(self):
        blade = MemoryBlade(0, capacity=128)
        with pytest.raises(IndexError):
            blade.read(120, 16)
        with pytest.raises(IndexError):
            blade.write(-1, b"x")

    def test_bulk_write_skips_stats(self):
        blade = MemoryBlade(0)
        blade.bulk_write(0, b"setup")
        assert blade.writes == 0
        assert blade.read(0, 5) == b"setup"

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_cas_atomicity_property(self, initial, expected, desired):
        blade = MemoryBlade(0)
        blade.write_u64(0, initial)
        old = blade.compare_and_swap(0, expected, desired)
        assert old == initial
        if initial == expected:
            assert blade.read_u64(0) == desired % (1 << 64)
        else:
            assert blade.read_u64(0) == initial
