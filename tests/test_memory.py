"""Tests for the memory-blade substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryBlade, blade_of, make_addr, offset_of
from repro.memory.address import MAX_BLADE_ID, NULL_ADDR, OFFSET_MASK


class TestAddress:
    def test_roundtrip(self):
        addr = make_addr(3, 0x1234)
        assert blade_of(addr) == 3
        assert offset_of(addr) == 0x1234

    def test_never_null(self):
        assert make_addr(0, 0) != NULL_ADDR

    def test_roundtrip_at_both_bounds(self):
        # The docstring promises 16 bits of blade id; the +1 null bias
        # costs one value, so the extremes are 0 and 2**16 - 2.
        assert MAX_BLADE_ID == (1 << 16) - 2
        for blade in (0, MAX_BLADE_ID):
            for offset in (0, OFFSET_MASK):
                addr = make_addr(blade, offset)
                assert blade_of(addr) == blade
                assert offset_of(addr) == offset
                assert addr != NULL_ADDR
        # The top encoding still fits 64 bits.
        assert make_addr(MAX_BLADE_ID, OFFSET_MASK) < (1 << 64)

    @given(st.integers(0, 2**16 - 2), st.integers(0, 2**48 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, blade, offset):
        addr = make_addr(blade, offset)
        assert blade_of(addr) == blade
        assert offset_of(addr) == offset
        assert addr != NULL_ADDR

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_addr(-1, 0)
        with pytest.raises(ValueError):
            make_addr(MAX_BLADE_ID + 1, 0)
        with pytest.raises(ValueError):
            make_addr(0, 1 << 48)
        with pytest.raises(ValueError):
            blade_of(NULL_ADDR)
        with pytest.raises(ValueError):
            offset_of(NULL_ADDR)


class TestRegions:
    def test_alloc_region_cacheline_aligned(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        region = blade.alloc_region("a", 100)
        assert region.base % 64 == 0
        assert region.size == 100

    def test_regions_do_not_overlap(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        a = blade.alloc_region("a", 1000)
        b = blade.alloc_region("b", 1000)
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        blade.alloc_region("a", 10)
        with pytest.raises(ValueError):
            blade.alloc_region("a", 10)

    def test_out_of_memory(self):
        blade = MemoryBlade(0, capacity=1024)
        with pytest.raises(MemoryError):
            blade.alloc_region("big", 4096)

    def test_oom_message_reports_true_free_space(self):
        # Regression: the bump-pointer arena reported capacity - aligned,
        # which went negative once the aligned base passed capacity.
        blade = MemoryBlade(0, capacity=1024)
        blade.alloc_region("fill", 1024 - 64)  # ends exactly at capacity
        with pytest.raises(MemoryError) as exc:
            blade.alloc_region("more", 128)
        message = str(exc.value)
        assert "-" not in message.split("blade 0:")[1]
        assert f"{blade.allocator.free_bytes} free" in message

    def test_allocation_landing_exactly_at_capacity(self):
        blade = MemoryBlade(0, capacity=1024)
        region = blade.alloc_region("exact", 1024 - 64)
        assert region.base == 64
        assert region.end == 1024
        blade.write(region.end - 8, b"12345678")  # last byte usable
        with pytest.raises(MemoryError):
            blade.alloc_region("one_more", 1)

    def test_free_region_reuses_space(self):
        blade = MemoryBlade(0, capacity=4096)
        a = blade.alloc_region("a", 512)
        blade.write(a.base, b"\xff" * 512)
        blade.free_region("a")
        # Freed space is scrubbed and immediately reusable at the same
        # spot (first-fit, address-ordered).
        b = blade.alloc_region("b", 512)
        assert b.base == a.base
        assert blade.read(b.base, 512) == bytes(512)
        with pytest.raises(KeyError):
            blade.free_region("a")

    def test_persistence_flag(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        dram = blade.alloc_region("dram", 128)
        nvm = blade.alloc_region("nvm", 128, persistent=True)
        assert not blade.is_persistent(dram.base)
        assert blade.is_persistent(nvm.base)
        assert blade.is_persistent(nvm.end - 1)

    def test_region_contains(self):
        blade = MemoryBlade(0, capacity=1 << 20)
        region = blade.alloc_region("r", 64)
        assert region.contains(region.base, 64)
        assert not region.contains(region.base, 65)
        assert not region.contains(region.base - 1)

    def test_zero_size_not_contained_at_region_end(self):
        # Regression: contains(end, 0) used to pass (base <= end and
        # end + 0 <= end), letting zero-byte "accesses" through at the
        # one-past-end address.
        blade = MemoryBlade(0, capacity=1 << 20)
        region = blade.alloc_region("r", 64)
        assert not region.contains(region.end, 0)
        assert not region.contains(region.base, 0)
        assert not region.contains(region.base, -8)
        assert blade.find_region(region.end, 0) is None
        assert blade.find_region(region.base, 64) is region

    def test_data_ops_reject_non_positive_size(self):
        blade = MemoryBlade(0, capacity=1024)
        with pytest.raises(IndexError):
            blade.read(0, 0)
        with pytest.raises(IndexError):
            blade.read(64, -8)
        with pytest.raises(IndexError):
            blade.write(64, b"")


class TestDataOps:
    def test_read_write_roundtrip(self):
        blade = MemoryBlade(0)
        blade.write(100, b"hello")
        assert blade.read(100, 5) == b"hello"

    def test_u64_roundtrip(self):
        blade = MemoryBlade(0)
        blade.write_u64(64, 0xDEADBEEF)
        assert blade.read_u64(64) == 0xDEADBEEF

    def test_cas_success_and_failure(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 5)
        assert blade.compare_and_swap(8, 5, 9) == 5
        assert blade.read_u64(8) == 9
        assert blade.compare_and_swap(8, 5, 11) == 9  # fails, returns old
        assert blade.read_u64(8) == 9
        assert blade.failed_cas == 1

    def test_faa(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 10)
        assert blade.fetch_and_add(8, 7) == 10
        assert blade.read_u64(8) == 17

    def test_faa_wraps_at_64_bits(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, (1 << 64) - 1)
        assert blade.fetch_and_add(8, 2) == (1 << 64) - 1
        assert blade.read_u64(8) == 1

    def test_faa_negative_delta_wraps(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 1)
        assert blade.fetch_and_add(8, -3) == 1
        assert blade.read_u64(8) == (1 << 64) - 2

    def test_cas_masks_desired_to_64_bits(self):
        blade = MemoryBlade(0)
        blade.write_u64(8, 5)
        # A desired value past 2**64 must be stored masked, not raise.
        assert blade.compare_and_swap(8, 5, (1 << 64) + 7) == 5
        assert blade.read_u64(8) == 7

    def test_power_fail_with_adjacent_persistent_regions(self):
        # Two NVM regions that sit back-to-back (after 64 B alignment
        # they are contiguous): the zeroing sweep must not wipe the
        # second region or the gap logic between them.
        blade = MemoryBlade(0, capacity=4096)
        first = blade.alloc_region("nvm1", 64, persistent=True)
        second = blade.alloc_region("nvm2", 64, persistent=True)
        assert first.end == second.base  # genuinely adjacent
        tail = blade.alloc_region("dram", 64)
        blade.write(first.base, b"\x11" * 64)
        blade.write(second.base, b"\x22" * 64)
        blade.write(tail.base, b"\x33" * 64)
        blade.power_fail()
        assert blade.read(first.base, 64) == b"\x11" * 64
        assert blade.read(second.base, 64) == b"\x22" * 64
        assert blade.read(tail.base, 64) == bytes(64)
        assert blade.power_failures == 1

    def test_bounds_checked(self):
        blade = MemoryBlade(0, capacity=128)
        with pytest.raises(IndexError):
            blade.read(120, 16)
        with pytest.raises(IndexError):
            blade.write(-1, b"x")

    def test_bulk_write_skips_stats(self):
        blade = MemoryBlade(0)
        blade.bulk_write(0, b"setup")
        assert blade.writes == 0
        assert blade.read(0, 5) == b"setup"

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_cas_atomicity_property(self, initial, expected, desired):
        blade = MemoryBlade(0)
        blade.write_u64(0, initial)
        old = blade.compare_and_swap(0, expected, desired)
        assert old == initial
        if initial == expected:
            assert blade.read_u64(0) == desired % (1 << 64)
        else:
            assert blade.read_u64(0) == initial
