"""Determinism guarantees of the optimized kernel.

The kernel hot-path rework (direct callback scheduling, the ``Delay``
fast path, the memoized cache models) must not change *what* happens,
only how fast the host executes it.  These tests pin the observable
contract: a composite scenario built from the ``test_sim_core``
primitives replays with an exact, hard-coded event ordering, and two
identically-seeded runs of the RNIC datapath produce identical traces.
"""

import random

import pytest

from repro.sim import Simulator

#: The exact (time, tag) trace of :func:`_composite_scenario`, fixed by
#: the kernel's ordering rules: events at the same instant run in
#: scheduling order; a subscriber of an already-triggered waitable is
#: delivered on the next tick at the current time.
EXPECTED_TRACE = [
    (0, "spawn-b"),           # spawned first -> resumed first
    (0, "spawn-a"),
    (2, "call_at-2"),
    (3, "call_after-3"),      # scheduled at t=0, before the timeouts fire
    (3, "b-woke"),            # b's timeout was created before a's
    (3, "a-woke"),
    (3, "fired-received"),    # subscription delivered same instant as fire
    (5, "a-delay"),           # Delay resume scheduled before b's timeout
    (5, "b-timeout"),
    (5, "join"),
]


def _composite_scenario():
    sim = Simulator()
    trace = []
    fired = sim.event()

    def proc_a(done):
        trace.append((sim.now, "spawn-a"))
        yield sim.timeout(3)
        trace.append((sim.now, "a-woke"))
        fired.fire("payload")
        yield sim.delay(2)
        trace.append((sim.now, "a-delay"))
        yield done
        trace.append((sim.now, "join"))

    def proc_b():
        trace.append((sim.now, "spawn-b"))
        yield sim.timeout(3)
        trace.append((sim.now, "b-woke"))
        value = yield fired  # already triggered by proc_a at t=3
        trace.append((sim.now, f"fired-{value and 'received'}"))
        yield sim.timeout(2)
        trace.append((sim.now, "b-timeout"))
        return "b-done"

    b = sim.spawn(proc_b())
    sim.spawn(proc_a(b))
    sim.call_at(2, trace.append, (2, "call_at-2"))
    sim.call_after(3, lambda: trace.append((sim.now, "call_after-3")))
    sim.run()
    return trace, sim.events_executed


def test_composite_scenario_exact_ordering():
    trace, _events = _composite_scenario()
    assert trace == EXPECTED_TRACE


def test_composite_scenario_replays_identically():
    first_trace, first_events = _composite_scenario()
    second_trace, second_events = _composite_scenario()
    assert first_trace == second_trace
    assert first_events == second_events


def test_same_instant_fifo_with_mixed_scheduling_apis():
    """call_at with and without a value and Timeouts interleave FIFO."""
    sim = Simulator()
    log = []
    sim.call_at(1, log.append, "value-form")
    sim.call_at(1, lambda: log.append("noarg-form"))

    def proc():
        yield sim.timeout(1)
        log.append("process")

    sim.spawn(proc())
    sim.run()
    assert log == ["value-form", "noarg-form", "process"]


def _seeded_datapath_run(seed):
    """A small seeded microbench; returns every observable outcome."""
    from repro.bench.microbench import run_microbench

    result = run_microbench(
        policy="per-thread-db", threads=8, depth=4,
        warmup_ns=0.2e6, measure_ns=0.4e6, seed=seed,
    )
    return (
        result.throughput_mops,
        result.dram_bytes_per_wr,
        result.measured_wrs,
    )


def test_seeded_datapath_bitwise_replay():
    runs = [_seeded_datapath_run(seed=5) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]


def _instrumented_chaos_run():
    """A faulty + traced + sanitized run; returns every observable artifact.

    This is the worst-case determinism test: fault injection consumes
    seeded randomness, tracing observes the run passively, and RDMASan
    shadows every remote access.  None of them may perturb the simulated
    outcome, and all of their own outputs must replay exactly.
    """
    from repro.bench.microbench import run_microbench
    from repro.obs import Observability, chrome_trace

    obs = Observability()
    result = run_microbench(
        policy="per-thread-db", threads=8, depth=4,
        warmup_ns=0.2e6, measure_ns=0.6e6, seed=5,
        faults="loss=0.05@0.3ms+0.3ms", fault_seed=11,
        obs=obs, sanitize=True,
    )
    return (
        (result.throughput_mops, result.dram_bytes_per_wr,
         result.messages_dropped, result.retransmissions, result.wasted_wrs),
        result.sanitizer,
        obs.registry.to_dict(),
        chrome_trace(obs.recorder),
    )


def test_chaos_traced_sanitized_run_replays_bit_identically():
    first = _instrumented_chaos_run()
    second = _instrumented_chaos_run()
    assert first[0] == second[0]  # simulated outcomes
    assert first[1] == second[1]  # sanitizer report
    assert first[2] == second[2]  # metrics registry snapshot
    assert first[3] == second[3]  # full chrome trace
    # The faults actually fired (the run exercised the chaos path).
    assert first[0][2] > 0


def test_heap_order_survives_heavy_same_instant_load():
    """Thousands of same-instant events keep strict scheduling order."""
    sim = Simulator()
    log = []
    order = list(range(2000))
    random.Random(3).shuffle(order)  # schedule values in scrambled order
    for value in order:
        sim.call_at(10, log.append, value)
    sim.run()
    assert log == order

# -- graph differential harness (three execution modes, one answer) -----------

# Eight fixed seeds spread across skews: each seed must produce
# *bit-equal* BFS levels and PageRank ranks in every execution mode.
GRAPH_SEEDS = (
    (0, 0.0), (1, 0.0), (2, 0.3), (3, 0.3),
    (4, 0.6), (5, 0.6), (6, 0.8), (7, 0.8),
)


def _graph_run(mode, algo, seed, skew, **overrides):
    from repro.bench.graph_runner import run_graph

    kw = dict(
        mode=mode, algo=algo, vertices=64, degree=4, skew=skew,
        threads=2, coroutines=2, memory_blades=2, chunk=16,
        rounds=2, seed=seed,
    )
    kw.update(overrides)
    return run_graph(**kw)


@pytest.mark.parametrize("seed,skew", GRAPH_SEEDS)
def test_bfs_bit_equal_across_execution_modes(seed, skew):
    results = {
        mode: _graph_run(mode, "bfs", seed, skew)
        for mode in ("onesided", "rpc", "offload")
    }
    levels = {r.levels_checksum for r in results.values()}
    visited = {r.visited for r in results.values()}
    assert len(levels) == 1, f"BFS levels diverge across modes: {results}"
    assert len(visited) == 1
    # The traversal did real work on every seed.
    assert results["onesided"].visited > 1


@pytest.mark.parametrize("seed,skew", [(0, 0.0), (3, 0.3), (5, 0.6), (7, 0.8)])
def test_pagerank_bit_equal_across_execution_modes(seed, skew):
    results = {
        mode: _graph_run(mode, "pagerank", seed, skew, vertices=48)
        for mode in ("onesided", "rpc", "offload")
    }
    ranks = {r.ranks_checksum for r in results.values()}
    assert len(ranks) == 1, f"PageRank ranks diverge across modes: {results}"


def _offload_chaos_run():
    """Offload BFS under seeded faults with the sanitizer attached."""
    result = _graph_run(
        "offload", "bfs", seed=3, skew=0.6, vertices=96, degree=4,
        faults="seeded", fault_seed=7, sanitize=True,
    )
    return (
        result.levels_checksum, result.visited, result.elapsed_ns,
        result.sim_events, result.wasted_iops, result.am_messages,
        result.am_handled, result.crashes, result.sanitizer,
    )


def test_offload_chaos_sanitized_run_replays_bit_identically():
    first = _offload_chaos_run()
    second = _offload_chaos_run()
    assert first == second
    # The faulted answer still matches the fault-free one: the graph
    # lives in NVM, so a blade crash aborts messages but loses no state.
    clean = _graph_run("offload", "bfs", seed=3, skew=0.6,
                       vertices=96, degree=4)
    assert first[0] == clean.levels_checksum
    assert first[1] == clean.visited
