"""Timing-wheel scheduler edge cases (repro.sim.core.Simulator).

The kernel replaced a per-event binary heap with a timing wheel plus an
overflow calendar.  These tests pin the properties the swap must not
change:

* same-tick FIFO — events at one instant run in scheduling order, even
  when they were inserted through different paths (wheel slot before the
  tick, active-bucket append mid-drain) or the tick crosses a bucket
  recycle boundary;
* far-future events land in the overflow calendar and migrate into the
  wheel (or are served directly) in correct global time order;
* ``peek()``/``step()``/``run(until=...)`` agree with the old heap
  semantics, checked against a reference ``(when, seq)`` heap scheduler
  on randomized event schedules that include same-tick cascades and
  horizon-crossing offsets.
"""

import heapq
import random

import pytest

from repro.sim.core import _WHEEL_SLOTS, SimulationError, Simulator


class TestSameTickFifo:
    def test_schedule_order_is_execution_order(self):
        sim = Simulator()
        trace = []
        for i in range(100):
            sim.call_at(50, trace.append, i)
        sim.run()
        assert trace == list(range(100))
        assert sim.now == 50

    def test_mid_drain_appends_run_after_preexisting_entries(self):
        """A same-tick event scheduled *while the tick drains* joins the
        end of the bucket — after everything scheduled before the tick
        began, exactly like the old heap's (when, seq) order."""
        sim = Simulator()
        trace = []

        def cascade(_):
            trace.append("cascade")
            sim.call_at(sim.now, trace.append, "late")

        sim.call_at(10, cascade, None)
        for i in range(3):
            sim.call_at(10, trace.append, i)
        sim.run()
        assert trace == ["cascade", 0, 1, 2, "late"]

    def test_fifo_across_bucket_recycle_boundary(self):
        """Ticks reuse recycled bucket lists; leftover state from a
        drained tick must never leak into a later one."""
        sim = Simulator()
        trace = []
        for tick in (5, 6, 7):
            for i in range(4):
                sim.call_at(tick, trace.append, (tick, i))
        sim.run()
        assert trace == [(t, i) for t in (5, 6, 7) for i in range(4)]

    def test_same_slot_different_rotation_does_not_collide(self):
        """t and t + _WHEEL_SLOTS map to the same wheel index; the second
        must not be drained with the first."""
        sim = Simulator()
        trace = []
        sim.call_at(100, trace.append, "near")
        sim.call_at(100 + _WHEEL_SLOTS, trace.append, "far")
        sim.call_at(100 + 3 * _WHEEL_SLOTS, trace.append, "farther")
        sim.run()
        assert trace == ["near", "far", "farther"]
        assert sim.now == 100 + 3 * _WHEEL_SLOTS

    def test_process_and_callback_interleave_fifo(self):
        sim = Simulator()
        trace = []

        def proc(tag):
            yield sim.timeout(20)
            trace.append(tag)

        sim.spawn(proc("p0"))
        sim.call_at(20, trace.append, "cb0")
        sim.spawn(proc("p1"))
        sim.call_at(20, trace.append, "cb1")
        sim.run()
        # Timeouts for p0/p1 were scheduled (at t=0) before the bare
        # callbacks... no: spawn schedules the first resume at t=0; the
        # timeout is created when the process first runs, i.e. *after*
        # both call_at(20) entries.  FIFO at t=20 is cb0, cb1, p0, p1.
        assert trace == ["cb0", "cb1", "p0", "p1"]


class TestOverflowCalendar:
    def test_far_future_lands_in_overflow_and_migrates(self):
        sim = Simulator()
        trace = []
        sim.call_at(10, trace.append, "near")
        far = 10 * _WHEEL_SLOTS + 7
        sim.call_at(far, trace.append, "far")
        # The far event cannot fit the current window.
        assert far in sim._overflow
        sim.run(until=20)
        assert trace == ["near"]
        # Still parked in overflow; visible to peek().
        assert sim.peek() == far
        sim.run()
        assert trace == ["near", "far"]
        assert sim.now == far
        assert not sim._overflow and not sim._overflow_times

    def test_overflow_preserves_same_tick_fifo(self):
        sim = Simulator()
        trace = []
        far = 2 * _WHEEL_SLOTS + 123
        for i in range(10):
            sim.call_at(far, trace.append, i)
        sim.run()
        assert trace == list(range(10))

    def test_empty_wheel_rebases_directly(self):
        """With nothing pending, a far-future schedule slides the window
        instead of paying a migration."""
        sim = Simulator()
        trace = []
        far = 100 * _WHEEL_SLOTS + 42
        sim.call_at(far, trace.append, "only")
        assert not sim._overflow  # eager rebase, straight into the wheel
        sim.run()
        assert trace == ["only"] and sim.now == far

    def test_cascading_far_future_chains(self):
        """Events that schedule further far-future events keep migrating
        correctly across many window slides."""
        sim = Simulator()
        trace = []

        def hop(n):
            trace.append((sim.now, n))
            if n < 20:
                sim.call_at(sim.now + _WHEEL_SLOTS + 1, hop, n + 1)

        sim.call_at(5, hop, 0)
        sim.run()
        assert [n for _, n in trace] == list(range(21))
        whens = [t for t, _ in trace]
        assert whens == sorted(whens)
        assert whens[-1] == 5 + 20 * (_WHEEL_SLOTS + 1)

    def test_stale_window_straggler_served_in_order(self):
        """An ``until``-bounded run can leave the window based past
        ``now``; a new near-term event then lands in the overflow
        calendar *behind* later wheel entries and must still run first."""
        sim = Simulator()
        trace = []
        far = 3 * _WHEEL_SLOTS
        sim.call_at(far, trace.append, "late")
        sim.run(until=10)  # eager rebase slid the window to `far`
        assert sim.now == 10
        sim.call_at(50, trace.append, "early")  # before the window base
        assert sim.peek() == 50
        sim.run()
        assert trace == ["early", "late"]

    def test_scheduling_into_the_past_raises(self):
        sim = Simulator()
        sim.call_at(100, lambda _: None, None)
        sim.run()
        with pytest.raises(SimulationError, match="into the past"):
            sim.call_at(99, lambda _: None, None)


class TestDelayRetime:
    def test_recycled_delay_matches_fresh_delays(self):
        """One re-armed Delay instance sleeps exactly like a fresh
        Delay per gap (the open-loop arrival-loop pattern)."""
        gaps = [3, 0, 17, 8192 * 2, 1]

        def run(use_retime):
            sim = Simulator()
            ticks = []
            if use_retime:
                nap = sim.delay(0)

                def proc():
                    for gap in gaps:
                        yield nap.retime(gap)
                        ticks.append(sim.now)
            else:
                def proc():
                    for gap in gaps:
                        yield sim.delay(gap)
                        ticks.append(sim.now)
            sim.spawn(proc())
            sim.run()
            return ticks, sim.events_executed

        assert run(True) == run(False)

    def test_retime_rounds_and_validates(self):
        sim = Simulator()
        nap = sim.delay(0)
        assert nap.retime(4.6).ns == 5
        with pytest.raises(SimulationError, match="negative delay"):
            nap.retime(-1)


# ---------------------------------------------------------------------------
# Randomized oracle: the wheel vs a reference (when, seq) heap scheduler.
# ---------------------------------------------------------------------------


class HeapScheduler:
    """The old kernel's scheduling semantics, small enough to audit.

    A binary heap of ``(when, seq, callback, value)`` with a global
    sequence counter: strict time order, FIFO within a tick.  Only the
    surface the oracle drives (``call_at``/``run``/``step``/``peek``).
    """

    def __init__(self):
        self.now = 0
        self._seq = 0
        self._heap = []

    def call_at(self, when, callback, value=None):
        when = int(round(when))
        if when < self.now:
            raise SimulationError(f"scheduling into the past: {when}")
        heapq.heappush(self._heap, (when, self._seq, callback, value))
        self._seq += 1

    def peek(self):
        return self._heap[0][0] if self._heap else None

    def step(self):
        if not self._heap:
            return False
        when, _, callback, value = heapq.heappop(self._heap)
        self.now = when
        callback(value)
        return True

    def run(self, until=None):
        if until is not None:
            until = int(round(until))
        while self._heap and (until is None or self._heap[0][0] <= until):
            when, _, callback, value = heapq.heappop(self._heap)
            self.now = when
            callback(value)
        if until is not None and until > self.now:
            self.now = until


def _load_schedule(sim, trace, seed, initial=40, budget=300):
    """Seed ``sim`` with a randomized, self-extending event schedule.

    Callbacks record ``(now, event_id)`` and may schedule more callbacks
    at offsets drawn from every interesting regime: same tick, next
    tick, within the wheel window, and far past the horizon.  All
    randomness derives from ``seed`` and the event id, so two schedulers
    executing in the same order draw identical schedules.
    """
    state = {"next_id": initial, "budget": budget}

    def make_cb(eid):
        def cb(_value):
            trace.append((sim.now, eid))
            rng = random.Random((seed << 24) ^ eid)
            for _ in range(rng.randrange(3)):
                if state["budget"] <= 0:
                    return
                state["budget"] -= 1
                child = state["next_id"]
                state["next_id"] += 1
                offset = rng.choice((
                    0, 0, 1,
                    rng.randrange(1, 64),
                    rng.randrange(1, _WHEEL_SLOTS),
                    rng.randrange(_WHEEL_SLOTS, 20 * _WHEEL_SLOTS),
                ))
                sim.call_at(sim.now + offset, make_cb(child), None)
        return cb

    rng = random.Random(seed)
    for eid in range(initial):
        when = rng.choice((
            rng.randrange(0, 8),                       # dense same-tick
            rng.randrange(0, _WHEEL_SLOTS),            # in-window
            rng.randrange(_WHEEL_SLOTS, 30 * _WHEEL_SLOTS),  # overflow
        ))
        sim.call_at(when, make_cb(eid), None)


@pytest.mark.parametrize("seed", range(8))
class TestHeapOracle:
    def test_full_run_matches_heap(self, seed):
        wheel_trace, heap_trace = [], []
        wheel, heap = Simulator(), HeapScheduler()
        _load_schedule(wheel, wheel_trace, seed)
        _load_schedule(heap, heap_trace, seed)
        wheel.run()
        heap.run()
        assert wheel_trace == heap_trace
        assert wheel.now == heap.now
        assert wheel.peek() is None and heap.peek() is None

    def test_chunked_run_until_matches_heap(self, seed):
        """run(until=...) in random increments: identical traces, nows
        and peek() after every chunk."""
        wheel_trace, heap_trace = [], []
        wheel, heap = Simulator(), HeapScheduler()
        _load_schedule(wheel, wheel_trace, seed)
        _load_schedule(heap, heap_trace, seed)
        rng = random.Random(seed ^ 0xC0FFEE)
        until = 0
        while wheel.peek() is not None or heap.peek() is not None:
            until += rng.choice((
                1, 7, rng.randrange(1, 600),
                rng.randrange(1, 3 * _WHEEL_SLOTS),
            ))
            wheel.run(until=until)
            heap.run(until=until)
            assert wheel_trace == heap_trace
            assert wheel.now == heap.now == until or wheel.now == heap.now
            assert wheel.peek() == heap.peek()
        assert wheel_trace == heap_trace

    def test_stepwise_matches_heap(self, seed):
        wheel_trace, heap_trace = [], []
        wheel, heap = Simulator(), HeapScheduler()
        _load_schedule(wheel, wheel_trace, seed, initial=20, budget=120)
        _load_schedule(heap, heap_trace, seed, initial=20, budget=120)
        while True:
            assert wheel.peek() == heap.peek()
            advanced = wheel.step()
            assert advanced == heap.step()
            assert wheel_trace == heap_trace
            if not advanced:
                break
            assert wheel.now == heap.now

    def test_mixed_step_and_run_matches_heap(self, seed):
        """Interleaving step() with bounded run() calls must not disturb
        the order (the wheel's partially-drained active bucket is the
        tricky state here)."""
        wheel_trace, heap_trace = [], []
        wheel, heap = Simulator(), HeapScheduler()
        _load_schedule(wheel, wheel_trace, seed)
        _load_schedule(heap, heap_trace, seed)
        rng = random.Random(seed ^ 0xBEEF)
        while wheel.peek() is not None:
            if rng.random() < 0.5:
                for _ in range(rng.randrange(1, 6)):
                    assert wheel.step() == heap.step()
            else:
                until = wheel.now + rng.randrange(0, 2 * _WHEEL_SLOTS)
                wheel.run(until=until)
                heap.run(until=until)
            assert wheel_trace == heap_trace
            assert wheel.now == heap.now
            assert wheel.peek() == heap.peek()
        assert not heap.step()
        assert wheel_trace == heap_trace
