"""Tests for consistent-hash sharding, leases and the autoscaler."""

import pytest

from repro.memory.elastic import Autoscaler
from repro.memory.lease import LeaseError, LeaseManager
from repro.memory.shard import HashRing, ShardMap, ShardMove, mix64, shard_of
from repro.sim import Simulator


class TestHashRing:
    def test_lookup_is_deterministic(self):
        a = HashRing(vnodes=16)
        b = HashRing(vnodes=16)
        for blade in (1, 2, 5):
            a.add_node(blade)
            b.add_node(blade)
        assert [a.lookup_key(k) for k in range(100)] == [
            b.lookup_key(k) for k in range(100)
        ]

    def test_adding_a_node_only_steals_keys(self):
        ring = HashRing(vnodes=32)
        for blade in (1, 2):
            ring.add_node(blade)
        before = {k: ring.lookup_key(k) for k in range(1000)}
        ring.add_node(3)
        after = {k: ring.lookup_key(k) for k in range(1000)}
        moved = {k for k in before if before[k] != after[k]}
        # Every remap lands on the new node; no key moves 1 <-> 2.
        assert moved
        assert all(after[k] == 3 for k in moved)

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing(vnodes=32)
        for blade in (1, 2, 3):
            ring.add_node(blade)
        before = {k: ring.lookup_key(k) for k in range(1000)}
        ring.remove_node(3)
        after = {k: ring.lookup_key(k) for k in range(1000)}
        moved = {k for k in before if before[k] != after[k]}
        assert moved == {k for k in before if before[k] == 3}

    def test_add_remove_roundtrip_restores_placement(self):
        ring = HashRing(vnodes=16)
        for blade in (1, 2):
            ring.add_node(blade)
        before = [ring.lookup_key(k) for k in range(500)]
        ring.add_node(9)
        ring.remove_node(9)
        assert [ring.lookup_key(k) for k in range(500)] == before

    def test_duplicate_and_missing_members_rejected(self):
        ring = HashRing()
        ring.add_node(1)
        with pytest.raises(ValueError):
            ring.add_node(1)
        with pytest.raises(ValueError):
            ring.remove_node(2)
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(ValueError):
            HashRing().lookup(0)


class TestShardMap:
    def test_shard_hash_independent_of_ring_hash(self):
        # Keys of one shard must not cluster on the ring: both blades
        # should own shards.
        shard_map = ShardMap([1, 2], num_shards=64)
        assert set(shard_map.load()) == {1, 2}
        assert all(count > 0 for count in shard_map.load().values())

    def test_shard_of_is_stable(self):
        assert shard_of(12345, 64) == mix64(12345 ^ 0x3C6EF372FE94F82A) % 64
        shard_map = ShardMap([1], num_shards=8)
        assert shard_map.blade_for_key(42) == 1

    def test_plan_add_moves_only_onto_new_blade(self):
        shard_map = ShardMap([1, 2], num_shards=64)
        moves = shard_map.plan_add(3)
        assert moves
        assert all(m.dst == 3 for m in moves)
        # Placement does NOT change until each move commits.
        assert all(shard_map.blade_for_shard(m.shard) == m.src for m in moves)
        for move in moves:
            shard_map.commit(move)
        assert all(shard_map.blade_for_shard(m.shard) == 3 for m in moves)

    def test_plan_remove_drains_the_blade(self):
        shard_map = ShardMap([1, 2, 3], num_shards=64)
        victims = shard_map.shards_on(3)
        moves = shard_map.plan_remove(3)
        assert sorted(m.shard for m in moves) == sorted(victims)
        assert all(m.src == 3 and m.dst != 3 for m in moves)
        for move in moves:
            shard_map.commit(move)
        assert shard_map.shards_on(3) == []

    def test_commit_validates_current_placement(self):
        shard_map = ShardMap([1, 2], num_shards=8)
        shard = 0
        wrong_src = 1 if shard_map.blade_for_shard(shard) != 1 else 2
        with pytest.raises(ValueError):
            shard_map.commit(ShardMove(shard, wrong_src, 1))

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardMap([1], num_shards=0)


class TestLeases:
    def test_grant_renew_release(self):
        leases = LeaseManager(term_ns=1000)
        lease = leases.grant("shard0", "alice", now=0)
        assert lease.expires_ns == 1000
        assert leases.holder("shard0", now=500) == "alice"
        leases.renew("shard0", "alice", now=500)
        assert leases.holder("shard0", now=1200) == "alice"
        leases.release("shard0", "alice")
        assert leases.holder("shard0", now=1200) is None

    def test_live_lease_conflicts(self):
        leases = LeaseManager(term_ns=1000)
        leases.grant("shard0", "alice", now=0)
        with pytest.raises(LeaseError):
            leases.grant("shard0", "bob", now=500)
        assert leases.stats()["conflicts"] == 1
        # Same client may re-grant (idempotent ownership refresh).
        leases.grant("shard0", "alice", now=500)

    def test_expired_lease_is_reclaimable(self):
        leases = LeaseManager(term_ns=1000)
        leases.grant("shard0", "alice", now=0)
        assert leases.holder("shard0", now=1000) is None  # expiry is exclusive
        # A new client takes over an expired lease implicitly...
        leases.grant("shard0", "bob", now=1500)
        assert leases.holder("shard0", now=1600) == "bob"
        # ...and reclaim_expired sweeps the rest.
        leases.grant("shard1", "carol", now=1500)
        dead = leases.reclaim_expired(now=99_999)
        assert {l.resource for l in dead} == {"shard0", "shard1"}
        assert leases.live_count(now=99_999) == 0

    def test_renew_requires_live_ownership(self):
        leases = LeaseManager(term_ns=1000)
        leases.grant("shard0", "alice", now=0)
        with pytest.raises(LeaseError):
            leases.renew("shard0", "bob", now=100)
        with pytest.raises(LeaseError):
            leases.renew("shard0", "alice", now=5000)
        with pytest.raises(LeaseError):
            leases.release("shard0", "bob")


class _FakeStats:
    def __init__(self):
        self.shed = 0
        self.deferred = 0


class _FakeTenant:
    def __init__(self):
        self.stats = _FakeStats()


class TestAutoscaler:
    def _build(self, sim, tenant, **kwargs):
        blades = [1, 2]
        log = []

        def scale_out():
            blades.append(max(blades) + 1)
            log.append(("out", sim.now))
            yield sim.timeout(10.0)

        def scale_in():
            blades.pop()
            log.append(("in", sim.now))
            yield sim.timeout(10.0)

        scaler = Autoscaler(
            sim, [tenant],
            blade_count_fn=lambda: len(blades),
            scale_out_fn=scale_out,
            scale_in_fn=scale_in,
            period_ns=100.0,
            shed_threshold=1,
            quiet_periods=3,
            min_blades=2,
            cooldown_periods=2,
            **kwargs,
        )
        return scaler, blades, log

    def test_scales_out_on_shed_pressure(self):
        sim = Simulator()
        tenant = _FakeTenant()
        scaler, blades, log = self._build(sim, tenant)
        sim.spawn(scaler.run())
        sim.run(until=50.0)  # let the loop start and take its baseline
        tenant.stats.shed = 5  # pressure before the first sample
        sim.run(until=150.0)
        assert [(what, pytest.approx(at)) for what, at in log] == [("out", 100.0)]
        assert len(blades) == 3
        event = scaler.events[0]
        assert event.action == "scale_out"
        assert event.shed_delta == 5
        assert (event.blades_before, event.blades_after) == (2, 3)

    def test_cooldown_blocks_consecutive_scale_outs(self):
        sim = Simulator()
        tenant = _FakeTenant()
        scaler, blades, _ = self._build(sim, tenant)
        sim.spawn(scaler.run())
        sim.run(until=50.0)
        tenant.stats.shed = 100
        sim.run(until=350.0)  # fresh pressure; cooldown gates samples 200/300
        assert len(scaler.events) == 1
        tenant.stats.shed = 200  # keep shedding past the cooldown
        sim.run(until=450.0)  # sample at 400 sees the new delta -> second out
        assert len(scaler.events) == 2

    def test_scales_in_after_quiet_periods(self):
        sim = Simulator()
        tenant = _FakeTenant()
        scaler, blades, log = self._build(sim, tenant)
        blades.append(3)  # start over-provisioned
        sim.spawn(scaler.run())
        sim.run(until=1000.0)
        # 3 quiet samples at t=100/200/300 trigger the scale-in.
        assert log[0][0] == "in"
        assert log[0][1] == pytest.approx(300.0)
        assert len(blades) == 2  # respects min_blades from then on
        assert all(e.action == "scale_in" for e in scaler.events)
        assert len(scaler.events) == 1

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        tenant = _FakeTenant()
        scaler, blades, log = self._build(sim, tenant)
        sim.spawn(scaler.run())
        sim.run(until=150.0)
        scaler.stop()
        tenant.stats.shed = 100
        sim.run(until=2000.0)
        assert log == []

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Autoscaler(sim, [], lambda: 1, lambda: iter(()), period_ns=0)
        with pytest.raises(ValueError):
            Autoscaler(sim, [], lambda: 1, lambda: iter(()),
                       min_blades=3, max_blades=2)
