"""Tests for the slab/arena allocation layer (repro.memory.allocator)."""

import random

import pytest

from repro.memory.allocator import (
    SLAB_CHUNK_BYTES,
    SLAB_MAX_BYTES,
    SLAB_MIN_BYTES,
    ArenaAllocator,
    BladeAllocator,
    SlabAllocator,
    _size_class,
)


class TestSizeClass:
    def test_rounds_up_to_power_of_two(self):
        assert _size_class(1) == SLAB_MIN_BYTES
        assert _size_class(64) == 64
        assert _size_class(65) == 128
        assert _size_class(4096) == 4096


class TestArena:
    def test_first_fit_is_sequential_like_a_bump_pointer(self):
        # With nothing freed, placements must match the historical bump
        # pointer exactly — the golden-layout compatibility guarantee.
        arena = ArenaAllocator(8, 1 << 20)
        offsets = [arena.alloc(100, align=64) for _ in range(4)]
        expected = []
        cursor = 8
        for _ in range(4):
            aligned = (cursor + 63) & ~63
            expected.append(aligned)
            cursor = aligned + 100
        assert offsets == expected

    def test_alloc_reuses_freed_block_first_fit(self):
        arena = ArenaAllocator(0, 4096)
        a = arena.alloc(256)
        b = arena.alloc(256)
        arena.alloc(256)
        arena.free(a, 256)
        arena.free(b, 256)
        # Coalesced hole [a, a+512) is first; a 512-byte request fits it.
        assert arena.alloc(512) == a
        assert arena.free_blocks == 1  # only the tail remains free

    def test_free_coalesces_both_neighbours(self):
        arena = ArenaAllocator(0, 4096)
        blocks = [arena.alloc(512) for _ in range(4)]
        arena.free(blocks[0], 512)
        arena.free(blocks[2], 512)
        assert arena.free_blocks == 3  # two holes + tail
        arena.free(blocks[1], 512)  # bridges the two holes
        assert arena.free_blocks == 2
        arena.free(blocks[3], 512)  # merges everything with the tail
        assert arena.free_blocks == 1
        assert arena.free_bytes == 4096
        assert arena.fragmentation == 0.0

    def test_double_free_detected(self):
        arena = ArenaAllocator(0, 4096)
        a = arena.alloc(256)
        arena.free(a, 256)
        with pytest.raises(ValueError, match="double free"):
            arena.free(a, 256)

    def test_partial_overlap_free_detected(self):
        arena = ArenaAllocator(0, 4096)
        a = arena.alloc(256)
        arena.free(a, 256)
        with pytest.raises(ValueError, match="double free"):
            arena.free(a + 64, 64)

    def test_free_outside_bounds_rejected(self):
        arena = ArenaAllocator(64, 4096)
        with pytest.raises(ValueError, match="outside arena"):
            arena.free(0, 32)
        with pytest.raises(ValueError, match="outside arena"):
            arena.free(4090, 32)

    def test_oom_reports_true_free_space(self):
        arena = ArenaAllocator(0, 1024)
        arena.alloc(1000)
        with pytest.raises(MemoryError) as exc:
            arena.alloc(512)
        assert "24 free" in str(exc.value)

    def test_fragmentation_metric(self):
        arena = ArenaAllocator(0, 4096)
        blocks = [arena.alloc(1024) for _ in range(4)]
        arena.free(blocks[0], 1024)
        arena.free(blocks[2], 1024)
        # Two equal holes: largest/free = 1/2.
        assert arena.fragmentation == pytest.approx(0.5)

    def test_rejects_bad_arguments(self):
        arena = ArenaAllocator(0, 4096)
        with pytest.raises(ValueError):
            arena.alloc(0)
        with pytest.raises(ValueError):
            arena.alloc(8, align=3)
        with pytest.raises(ValueError):
            arena.free(0, 0)


class TestSlab:
    def test_small_objects_share_one_chunk(self):
        arena = ArenaAllocator(0, 1 << 20)
        slabs = SlabAllocator(arena)
        offsets = [slabs.alloc(64)[0] for _ in range(8)]
        assert slabs.chunk_count == 1
        # Objects pop in ascending address order within the chunk.
        assert offsets == sorted(offsets)
        assert offsets[1] - offsets[0] == 64

    def test_free_then_alloc_reuses_lifo(self):
        arena = ArenaAllocator(0, 1 << 20)
        slabs = SlabAllocator(arena)
        offset, cls = slabs.alloc(100)
        assert cls == 128
        slabs.free(offset, 100)
        again, _ = slabs.alloc(100)
        assert again == offset

    def test_empty_chunk_returns_to_arena(self):
        arena = ArenaAllocator(0, 1 << 20)
        slabs = SlabAllocator(arena)
        free_before = arena.free_bytes
        live = [slabs.alloc(256)[0] for _ in range(4)]
        assert arena.free_bytes == free_before - SLAB_CHUNK_BYTES
        for offset in live:
            slabs.free(offset, 256)
        assert slabs.chunk_count == 0
        assert arena.free_bytes == free_before
        assert slabs.cached_bytes == 0

    def test_double_free_detected(self):
        arena = ArenaAllocator(0, 1 << 20)
        slabs = SlabAllocator(arena)
        a = slabs.alloc(64)[0]
        b = slabs.alloc(64)[0]
        slabs.free(a, 64)
        with pytest.raises(ValueError, match="double free"):
            slabs.free(a, 64)
        # The chunk must still hold b (the double free must not have
        # decremented the live count and released the chunk).
        assert slabs.chunk_count == 1
        slabs.free(b, 64)
        assert slabs.chunk_count == 0


class TestBladeAllocator:
    def test_routes_by_size_and_alignment(self):
        blade = BladeAllocator(8, 1 << 20)
        small = blade.alloc(64)
        big = blade.alloc(SLAB_MAX_BYTES + 1)
        aligned = blade.alloc(64, align=128)  # align > slab min -> arena
        assert blade.size_of(small) == 64
        assert blade.size_of(big) == SLAB_MAX_BYTES + 1
        assert aligned % 128 == 0
        assert blade.live_allocations == 3

    def test_prefer_slab_false_uses_arena(self):
        blade = BladeAllocator(8, 1 << 20)
        offset = blade.alloc(100, align=64, prefer_slab=False)
        assert offset == 64  # first-fit from the arena head, not a chunk
        assert blade.stats()["slab_chunks"] == 0

    def test_stats_track_both_layers(self):
        blade = BladeAllocator(0, 1 << 20)
        a = blade.alloc(64)
        blade.alloc(8192, prefer_slab=False)
        stats = blade.stats()
        assert stats["allocs"] == 2
        assert stats["bytes_in_use"] == 64 + 8192
        assert stats["slab_chunks"] == 1
        blade.free(a)
        stats = blade.stats()
        assert stats["frees"] == 1
        assert stats["bytes_in_use"] == 8192
        assert stats["live_allocations"] == 1

    def test_failed_alloc_counted_and_raises(self):
        blade = BladeAllocator(0, 1024)
        with pytest.raises(MemoryError):
            blade.alloc(4096, prefer_slab=False)
        assert blade.stats()["failed_allocs"] == 1

    def test_free_unknown_offset_rejected(self):
        blade = BladeAllocator(0, 1 << 20)
        with pytest.raises(ValueError, match="unknown offset"):
            blade.free(12345)

    def test_publish_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        blade = BladeAllocator(0, 1 << 20)
        blade.alloc(64)
        registry = MetricsRegistry()
        blade.publish_metrics(registry, "memory.blade0")
        snap = registry.to_dict()
        assert snap["counters"]["memory.blade0.allocs"]["value"] == 1.0
        assert snap["gauges"]["memory.blade0.capacity"]["value"] == float(1 << 20)
        assert "memory.blade0.fragmentation" in snap["gauges"]

    def test_free_reuse_is_deterministic_under_fixed_seed(self):
        # Identical seeded alloc/free sequences must produce identical
        # placements — the property that lets migration runs (which free
        # and re-carve whole regions) replay bit-identically.
        def trace(seed):
            rng = random.Random(seed)
            blade = BladeAllocator(8, 1 << 20)
            live = {}
            events = []
            for step in range(400):
                if live and rng.random() < 0.4:
                    offset = rng.choice(sorted(live))
                    del live[offset]
                    blade.free(offset)
                    events.append(("free", offset))
                else:
                    size = rng.choice((64, 100, 256, 4096, 8192))
                    offset = blade.alloc(size)
                    live[offset] = size
                    events.append(("alloc", size, offset))
            return events, blade.stats()

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)
