"""Tests for distribution generators (repro.sim.rng)."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    percentile,
    truncated_exponential_backoff_ns,
)


def test_uniform_bounds_and_coverage():
    gen = UniformGenerator(10, seed=1)
    samples = [gen.next() for _ in range(2000)]
    assert min(samples) == 0
    assert max(samples) == 9
    counts = Counter(samples)
    assert all(100 < counts[k] < 320 for k in range(10))


def test_zipfian_theta_zero_is_uniform():
    gen = ZipfianGenerator(100, theta=0.0, seed=2)
    samples = [gen.next() for _ in range(5000)]
    counts = Counter(samples)
    assert counts[0] < 120  # ~50 expected, far from zipfian's dominance


def test_zipfian_head_dominates_at_high_theta():
    gen = ZipfianGenerator(100_000, theta=0.99, seed=3)
    samples = [gen.next() for _ in range(20_000)]
    counts = Counter(samples)
    head = sum(counts[k] for k in range(10))
    # With theta=0.99 over 1e5 items the top-10 ranks carry ~24% of draws
    # (zeta(10)/zeta(1e5) ~= 0.23); far above the uniform 1e-4.
    assert head / len(samples) > 0.15
    assert counts.most_common(1)[0][0] == 0


def test_zipfian_more_theta_more_skew():
    def top1_share(theta):
        gen = ZipfianGenerator(10_000, theta=theta, seed=4)
        samples = [gen.next() for _ in range(10_000)]
        return Counter(samples)[0] / len(samples)

    assert top1_share(0.5) < top1_share(0.9) < top1_share(0.99)


@given(st.integers(min_value=1, max_value=5000), st.floats(min_value=0.0, max_value=0.99))
@settings(max_examples=50, deadline=None)
def test_zipfian_always_in_range(item_count, theta):
    gen = ZipfianGenerator(item_count, theta=theta, seed=5)
    for _ in range(50):
        value = gen.next()
        assert 0 <= value < item_count


def test_zipfian_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.0)
    with pytest.raises(ValueError):
        UniformGenerator(0)


def test_zipfian_determinism():
    a = ZipfianGenerator(1000, theta=0.99, seed=42)
    b = ZipfianGenerator(1000, theta=0.99, seed=42)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_scrambled_zipfian_spreads_hot_keys():
    gen = ScrambledZipfianGenerator(100_000, theta=0.99, seed=6)
    samples = [gen.next() for _ in range(20_000)]
    assert all(0 <= s < 100_000 for s in samples)
    counts = Counter(samples)
    hottest, hits = counts.most_common(1)[0]
    # Still skewed (one key dominates) but not key 0.
    assert hits > 1000
    assert hottest == fnv1a_64(0) % 100_000


def test_fnv1a_known_properties():
    assert fnv1a_64(0) != fnv1a_64(1)
    assert 0 <= fnv1a_64(123456789) < (1 << 64)
    assert fnv1a_64(7) == fnv1a_64(7)


@given(st.integers(min_value=0, max_value=40))
@settings(max_examples=50, deadline=None)
def test_backoff_within_bounds(attempt):
    rng = random.Random(7)
    unit, cap = 4096.0, 4096.0 * 1024
    value = truncated_exponential_backoff_ns(attempt, unit, cap, rng)
    assert unit * min(2.0 ** attempt, 1024) <= value <= cap + unit


def test_backoff_doubles_then_truncates():
    rng = random.Random(0)
    values = [
        truncated_exponential_backoff_ns(i, 100.0, 1600.0, rng) for i in range(8)
    ]
    # Deterministic part doubles 100,200,400,800,1600,1600,...
    base = [min(100.0 * 2 ** i, 1600.0) for i in range(8)]
    for value, expected in zip(values, base):
        assert expected <= value <= expected + 100.0


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 0.50) == 50
    assert percentile(values, 0.99) == 99
    assert percentile(values, 1.0) == 100
    assert percentile(values, 0.0) == 1
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)
