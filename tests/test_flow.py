"""Tests for repro.analysis.flow: CFG, dataflow rules, protocol checker,
baseline workflow, SARIF output, and the lint-satellite fixes."""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import baseline as baseline_mod
from repro.analysis.flow import output as output_mod
from repro.analysis.flow import protocol as protocol_mod
from repro.analysis.flow.cfg import ENTRY, EXIT, build_cfg
from repro.analysis.flow.dataflow import forward_may
from repro.analysis.flow.engine import (
    RULES,
    FlowFinding,
    analyze_paths,
    analyze_source,
    collect_files,
    main,
)
from repro.analysis.lint import lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def _fn(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    fns = [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
    if name is not None:
        fns = [f for f in fns if f.name == name]
    return fns[0]


def _rules_of(findings):
    return sorted(f.rule for f in findings)


def _analyze(source):
    return analyze_source(textwrap.dedent(source), "fixture.py")


# -- CFG construction ---------------------------------------------------------


class TestCfg:
    def test_straight_line(self):
        cfg = build_cfg(_fn("""
            def f(lock):
                yield lock.acquire()
                lock.release()
        """))
        # ENTRY -> acquire -> release -> EXIT
        assert cfg.node_count == 4
        assert cfg.succs[ENTRY] == {2}
        assert cfg.succs[2] == {3}
        assert cfg.succs[3] == {EXIT}

    def test_loop_with_break_joins_after(self):
        cfg = build_cfg(_fn("""
            def f(sim):
                while True:
                    yield sim.timeout(1)
                    if sim.now > 5:
                        break
                done = 1
                return done
        """))
        # `while True` has no fall-through: `done = 1` is reachable only
        # via the break edge.
        done_nodes = [
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.Assign)
        ]
        assert len(done_nodes) == 1
        preds = cfg.preds[done_nodes[0]]
        assert preds, "break edge must reach the post-loop statement"
        assert all(isinstance(cfg.stmts[p], ast.Break) for p in preds)

    def test_for_loop_back_edge(self):
        cfg = build_cfg(_fn("""
            def f(items, sim):
                for item in items:
                    yield sim.timeout(item)
                return None
        """))
        header = next(
            i for i, s in enumerate(cfg.stmts) if isinstance(s, ast.For)
        )
        body = next(
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.Expr) and i != header
        )
        assert header in cfg.preds[body]
        assert body in cfg.preds[header], "loop body must branch back"

    def test_try_finally_routes_return(self):
        cfg = build_cfg(_fn("""
            def f(lock):
                yield lock.acquire()
                try:
                    return 1
                finally:
                    lock.release()
        """))
        release = next(
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.Expr) and "release" in ast.unparse(s)
        )
        ret = next(
            i for i, s in enumerate(cfg.stmts) if isinstance(s, ast.Return)
        )
        # return routes *through* the finally: return -> ... -> release -> EXIT
        assert cfg.has_path(ret, release)
        assert EXIT in cfg.succs[release]
        # and not around it
        assert EXIT not in cfg.succs[ret]

    def test_exception_edge_reaches_handler(self):
        cfg = build_cfg(_fn("""
            def f(sim):
                try:
                    risky()
                except Exception:
                    handled = 1
                return None
        """))
        handler = next(
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.ExceptHandler)
        )
        assert cfg.preds[handler], "try body must have an edge into the handler"

    def test_yields_in_ignores_nested_defs(self):
        cfg = build_cfg(_fn("""
            def f(sim):
                def inner():
                    yield sim.timeout(1)
                yield sim.timeout(2)
        """, name="f"))
        yields = [y for n in range(cfg.node_count) for y in cfg.yields_in(n)]
        assert len(yields) == 1

    def test_dataflow_fixpoint_on_loop(self):
        cfg = build_cfg(_fn("""
            def f(lock, sim):
                yield lock.acquire()
                while cond():
                    yield sim.timeout(1)
                lock.release()
        """))
        acq = next(
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.Expr) and "acquire" in ast.unparse(s)
        )
        rel = next(
            i for i, s in enumerate(cfg.stmts)
            if isinstance(s, ast.Expr) and "release" in ast.unparse(s)
        )
        in_facts, out_facts = forward_may(cfg, {acq: {"L"}}, {rel: {"L"}})
        assert "L" in in_facts[rel]
        assert "L" not in out_facts[rel]
        assert "L" not in in_facts[EXIT]


# -- ownership rules ----------------------------------------------------------


class TestOwnership:
    def test_flw101_partial_release(self):
        findings = _analyze("""
            def f(lock, cond):
                yield lock.acquire()
                if cond:
                    lock.release()
                    return 1
                return 2
        """)
        assert "FLW101" in _rules_of(findings)

    def test_flw101_negative_release_in_finally(self):
        findings = _analyze("""
            def f(lock):
                yield lock.acquire()
                try:
                    yield work()
                finally:
                    lock.release()
        """)
        assert "FLW101" not in _rules_of(findings)

    def test_flw101_negative_ownership_transfer(self):
        # No release anywhere in the function: ownership moves elsewhere
        # (QP-pool style); not this rule's business.
        findings = _analyze("""
            def f(pool):
                qp = yield pool.acquire()
                return qp
        """)
        assert "FLW101" not in _rules_of(findings)

    def test_flw101_correlated_guard_not_flagged(self):
        # The verbs.py shape: acquire and release both guarded by the
        # same `is not None` test on the lock itself.
        findings = _analyze("""
            def f(qp, thread_id):
                if qp.share_lock is not None:
                    yield qp.share_lock.acquire(owner=thread_id)
                work()
                if qp.share_lock is not None:
                    qp.share_lock.release(owner=thread_id)
        """)
        assert "FLW101" not in _rules_of(findings)

    def test_flw101_token_take_put(self):
        findings = _analyze("""
            def f(bucket, cond):
                yield bucket.take(3)
                if cond:
                    bucket.put(3)
        """)
        assert "FLW101" in _rules_of(findings)

    def test_flw102_yield_while_holding(self):
        findings = _analyze("""
            def f(lock, sim):
                yield lock.acquire()
                yield sim.timeout(5)
                lock.release()
        """)
        assert "FLW102" in _rules_of(findings)

    def test_flw102_negative_with_finally(self):
        findings = _analyze("""
            def f(lock, sim):
                yield lock.acquire()
                try:
                    yield sim.timeout(5)
                finally:
                    lock.release()
        """)
        assert "FLW102" not in _rules_of(findings)

    def test_flw102_negative_delegated_acquire(self):
        # `yield from` protocol helpers (sherman's lock table) are
        # app-level hand-over protocols, not sim locks.
        findings = _analyze("""
            def f(locks, handle, addr, sim):
                yield from locks.acquire(handle, addr)
                yield sim.timeout(5)
                yield from locks.release(handle, addr)
        """)
        assert "FLW102" not in _rules_of(findings)

    def test_flw103_bare_spawn(self):
        findings = _analyze("""
            def setup(sim):
                sim.spawn(worker())
        """)
        assert "FLW103" in _rules_of(findings)

    def test_flw103_negative_stored(self):
        findings = _analyze("""
            def setup(sim):
                proc = sim.spawn(worker())
                return proc
        """)
        assert "FLW103" not in _rules_of(findings)


# -- determinism rules --------------------------------------------------------


class TestDeterminism:
    def test_flw201_set_iteration_scheduling(self):
        findings = _analyze("""
            def f(sim):
                pending = set()
                for item in pending:
                    sim.spawn(item)
        """)
        assert "FLW201" in _rules_of(findings)

    def test_flw201_negative_sorted(self):
        findings = _analyze("""
            def f(sim):
                pending = set()
                for item in sorted(pending):
                    sim.spawn(item)
        """)
        assert "FLW201" not in _rules_of(findings)

    def test_flw201_set_attribute(self):
        findings = _analyze("""
            class Engine:
                def __init__(self):
                    self.waiting = set()

                def kick(self, sim, rng):
                    for proc in self.waiting:
                        delay = rng.randrange(10)
        """)
        assert "FLW201" in _rules_of(findings)

    def test_flw202_float_into_ns(self):
        findings = _analyze("""
            def f(self):
                self.deadline_ns += 1.5
        """)
        assert "FLW202" in _rules_of(findings)

    def test_flw202_division(self):
        findings = _analyze("""
            def f(self, total, n):
                self.budget_ns += total / n
        """)
        assert "FLW202" in _rules_of(findings)

    def test_flw202_negative_int_round(self):
        findings = _analyze("""
            def f(self, total, n):
                self.budget_ns += int(round(total / n))
        """)
        assert "FLW202" not in _rules_of(findings)

    def test_flw202_negative_integer_math(self):
        findings = _analyze("""
            def f(self, step_ns):
                self.now_ns += step_ns * 2
        """)
        assert "FLW202" not in _rules_of(findings)

    def test_flw203_unseeded_random(self):
        findings = _analyze("""
            import random

            def f():
                rng = random.Random()
                return rng
        """)
        assert "FLW203" in _rules_of(findings)

    def test_flw203_constant_seed_shadowing_param(self):
        findings = _analyze("""
            import random

            def f(seed):
                rng = random.Random(42)
                return rng
        """)
        assert "FLW203" in _rules_of(findings)

    def test_flw203_negative_threaded_seed(self):
        findings = _analyze("""
            import random

            def f(seed):
                rng = random.Random(seed)
                return rng
        """)
        assert "FLW203" not in _rules_of(findings)


# -- interrupt safety ---------------------------------------------------------


class TestInterruptSafety:
    def test_flw301_yield_in_broad_except(self):
        findings = _analyze("""
            def f(sim):
                try:
                    yield sim.timeout(1)
                except Exception:
                    yield sim.timeout(2)
        """)
        assert "FLW301" in _rules_of(findings)

    def test_flw301_negative_narrow_except(self):
        findings = _analyze("""
            def f(sim):
                try:
                    yield sim.timeout(1)
                except FaultAbort:
                    yield sim.timeout(2)
        """)
        assert "FLW301" not in _rules_of(findings)

    def test_flw302_yield_in_finally(self):
        findings = _analyze("""
            def f(handle, addr):
                try:
                    yield handle.cas_sync(addr, 0, 1)
                finally:
                    yield from handle.write_sync(addr, b"0")
        """)
        assert "FLW302" in _rules_of(findings)

    def test_flw302_negative_plain_finally(self):
        findings = _analyze("""
            def f(lock, sim):
                yield lock.acquire()
                try:
                    yield sim.timeout(1)
                finally:
                    lock.release()
        """)
        assert "FLW302" not in _rules_of(findings)

    def test_non_process_function_ignored(self):
        findings = _analyze("""
            def f(values):
                try:
                    yield 1
                finally:
                    cleanup()
        """)
        # a plain generator (yielding literals) is not a DES process
        assert "FLW302" not in _rules_of(findings)


# -- pragmas ------------------------------------------------------------------


class TestPragmas:
    def test_same_line_pragma(self):
        findings = _analyze("""
            def setup(sim):
                sim.spawn(worker())  # lint: disable=FLW103
        """)
        assert findings == []

    def test_multiline_statement_end_pragma(self):
        findings = _analyze("""
            def setup(sim):
                sim.spawn(
                    worker()
                )  # lint: disable=FLW103
        """)
        assert findings == []

    def test_pragma_wrong_rule_keeps_finding(self):
        findings = _analyze("""
            def setup(sim):
                sim.spawn(worker())  # lint: disable=FLW999
        """)
        assert _rules_of(findings) == ["FLW103"]

    def test_lint_multiline_end_pragma(self):
        # Satellite: the SIM lint honors the closing line too.
        source = textwrap.dedent("""
            import time

            def f():
                return time.time(
                )  # lint: disable=SIM001
        """)
        assert lint_source(source, "fixture.py") == []

    def test_lint_start_line_pragma_still_works(self):
        source = textwrap.dedent("""
            import time

            def f():
                return time.time()  # lint: disable=SIM001
        """)
        assert lint_source(source, "fixture.py") == []


# -- protocol checker ---------------------------------------------------------


_SERVER_OK = """
class Server:
    def __init__(self, node):
        self.table_region = node.storage.alloc_region("tbl_data", 4096)
        self.lock_region = node.storage.alloc_region("tbl_locks", 64)

    def export_meta(self):
        return Meta(table_addr=self.table_region.base,
                    lock_addr=self.lock_region.base)

    def declare_sanitizer_regions(self, sanitizer):
        sanitizer.set_region_policy(0, "tbl_data", "optimistic-read")
        sanitizer.declare_lock_word(0, self.lock_region.base)
"""

_CLIENT = """
class Client:
    def __init__(self, handle, meta):
        self.handle = handle
        self.meta = meta

    def update(self, key):
        old = yield from self.handle.cas_sync(self.meta.lock_addr, 0, 1)
        return old
"""


class TestProtocol:
    def test_stock_fixture_silent(self):
        findings = protocol_mod.check_app(
            {"app/server.py": _SERVER_OK, "app/client.py": _CLIENT}
        )
        assert all(not f for f in findings.values())

    def test_flw401_seeded_undeclared_region(self):
        # Mutation: drop the lock-word declaration; the CAS target's
        # region is now allocated but never declared.
        server = _SERVER_OK.replace(
            '        sanitizer.declare_lock_word(0, self.lock_region.base)\n', ""
        )
        assert "declare_lock_word" not in server
        findings = protocol_mod.check_app(
            {"app/server.py": server, "app/client.py": _CLIENT}
        )
        rules = [f.rule for fs in findings.values() for f in fs]
        assert "FLW401" in rules
        (finding,) = [f for f in findings["app/client.py"] if f.rule == "FLW401"]
        assert "tbl_locks" in finding.message

    def test_flw402_dead_declaration(self):
        server = _SERVER_OK.replace(
            '"tbl_data", "optimistic-read"', '"tbl_renamed", "optimistic-read"'
        )
        findings = protocol_mod.check_app(
            {"app/server.py": server, "app/client.py": _CLIENT}
        )
        rules = [f.rule for fs in findings.values() for f in fs]
        assert "FLW402" in rules

    def test_flw403_unknown_policy(self):
        server = _SERVER_OK.replace('"optimistic-read"', '"optimistic"')
        findings = protocol_mod.check_app({"app/server.py": server})
        rules = [f.rule for fs in findings.values() for f in fs]
        assert "FLW403" in rules

    def test_flw403_conflicting_policies(self):
        server = _SERVER_OK.replace(
            'sanitizer.set_region_policy(0, "tbl_data", "optimistic-read")',
            'sanitizer.set_region_policy(0, "tbl_data", "optimistic-read")\n'
            '        sanitizer.set_region_policy(1, "tbl_data", "exclusive")',
        )
        findings = protocol_mod.check_app({"app/server.py": server})
        rules = [f.rule for fs in findings.values() for f in fs]
        assert "FLW403" in rules

    def test_unresolvable_address_is_silent(self):
        client = """
def spin(handle, lock_addr):
    old = yield from handle.backoff_cas_sync(lock_addr, 0, 1)
    return old
"""
        findings = protocol_mod.check_app(
            {"app/server.py": _SERVER_OK, "app/client.py": _CLIENT,
             "app/spin.py": client}
        )
        assert all(f.rule != "FLW401" for fs in findings.values() for f in fs)

    def test_fstring_wildcard_overlap(self):
        assert protocol_mod.pattern_overlap("tbl_*_p*", "tbl_orders_p3")
        assert protocol_mod.pattern_overlap("tbl_*_p*", "tbl_*_p*")
        assert not protocol_mod.pattern_overlap("tbl_*_p*", "dtx_log_7")

    def test_stock_apps_silent(self):
        # The real race/ford/sherman apps must produce no protocol
        # findings: their declarations match their protocols.
        for app in ("race", "ford", "sherman"):
            app_dir = SRC / "apps" / app
            sources = {
                str(p): p.read_text(encoding="utf-8")
                for p in sorted(app_dir.glob("*.py"))
            }
            findings = protocol_mod.check_app(sources)
            flat = [f for fs in findings.values() for f in fs]
            assert flat == [], f"{app}: {[str(f) for f in flat]}"


# -- baseline -----------------------------------------------------------------


def _finding(path="a.py", line=1, rule="FLW103", scope="f"):
    return FlowFinding(
        path=path, line=line, col=0, end_line=line, rule=rule,
        message="m", scope=scope,
    )


class TestBaseline:
    def test_roundtrip_and_suppress(self, tmp_path):
        f1 = _finding(line=3)
        f2 = _finding(line=9)
        baseline_file = tmp_path / "base.json"
        baseline_mod.dump([f1, f2], baseline_file)
        known = baseline_mod.load(baseline_file)
        new, accepted = baseline_mod.suppress([f1, f2], known)
        assert new == [] and len(accepted) == 2

    def test_extra_occurrence_is_new(self, tmp_path):
        baseline_file = tmp_path / "base.json"
        baseline_mod.dump([_finding(line=3)], baseline_file)
        known = baseline_mod.load(baseline_file)
        new, accepted = baseline_mod.suppress(
            [_finding(line=3), _finding(line=9)], known
        )
        assert len(accepted) == 1 and len(new) == 1

    def test_line_shift_does_not_break_gate(self, tmp_path):
        baseline_file = tmp_path / "base.json"
        baseline_mod.dump([_finding(line=3)], baseline_file)
        known = baseline_mod.load(baseline_file)
        new, _ = baseline_mod.suppress([_finding(line=300)], known)
        assert new == []

    def test_missing_file_is_empty(self, tmp_path):
        assert baseline_mod.load(tmp_path / "absent.json") == {}

    def test_repo_is_clean_against_committed_baseline(self):
        findings, _count = analyze_paths([SRC])
        known = baseline_mod.load(REPO_ROOT / "analysis-baseline.json")
        new, _accepted = baseline_mod.suppress(findings, known)
        assert new == [], [str(f) for f in new]


# -- output formats -----------------------------------------------------------


class TestOutput:
    def test_sarif_shape(self):
        report = json.loads(output_mod.to_sarif([_finding()], RULES))
        assert report["version"] == "2.1.0"
        run = report["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-flow"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "FLW101" in rule_ids and "FLW401" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "FLW103"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 1
        assert result["partialFingerprints"]["reproFlow/v1"] == "a.py::f::FLW103"

    def test_json_shape(self):
        report = json.loads(output_mod.to_json([_finding()], 7))
        assert report["files"] == 7
        assert report["findings"][0]["rule"] == "FLW103"
        assert report["findings"][0]["fingerprint"] == "a.py::f::FLW103"

    def test_rule_catalog_size(self):
        # Acceptance: at least 8 new rule IDs with fixtures.
        assert len(RULES) >= 8


# -- engine / CLI -------------------------------------------------------------


class TestEngine:
    def test_collect_files_dedupes_overlap(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        file = pkg / "mod.py"
        file.write_text("x = 1\n")
        files = collect_files([pkg, file, pkg])
        assert len(files) == 1

    def test_lint_paths_dedupes_overlap(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        file = pkg / "mod.py"
        file.write_text("import time\ntime.time()\n")
        findings, count = lint_paths([pkg, file])
        assert count == 1
        assert len(findings) == 1

    def test_syntax_error_reported(self):
        findings = analyze_source("def broken(:\n", "bad.py")
        assert _rules_of(findings) == ["FLW000"]

    def test_parallel_matches_serial(self):
        serial, count_s = analyze_paths([SRC / "rnic"], jobs=1, protocol=False)
        parallel, count_p = analyze_paths([SRC / "rnic"], jobs=2, protocol=False)
        assert count_s == count_p
        assert [str(f) for f in serial] == [str(f) for f in parallel]

    def test_cli_gate_with_baseline(self, capsys):
        code = main([
            str(SRC), "--baseline", str(REPO_ROOT / "analysis-baseline.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_cli_fails_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def setup(sim):\n    sim.spawn(worker())\n")
        assert main([str(bad)]) == 1
        assert "FLW103" in capsys.readouterr().out

    def test_cli_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def setup(sim):\n    sim.spawn(worker())\n")
        baseline_file = tmp_path / "base.json"
        assert main([str(bad), "--baseline", str(baseline_file),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main([str(bad), "--baseline", str(baseline_file)]) == 0

    def test_cli_sarif_output(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def setup(sim):\n    sim.spawn(worker())\n")
        out = tmp_path / "report.sarif"
        main([str(bad), "--format", "sarif", "--output", str(out)])
        report = json.loads(out.read_text())
        assert report["runs"][0]["results"][0]["ruleId"] == "FLW103"
