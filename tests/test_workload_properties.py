"""Property-based invariants for the seeded generators and YCSB streams.

Runs under Hypothesis when available (it is an optional test dep; the
module skips cleanly without it).  Each property pins a contract the
rest of the stack leans on: key-range closure, op-mix convergence, skew
monotonicity, and bit-identical same-seed replay.
"""

import itertools

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.rng import (  # noqa: E402
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import (  # noqa: E402
    INSERT,
    READ,
    UPDATE,
    WRITE_HEAVY,
    YcsbWorkload,
)

item_counts = st.integers(min_value=2, max_value=5_000)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
thetas = st.floats(min_value=0.0, max_value=0.999, exclude_min=True,
                   allow_nan=False)


@settings(max_examples=30, deadline=None)
@given(item_count=item_counts, seed=seeds)
def test_uniform_generator_stays_in_range(item_count, seed):
    gen = UniformGenerator(item_count, seed=seed)
    assert all(0 <= gen.next() < item_count for _ in range(200))


@settings(max_examples=30, deadline=None)
@given(item_count=item_counts, seed=seeds, theta=thetas)
def test_zipfian_generators_stay_in_range(item_count, seed, theta):
    plain = ZipfianGenerator(item_count, theta, seed=seed)
    scrambled = ScrambledZipfianGenerator(item_count, theta, seed=seed)
    for _ in range(200):
        assert 0 <= plain.next() < item_count
        assert 0 <= scrambled.next() < item_count


@settings(max_examples=20, deadline=None)
@given(item_count=st.integers(min_value=10, max_value=1_000), seed=seeds,
       theta=thetas)
def test_same_seed_generators_replay_identically(item_count, seed, theta):
    def draws():
        gen = ScrambledZipfianGenerator(item_count, theta, seed=seed)
        return [gen.next() for _ in range(100)]

    assert draws() == draws()


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_hotter_theta_concentrates_popularity(seed):
    """The hottest key's hit rate is monotone in theta (skew ordering)."""
    item_count, draws = 1_000, 4_000
    rates = []
    for theta in (0.2, 0.6, 0.99):
        gen = ZipfianGenerator(item_count, theta, seed=seed)
        counts = {}
        for _ in range(draws):
            key = gen.next()
            counts[key] = counts.get(key, 0) + 1
        rates.append(max(counts.values()) / draws)
    assert rates[0] < rates[1] < rates[2]


@settings(max_examples=20, deadline=None)
@given(item_count=item_counts, seed=seeds,
       theta=st.one_of(st.just(0.0), thetas))
def test_ycsb_stream_keys_in_range(item_count, seed, theta):
    """READ/UPDATE keys stay in [0, item_count); INSERTs extend the tail."""
    workload = YcsbWorkload("mixed", read_fraction=0.4, update_fraction=0.4,
                            insert_fraction=0.2, theta=theta)
    inserts = []
    for op, key, value in itertools.islice(
            workload.stream(item_count, seed), 300):
        if op == INSERT:
            assert key >= item_count
            inserts.append(key)
        else:
            assert op in (READ, UPDATE)
            assert 0 <= key < item_count
        if op == READ:
            assert value == 0
    assert inserts == sorted(inserts)  # insert tail grows monotonically


@settings(max_examples=20, deadline=None)
@given(seed=seeds, read_pct=st.integers(min_value=0, max_value=100))
def test_ycsb_op_mix_converges(seed, read_pct):
    read_fraction = read_pct / 100.0
    workload = YcsbWorkload("mix", read_fraction=read_fraction,
                            update_fraction=1.0 - read_fraction)
    sample = 3_000
    reads = sum(
        1 for op, _, _ in itertools.islice(workload.stream(500, seed), sample)
        if op == READ
    )
    assert reads / sample == pytest.approx(read_fraction, abs=0.04)


@settings(max_examples=20, deadline=None)
@given(item_count=item_counts, seed=seeds)
def test_ycsb_same_seed_streams_identical(item_count, seed):
    first = list(itertools.islice(WRITE_HEAVY.stream(item_count, seed), 200))
    second = list(itertools.islice(WRITE_HEAVY.stream(item_count, seed), 200))
    assert first == second


# -- with_theta bugfix ride-along ---------------------------------------------


def test_with_theta_does_not_nest_names():
    derived = WRITE_HEAVY.with_theta(0.5).with_theta(0.8)
    assert derived.name == "write-heavy(theta=0.8)"
    assert derived.theta == 0.8


@settings(max_examples=20, deadline=None)
@given(first=thetas, second=thetas)
def test_with_theta_idempotent_naming(first, second):
    derived = WRITE_HEAVY.with_theta(first).with_theta(second)
    assert derived.name.count("(theta=") == 1
    assert derived.read_fraction == WRITE_HEAVY.read_fraction


def test_negative_theta_rejected():
    with pytest.raises(ValueError):
        YcsbWorkload("bad", read_fraction=1.0, update_fraction=0.0, theta=-0.1)
    with pytest.raises(ValueError):
        WRITE_HEAVY.with_theta(-1.0)
