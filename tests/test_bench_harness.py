"""Tests for the benchmark harness: report tables, microbench tool,
experiment runners and the common apps helper."""

import pytest

from repro.apps.common import RemoteAllocator
from repro.bench.microbench import MicrobenchResult, run_microbench
from repro.bench.report import format_table, ratio, result_slug
from repro.bench.runner import (
    bench_features,
    build_deployment,
    run_btree,
    run_dtx,
    run_hashtable,
)
from repro.cluster import Cluster
from repro.core import SmartContext, SmartThread
from repro.core.features import baseline, full
from repro.workloads.ycsb import READ_ONLY, WRITE_HEAVY


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "4.25" in lines[-1]

    def test_ratio_handles_zero(self):
        assert ratio(10, 2) == 5.0
        assert ratio(10, 0) == 0.0

    def test_result_slug_basic(self):
        assert result_slug("Figure 3 (read): IOPS") == "figure-3-read-iops"

    def test_result_slug_never_empty(self):
        """Regression: names with no alphanumerics used to slug to "",
        producing hidden artifact files like ".txt"."""
        assert result_slug("") == "experiment"
        assert result_slug("!!! ???") == "experiment"
        assert result_slug("---") == "experiment"


class TestMicrobench:
    def test_result_str_mentions_iops(self):
        result = MicrobenchResult("smart", 8, 8, 8, "read", 12.5, 93.0)
        assert "IOPS=12.5" in str(result)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_microbench(policy="bogus", threads=1)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            run_microbench(policy="per-thread-db", threads=1, op="cas")

    def test_small_run_reports_throughput(self):
        result = run_microbench(
            policy="per-thread-db", threads=4, depth=8,
            warmup_ns=0.1e6, measure_ns=0.4e6,
        )
        assert result.throughput_mops > 1.0
        assert result.measured_wrs > 100
        assert result.dram_bytes_per_wr == pytest.approx(93.0)

    def test_latency_sampling(self):
        result = run_microbench(
            policy="per-thread-db", threads=2, depth=4,
            warmup_ns=0.1e6, measure_ns=0.4e6, latency_samples=True,
        )
        assert result.batch_latency_p50_ns is not None
        assert result.batch_latency_p99_ns >= result.batch_latency_p50_ns
        # A batch takes at least one RTT.
        assert result.batch_latency_p50_ns >= 2000

    def test_write_op_supported(self):
        result = run_microbench(
            policy="per-thread-db", threads=2, depth=4, op="write",
            warmup_ns=0.1e6, measure_ns=0.3e6,
        )
        assert result.throughput_mops > 0


class TestBenchFeatures:
    def test_scales_epochs_for_full(self):
        scaled = bench_features(full())
        assert scaled.update_delta_ns < full().update_delta_ns
        assert scaled.retry_window_ns < full().retry_window_ns

    def test_baseline_untouched(self):
        assert bench_features(baseline()) == baseline()


class TestBuildDeployment:
    def test_topology(self):
        deployment = build_deployment(full(), threads=4, compute_blades=2,
                                      memory_blades=3)
        assert len(deployment.compute_nodes) == 2
        assert len(deployment.memory_nodes) == 3
        assert len(deployment.smart_threads) == 8
        # Every thread is connected to every memory node.
        for thread in deployment.compute_nodes[0].threads:
            assert len(thread.qps) == 3


class TestRunners:
    """Tiny end-to-end runs: the point is wiring, not shapes."""

    def test_run_hashtable_returns_sane_result(self):
        result = run_hashtable(
            "smart-ht", WRITE_HEAVY, threads=2, coroutines=2,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=0.7e6,
        )
        assert result.ops > 10
        assert result.throughput_mops > 0
        assert result.p50_latency_ns > 0
        assert result.system == "smart-ht"

    def test_run_hashtable_race_baseline(self):
        result = run_hashtable(
            "race", READ_ONLY, threads=2, coroutines=2,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=0.7e6,
        )
        assert result.ops > 10

    def test_run_dtx_smallbank(self):
        result = run_dtx(
            "smart-dtx", "smallbank", threads=2, coroutines=2,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=0.7e6,
        )
        assert result.ops > 5

    def test_run_dtx_tatp(self):
        result = run_dtx(
            "ford", "tatp", threads=2, coroutines=2,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=0.7e6,
        )
        assert result.ops > 5

    def test_run_dtx_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            run_dtx("ford", "tpcc", threads=1, item_count=100)

    def test_run_btree_all_systems(self):
        for system in ("sherman", "sherman-sl", "smart-bt"):
            result = run_btree(
                system, READ_ONLY, threads=2, coroutines=2,
                item_count=2_000, warmup_ns=0.3e6, measure_ns=0.7e6,
            )
            assert result.ops > 10, system

    def test_throttle_gap_lowers_throughput(self):
        fast = run_hashtable(
            "smart-ht", READ_ONLY, threads=2, coroutines=4,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=1.0e6,
        )
        slow = run_hashtable(
            "smart-ht", READ_ONLY, threads=2, coroutines=4,
            item_count=2_000, warmup_ns=0.3e6, measure_ns=1.0e6,
            throttle_gap_ns=50_000.0,
        )
        assert slow.throughput_mops < fast.throughput_mops / 2


class TestRemoteAllocator:
    def _setup(self):
        cluster = Cluster()
        compute = cluster.add_node()
        compute.add_threads(1)
        (remote,) = cluster.add_nodes(1)
        head = remote.storage.alloc_region("head", 8)
        heap = remote.storage.alloc_region("heap", 1 << 16)
        remote.storage.write_u64(head.base, heap.base)
        SmartContext(compute, [remote], full())
        smart = SmartThread(compute.threads[0], full())
        allocator = RemoteAllocator(
            smart.handle(), remote.node_id,
            remote.storage.global_addr(head.base), heap.base, heap.end,
            chunk_bytes=256,
        )
        return cluster, allocator, remote, heap

    def test_allocations_unique_and_aligned(self):
        cluster, allocator, _, heap = self._setup()
        offsets = []

        def proc():
            for _ in range(40):
                offsets.append((yield from allocator.alloc(24)))

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e8)
        assert len(offsets) == 40
        assert len(set(offsets)) == 40
        assert all(o % 8 == 0 for o in offsets)
        assert all(heap.base <= o < heap.end for o in offsets)

    def test_oversized_alloc_rejected(self):
        cluster, allocator, _, _ = self._setup()

        def proc():
            yield from allocator.alloc(512)

        proc_handle = cluster.sim.spawn(proc())
        with pytest.raises(ValueError):
            cluster.sim.run(until=1e8)

    def test_alloc_large_bypasses_chunking(self):
        cluster, allocator, _, heap = self._setup()
        out = []

        def proc():
            out.append((yield from allocator.alloc_large(4096)))

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e8)
        assert heap.base <= out[0] < heap.end

    def test_exhaustion_raises(self):
        cluster, allocator, _, _ = self._setup()

        def proc():
            while True:
                yield from allocator.alloc_large(16384)

        cluster.sim.spawn(proc())
        with pytest.raises(MemoryError):
            cluster.sim.run(until=1e9)
