"""Edge-case tests for the SMART handle: chunking, credit flow under
C_max changes, and multi-coroutine interleaving."""

import pytest

from repro.cluster import Cluster
from repro.core import SmartContext, SmartThread
from repro.core.features import SmartFeatures, baseline, full


def make_env(features, threads=1, memory_nodes=1):
    cluster = Cluster()
    compute = cluster.add_node()
    compute.add_threads(threads)
    remotes = cluster.add_nodes(memory_nodes)
    SmartContext(compute, remotes, features)
    smarts = [SmartThread(t, features, seed=i) for i, t in enumerate(compute.threads)]
    return cluster, compute, remotes, smarts


class TestChunking:
    def test_batch_larger_than_cmax_is_chunked(self):
        features = full().with_overrides(
            adaptive_credit=False, initial_cmax=4,
            backoff=False, dynamic_backoff_limit=False, coroutine_throttling=False,
        )
        cluster, compute, (remote,), (smart,) = make_env(features)
        handle = smart.handle()
        addr = remote.storage.global_addr(0)
        done = []

        def proc():
            for _ in range(16):  # 16 reads >> C_max=4
                handle.read(addr, 8)
            yield from handle.post_send()
            yield from handle.sync()
            done.append(cluster.sim.now)

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e7)
        assert done, "oversized batch deadlocked"
        # 16 WRs in chunks of 4 -> at least 4 doorbell rings.
        assert compute.device.counters.doorbell_rings >= 4
        assert smart.throttler.completed == 16
        assert smart.throttler.credits.tokens == 4

    def test_empty_post_send_is_noop(self):
        cluster, compute, _, (smart,) = make_env(full())
        handle = smart.handle()

        def proc():
            yield from handle.post_send()
            yield from handle.sync()
            return "done"

        proc_obj = cluster.sim.spawn(proc())
        cluster.sim.run(until=1e6)
        assert proc_obj.value == "done"
        assert compute.device.counters.doorbell_rings == 0


class TestCreditFlowUnderCmaxChange:
    def test_shrinking_cmax_midflight_recovers(self):
        features = full().with_overrides(
            adaptive_credit=False, initial_cmax=8,
            backoff=False, dynamic_backoff_limit=False, coroutine_throttling=False,
        )
        cluster, _, (remote,), (smart,) = make_env(features)
        handle = smart.handle()
        addr = remote.storage.global_addr(0)
        finished = []

        def proc():
            for round_number in range(20):
                for _ in range(6):
                    handle.read(addr, 8)
                yield from handle.post_send()
                if round_number == 3:
                    smart.throttler.update_cmax(2)
                yield from handle.sync()
            finished.append(True)

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e8)
        assert finished
        assert smart.throttler.cmax == 2
        assert smart.throttler.credits.tokens == 2


class TestMultiCoroutine:
    def test_coroutines_share_thread_but_not_batches(self):
        features = full().with_overrides(
            backoff=False, dynamic_backoff_limit=False, coroutine_throttling=False
        )
        cluster, _, (remote,), (smart,) = make_env(features)
        addr = remote.storage.global_addr(64)
        remote.storage.write_u64(64, 0)
        results = []

        def coroutine(value):
            handle = smart.handle()
            old = yield from handle.faa_sync(addr, value)
            results.append(old)

        for value in (1, 10, 100):
            cluster.sim.spawn(coroutine(value))
        cluster.sim.run(until=1e7)
        assert len(results) == 3
        assert remote.storage.read_u64(64) == 111

    def test_interleaved_sync_only_waits_own_batches(self):
        cluster, _, (remote,), (smart,) = make_env(full())
        a, b = smart.handle(), smart.handle()
        addr = remote.storage.global_addr(0)
        order = []

        def slow():
            for _ in range(64):
                a.read(addr, 8)
            yield from a.post_send()
            yield from a.sync()
            order.append("slow")

        def fast():
            b.read(addr, 8)
            yield from b.post_send()
            yield from b.sync()
            order.append("fast")

        cluster.sim.spawn(slow())
        cluster.sim.spawn(fast())
        cluster.sim.run(until=1e8)
        assert order[0] == "fast"  # not blocked behind the big batch


class TestBeginEndOpDiscipline:
    def test_nested_begin_without_end_detected_by_stats(self):
        cluster, _, _, (smart,) = make_env(full())
        handle = smart.handle()

        def proc():
            yield from handle.begin_op()
            yield from handle.begin_op()  # op restarted (allowed)
            handle.end_op()

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e6)
        assert smart.stats.ops == 1

    def test_failed_flag_recorded(self):
        cluster, _, _, (smart,) = make_env(full())
        handle = smart.handle()

        def proc():
            yield from handle.begin_op()
            handle.end_op(failed=True)

        cluster.sim.spawn(proc())
        cluster.sim.run(until=1e6)
        assert smart.stats.failed_ops == 1
